// skynet_cli — command-line driver for the whole stack.
//
// Builds (or imports) a topology, injects a failure scenario, streams the
// monitoring flood through SkyNet and prints the ranked incident reports,
// optionally as JSON digests. With --serve it becomes a long-running
// daemon (streaming ingest + HTTP query API); with --connect it is the
// matching client. One option surface (serve::engine_options) covers all
// three modes.
//
//   skynet_cli                                  # random severe failure
//   skynet_cli --scenario ddos --severe
//   skynet_cli --topo medium --duration 6 --json
//   skynet_cli --export-topo inventory.topo     # dump the topology format
//   skynet_cli --topo-file inventory.topo       # ... and load it back
//   skynet_cli --serve unix:/tmp/skynet.sock --http tcp:127.0.0.1:8080
//   skynet_cli --connect tcp:127.0.0.1:8080 --get /v1/health
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "skynet/core/digest.h"
#include "skynet/federate/aggregator.h"
#include "skynet/federate/emitter.h"
#include "skynet/lifecycle/manager.h"
#include "skynet/overload/controller.h"
#include "skynet/viz/timeline.h"
#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/monitors/extended_monitors.h"
#include "skynet/persist/durable.h"
#include "skynet/persist/recovery.h"
#include "skynet/serve/daemon.h"
#include "skynet/serve/engine_options.h"
#include "skynet/serve/report_text.h"
#include "skynet/serve/wire.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/faults.h"
#include "skynet/sim/trace.h"
#include "skynet/topology/generator.h"
#include "skynet/topology/serialization.h"

using namespace skynet;

namespace {

using options = serve::engine_options;

std::unique_ptr<scenario> pick_scenario(const options& opt, const topology& topo, rng& rand) {
    const std::string& n = opt.scenario_name;
    if (n == "random") return make_random_scenario(topo, rand, opt.severe);
    if (n == "hardware") return make_device_hardware_failure(topo, rand, opt.severe);
    if (n == "link") return make_link_failure(topo, rand, opt.severe);
    if (n == "modification") return make_modification_error(topo, rand, opt.severe);
    if (n == "software") return make_device_software_failure(topo, rand, opt.severe);
    if (n == "infrastructure") return make_infrastructure_failure(topo, rand, opt.severe);
    if (n == "route") return make_route_error(topo, rand, opt.severe);
    if (n == "ddos") return make_security_ddos(topo, rand, opt.severe ? 3 : 1);
    if (n == "config") return make_configuration_error(topo, rand, opt.severe);
    if (n == "gray") return make_gray_failure(topo, rand, opt.severe);
    if (n == "flapping-link") return make_flapping_link(topo, rand, opt.severe);
    if (n == "storm") return make_multi_cause_storm(topo, rand, opt.severe);
    if (n == "maintenance") return make_maintenance_window(topo, rand);
    if (n == "slow-burn") return make_slow_burn_degradation(topo, rand, opt.severe);
    if (n == "cable-cut") {
        for (const device& d : topo.devices()) {
            if (d.role == device_role::isr) {
                return make_internet_entry_cut(
                    topo, d.loc.ancestor_at(hierarchy_level::logic_site), 0.5);
            }
        }
    }
    return nullptr;
}

/// Writes `text` to `path` via a temp file + atomic rename (the same
/// crash-safety convention as snapshots): a reader never sees a torn
/// health report.
void write_atomic(const std::string& path, const std::string& text) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
            return;
        }
        out << text;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) std::fprintf(stderr, "health-json rename failed: %s\n", ec.message().c_str());
}

/// Streams the alert source (recorded trace or live simulation) through
/// `engine` — tick-batched ingest either way — and prints the ranked
/// reports. Works for both the sequential and the region-sharded engine.
/// When `faults` is set, every delivery passes through the injector
/// first and reorder-held alerts are released at each tick. When `guard`
/// is active, every delivery then passes the overload controller, so the
/// engine (and the journal, in durable runs) only ever sees admitted
/// alerts.
template <typename Engine>
int run_session(Engine& engine, const options& opt, const topology& topo,
                const customer_registry& customers, fault_injector* faults,
                overload::controller* guard) {
    std::int64_t raw = 0;
    recovery_metrics persist_metrics;
    const bool guarded = guard != nullptr && !guard->pass_through();

    // Incident life-cycle layer: consumes the engine's merged barrier
    // reports (already byte-identical sequential vs sharded vs steal-on),
    // so its lineages and diffs inherit that parity by construction.
    std::optional<lifecycle::manager> mgr;
    if (opt.lifecycle) mgr.emplace(opt.lifecycle_config(), &topo);
    // In durable runs the session's barrier_hook feeds the manager (so
    // checkpoints capture its state *through* the barrier); everywhere
    // else on_barrier below does. Never both.
    bool lifecycle_fed_by_sink = false;
    const auto feed_lifecycle = [&](sim_time now, const network_state& state) {
        if (!mgr) return;
        std::vector<incident_report> closed = engine.take_reports();
        const std::vector<incident_report> open = engine.open_reports(now, state);
        mgr->on_barrier(now, std::move(closed), open, &state);
        // Quiet barriers stay quiet ("no changes" is for /v1/diff, where
        // an empty body would be ambiguous; on a tty it is just noise).
        if (opt.diff && mgr->last_diff().any()) {
            std::printf("%s", mgr->last_diff().render().c_str());
        }
    };

    // Generic over the sink so the replay path can route through a
    // persist::durable_session (same ingest/tick/finish surface) while
    // the simulation path keeps feeding the engine directly.
    const auto deliver = [&](auto& sink, std::vector<traced_alert> batch) {
        if (guarded) batch = guard->admit(std::move(batch));
        if (!batch.empty()) sink.ingest_batch(std::span<const traced_alert>(batch));
    };
    const auto ingest = [&](auto& sink, std::span<const traced_alert> batch) {
        if (faults == nullptr && !guarded) {
            sink.ingest_batch(batch);
            return;
        }
        std::vector<traced_alert> stream(batch.begin(), batch.end());
        if (faults != nullptr) stream = faults->apply(stream);
        deliver(sink, std::move(stream));
    };
    const auto release_held = [&](auto& sink, sim_time now) {
        if (faults == nullptr) return;
        std::vector<traced_alert> due = faults->release(now);
        if (!due.empty()) deliver(sink, std::move(due));
    };
    const auto drain_held = [&](auto& sink) {
        if (faults == nullptr) return;
        std::vector<traced_alert> held = faults->drain();
        if (!held.empty()) deliver(sink, std::move(held));
    };
    // Tick-barrier housekeeping: close the admission window and publish
    // the merged health report (engine barrier metrics + controller
    // counters) if asked to.
    const auto on_barrier = [&](sim_time now, const network_state& state) {
        if (!lifecycle_fed_by_sink) feed_lifecycle(now, state);
        if (guard != nullptr) guard->on_tick(now);
        if (opt.health_json.empty()) return;
        engine_metrics m = engine.barrier_metrics();
        if (guard != nullptr) {
            m.overload += guard->metrics();
            m.degraded.sketched += guard->sketched_decisions();
        }
        if (mgr) m.lifecycle = mgr->metrics();
        write_atomic(opt.health_json, m.to_json() + "\n");
    };

    if (!opt.replay_file.empty() || opt.recover) {
        network_state idle(&topo, &customers);

        std::vector<traced_alert> alerts;
        if (!opt.replay_file.empty()) {
            std::ifstream in(opt.replay_file);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n", opt.replay_file.c_str());
                return 1;
            }
            std::stringstream buffer;
            buffer << in.rdbuf();
            trace_parse_result trace = parse_trace(buffer.str());
            for (const trace_parse_error& e : trace.errors) {
                std::fprintf(stderr, "%s:%d: %s\n", opt.replay_file.c_str(), e.line,
                             e.message.c_str());
            }
            alerts = std::move(trace.alerts);
            std::printf("replaying %zu alerts from %s\n", alerts.size(),
                        opt.replay_file.c_str());
        }

        // The journal records what the engine saw, so faults degrade the
        // stream *before* the durable sink journals it: replay and resume
        // both see the post-fault alerts.
        const auto stream = [&](auto& sink) {
            sim_time last_tick = 0;
            sim_time last_arrival = 0;
            std::vector<traced_alert> batch;
            for (const traced_alert& t : alerts) {
                ++raw;
                batch.push_back(t);
                last_arrival = t.arrival;
                if (t.arrival - last_tick >= seconds(2)) {
                    ingest(sink, std::span<const traced_alert>(batch));
                    batch.clear();
                    release_held(sink, t.arrival);
                    sink.tick(t.arrival, idle);
                    on_barrier(t.arrival, idle);
                    last_tick = t.arrival;
                }
            }
            ingest(sink, std::span<const traced_alert>(batch));
            drain_held(sink);
            sink.finish(last_arrival + minutes(20), idle);
            on_barrier(last_arrival + minutes(20), idle);
        };

        persist::recovery_result recovered;
        if (opt.recover) {
            persist::recovery_options ropts;
            ropts.dir = opt.checkpoint_dir;
            ropts.tick_state = &idle;
            // Inspect mode continues directly from the snapshot, so the
            // controller state is imported; a resume re-streams from the
            // start and re-derives it deterministically instead.
            if (opt.replay_file.empty()) ropts.controller = guard;
            // The manager is always restored (the resumed engine skips
            // the durable prefix, so it cannot be re-derived) and fed
            // every barrier replayed from the journal suffix.
            if (mgr) ropts.lifecycle = &*mgr;
            try {
                recovered = persist::recover(engine, topo.locations(), nullptr, ropts);
            } catch (const std::exception& e) {
                // recover() prefixes its own messages with "recover:".
                std::fprintf(stderr, "%s\n", e.what());
                return 1;
            }
            for (const std::string& note : recovered.notes) {
                std::printf("recover: %s\n", note.c_str());
            }
            persist_metrics = recovered.metrics;
        }

        if (opt.replay_file.empty()) {
            // Inspect mode: recover alone. Close out the run if the
            // journal never reached its finish barrier, then report.
            if (!recovered.saw_finish) {
                engine.finish(recovered.last_barrier_time + minutes(20), idle);
                feed_lifecycle(recovered.last_barrier_time + minutes(20), idle);
            } else if (opt.diff && mgr) {
                // Nothing new closed; surface the recovered diff as-is.
                std::printf("%s", mgr->last_diff().render().c_str());
            }
        } else if (!opt.checkpoint_dir.empty()) {
            persist::durable_options dopts;
            dopts.dir = opt.checkpoint_dir;
            dopts.checkpoint_every = static_cast<std::uint64_t>(opt.checkpoint_every);
            dopts.crash_after = opt.crash_after;
            dopts.resume_records = recovered.journal_records;
            dopts.next_snapshot_seq = recovered.next_snapshot_seq;
            dopts.base = recovered.metrics;
            dopts.locations = &topo.locations();
            dopts.controller = guard;
            if (mgr) {
                dopts.lifecycle = &*mgr;
                dopts.barrier_hook = [&](sim_time now, const network_state& state) {
                    feed_lifecycle(now, state);
                };
                lifecycle_fed_by_sink = true;
            }
            persist::durable_session<Engine> session(engine, dopts);
            stream(session);
            persist_metrics = session.metrics();
            if (!session.last_error().empty()) {
                std::fprintf(stderr, "checkpoint: %s\n", session.last_error().c_str());
            }
        } else {
            stream(engine);
        }
    } else {
        simulation_engine sim(&topo, &customers,
                              engine_params{.tick = seconds(2), .seed = opt.seed});
        sim.add_default_monitors(monitor_options{.noise_rate = opt.noise});
        if (opt.extended) {
            for (auto& tool : make_extended_monitors(topo)) sim.add_monitor(std::move(tool));
        }

        rng srand(opt.seed + 2);
        auto failure = pick_scenario(opt, topo, srand);
        if (!failure) {
            std::fprintf(stderr, "unknown scenario: %s\n", opt.scenario_name.c_str());
            return 2;
        }
        std::printf("injecting: %s (%s, %s) for %d min\n", failure->name().c_str(),
                    std::string(to_string(failure->cause())).c_str(),
                    opt.severe ? "severe" : "minor", opt.duration_min);
        sim.inject(std::move(failure), minutes(1), minutes(opt.duration_min));

        std::vector<traced_alert> recorded;
        sim.run_until_batched(minutes(1 + opt.duration_min) + minutes(2),
                              [&](std::span<const traced_alert> batch) {
                                  raw += static_cast<std::int64_t>(batch.size());
                                  ingest(engine, batch);
                                  if (!opt.record_file.empty()) {
                                      recorded.insert(recorded.end(), batch.begin(), batch.end());
                                  }
                              },
                              [&](sim_time now) {
                                  release_held(engine, now);
                                  engine.tick(now, sim.state());
                                  on_barrier(now, sim.state());
                              });
        drain_held(engine);
        engine.finish(sim.clock().now(), sim.state());
        on_barrier(sim.clock().now(), sim.state());

        if (!opt.record_file.empty()) {
            std::ofstream out(opt.record_file);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", opt.record_file.c_str());
                return 1;
            }
            out << serialize_trace(recorded);
            std::printf("recorded %zu alerts to %s\n", recorded.size(),
                        opt.record_file.c_str());
        }
    }

    const preprocessor_stats stats = engine.preprocessing_stats();
    std::printf("alerts: %lld raw -> %lld structured\n", static_cast<long long>(raw),
                static_cast<long long>(stats.emitted_new));
    if (faults != nullptr) {
        const fault_stats& fs = faults->stats();
        std::printf("faults: %llu in, %llu dropped (dropout), %llu duplicated, "
                    "%llu reordered, %llu corrupted, %llu skewed\n",
                    static_cast<unsigned long long>(fs.alerts_in),
                    static_cast<unsigned long long>(fs.dropped_dropout),
                    static_cast<unsigned long long>(fs.duplicated),
                    static_cast<unsigned long long>(fs.reordered),
                    static_cast<unsigned long long>(fs.corrupted),
                    static_cast<unsigned long long>(fs.skewed));
    }
    if (guarded) {
        const overload_metrics& om = guard->metrics();
        std::printf("overload: %llu admitted, %llu shed "
                    "(%llu dup / %llu other / %llu root-cause / %llu failure), "
                    "%llu quarantined, %llu breaker trips\n",
                    static_cast<unsigned long long>(om.admitted),
                    static_cast<unsigned long long>(om.shed_total()),
                    static_cast<unsigned long long>(om.shed_duplicate),
                    static_cast<unsigned long long>(om.shed_other),
                    static_cast<unsigned long long>(om.shed_root_cause),
                    static_cast<unsigned long long>(om.shed_failure),
                    static_cast<unsigned long long>(om.quarantined),
                    static_cast<unsigned long long>(om.breaker_trips));
    }
    if (opt.metrics) {
        engine_metrics m = engine.metrics();
        m.recovery += persist_metrics;
        if (guard != nullptr) {
            m.overload += guard->metrics();
            m.degraded.sketched += guard->sketched_decisions();
        }
        if (faults != nullptr) {
            // The injector, not the engine, knows which sources went dark.
            m.degraded.sources_in_dropout = faults->stats().sources_in_dropout;
        }
        if (mgr) m.lifecycle = mgr->metrics();
        std::printf("%s", m.render().c_str());
    }

    // take_reports is already globally ranked (severity desc, id asc);
    // the shared renderer keeps this listing byte-identical to the
    // daemon's GET /v1/report. With the life-cycle layer on, the manager
    // already drained every barrier's reports, so the managed listing
    // (one representative per lineage) replaces the raw one.
    const serve::report_listing_options lopts{.json = opt.json, .timeline = opt.timeline};
    if (mgr) {
        if (opt.json || opt.timeline) {
            std::printf("%s", serve::render_report_listing(mgr->managed_reports(), lopts).c_str());
        } else {
            std::printf("%s", mgr->render_managed().c_str());
        }
    } else {
        const auto reports = engine.take_reports();
        std::printf("%s", serve::render_report_listing(reports, lopts).c_str());
    }
    return 0;
}

serve::daemon* g_daemon = nullptr;
federate::aggregator* g_aggregator = nullptr;

void handle_stop_signal(int) {
    if (g_daemon != nullptr) g_daemon->request_stop();
    if (g_aggregator != nullptr) g_aggregator->request_stop();
}

/// The reconnect policy the client and the federation emitter share.
serve::retry_policy retry_from(const options& opt) {
    serve::retry_policy policy;
    policy.attempts = opt.retry;
    policy.base_ms = opt.retry_base_ms;
    return policy;
}

/// --serve / --http: run the daemon until SIGTERM/SIGINT.
int run_serve(const options& opt, const topology& topo, const customer_registry& customers,
              const alert_type_registry& registry, const syslog_classifier& syslog) {
    serve::daemon d(topo, customers, registry, &syslog, opt);

    // --federate emit: hang the digest emitter off the daemon's barrier
    // hook. The emitter journals next to the engine checkpoints unless
    // --fed-journal picks its own directory.
    std::unique_ptr<federate::digest_emitter> emitter;
    if (opt.federate.emit()) {
        federate::emitter_config ecfg;
        ecfg.region = opt.federate.emit_region;
        ecfg.aggregator_addr = opt.federate.emit_addr;
        ecfg.journal_dir = !opt.federate.journal_dir.empty() ? opt.federate.journal_dir
                                                             : opt.checkpoint_dir;
        ecfg.heartbeat_ms = opt.federate.heartbeat_ms;
        ecfg.retry = retry_from(opt);
        emitter = std::make_unique<federate::digest_emitter>(std::move(ecfg));
        federate::digest_emitter* em = emitter.get();
        d.set_barrier_hook([em](const std::vector<incident_report>& reports, sim_time now,
                                bool finish) { em->publish(reports, now, finish); });
        d.set_metrics_hook([em](engine_metrics& m) { m.federation += em->metrics(); });
        d.set_recovered_hook([em, &d, &opt] {
            if (error e = em->start()) {
                // Surface it loudly but keep serving: a daemon that can't
                // federate is degraded, not dead.
                std::fprintf(stderr, "federate: %s (emitter disabled)\n", e.message().c_str());
                return;
            }
            // The engine journal can be ahead of the digest journal (it
            // fsyncs on a different cadence, or the digests lived in
            // memory only): re-digest what recovery closed past the
            // emitter's last barrier so the aggregator still converges.
            const sim_time have = em->last_barrier();
            const sim_time engine_at = d.last_barrier();
            if (have < engine_at) {
                em->publish(d.store().reports_closed_after(have), engine_at, d.finished());
            }
            std::printf("federate: emitting as region '%s' to %s\n",
                        opt.federate.emit_region.c_str(), opt.federate.emit_addr.c_str());
        });
    }

    if (error e = d.start()) {
        std::fprintf(stderr, "serve: %s\n", e.message().c_str());
        return 1;
    }
    g_daemon = &d;
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    if (!d.ingest_addr().empty()) {
        std::printf("serve: ingest on %s\n", d.ingest_addr().c_str());
    }
    if (!d.http_addr().empty()) std::printf("serve: http on %s\n", d.http_addr().c_str());
    std::fflush(stdout);
    const int rc = d.run();
    if (emitter) emitter->stop();  // final flush of anything unacked
    g_daemon = nullptr;
    return rc;
}

/// --federate aggregate: run the global aggregator until SIGTERM/SIGINT.
int run_aggregator(const options& opt) {
    federate::aggregator_config cfg;
    cfg.listen_addr = opt.federate.aggregate_addr;
    cfg.http_addr = opt.serve.http_addr;
    cfg.health = {opt.federate.lag_ms, opt.federate.stale_ms, opt.federate.partition_ms};
    cfg.report_json = opt.json;
    cfg.report_timeline = opt.timeline;
    federate::aggregator agg(std::move(cfg));
    if (error e = agg.start()) {
        std::fprintf(stderr, "federate: %s\n", e.message().c_str());
        return 1;
    }
    g_aggregator = &agg;
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    const int rc = agg.run();
    g_aggregator = nullptr;
    return rc;
}

/// Runs `action` with the options' bounded-retry schedule: up to
/// opt.retry reconnect attempts after the first, exponential backoff
/// with deterministic jitter between them. `err` carries the last
/// transport failure out.
template <typename Action>
bool with_retries(const options& opt, std::string& err, Action&& action) {
    const serve::retry_policy policy = retry_from(opt);
    for (int attempt = 0;; ++attempt) {
        if (action(err)) return true;
        if (attempt >= policy.attempts) return false;
        const auto delay = serve::backoff_delay(policy, attempt);
        std::fprintf(stderr, "connect: %s; retry %d/%d in %lldms\n", err.c_str(), attempt + 1,
                     policy.attempts, static_cast<long long>(delay.count()));
        std::this_thread::sleep_for(delay);
    }
}

/// --connect: HTTP GET/POST or stream a trace into a daemon.
int run_client(const options& opt) {
    const auto addr = serve::parse_addr(opt.client.connect);  // validated upstream
    std::string err;
    if (!opt.client.stream_file.empty()) {
        std::ifstream in(opt.client.stream_file);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", opt.client.stream_file.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        trace_parse_result trace = parse_trace(buffer.str());
        for (const trace_parse_error& e : trace.errors) {
            std::fprintf(stderr, "%s:%d: %s\n", opt.client.stream_file.c_str(), e.line,
                         e.message.c_str());
        }
        // Same cadence as --replay (2s tick batching, finish 20min after
        // the last arrival) so the daemon reaches bit-identical reports.
        // Retries re-stream from the top, which covers the two intended
        // cases exactly: a daemon that is not up yet (nothing applied),
        // and a daemon restarted with --recover --resume-stream (the
        // already-journaled prefix is skipped, the rest replays).
        std::optional<serve::stream_stats> stats;
        (void)with_retries(opt, err, [&](std::string& e) {
            stats = serve::stream_trace(*addr, trace.alerts, seconds(2), minutes(20), e);
            return stats.has_value();
        });
        if (!stats) {
            std::fprintf(stderr, "stream: %s\n", err.c_str());
            return 1;
        }
        std::printf("streamed %llu records (%llu alerts): %s\n",
                    static_cast<unsigned long long>(stats->records),
                    static_cast<unsigned long long>(stats->alerts), stats->status.c_str());
        return stats->ok() ? 0 : 1;
    }

    const bool post = !opt.client.post_path.empty();
    std::string path = post ? opt.client.post_path : opt.client.get_path;
    // Spare the shell user from percent-encoding: spaces in query values
    // ("--get '/v1/incidents?loc=Region A'") are escaped here.
    std::string encoded;
    for (const char c : path) {
        if (c == ' ') {
            encoded += "%20";
        } else {
            encoded += c;
        }
    }
    std::string body;
    if (!opt.client.data_file.empty()) {
        std::ifstream in(opt.client.data_file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", opt.client.data_file.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        body = buffer.str();
    }
    serve::http_response response;
    if (!with_retries(opt, err, [&](std::string& e) {
            return serve::http_call(*addr, post ? "POST" : "GET", encoded, body, response, e);
        })) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 1;
    }
    std::fputs(response.body.c_str(), stdout);
    if (response.status < 200 || response.status >= 300) {
        std::fprintf(stderr, "HTTP %d\n", response.status);
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    serve::cli_parse_result parsed = serve::parse_cli(argc, argv);
    if (parsed.mode == serve::run_mode::help) {
        std::printf("%s", serve::cli_usage().c_str());
        return 0;
    }
    for (const serve::option_error& e : parsed.errors) {
        std::fprintf(stderr, "%s\n", e.render().c_str());
    }
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s", serve::cli_usage().c_str());
        return 2;
    }
    const options& opt = parsed.opts;
    const std::vector<serve::option_error> issues = opt.validate(parsed.mode);
    for (const serve::option_error& e : issues) {
        std::fprintf(stderr, "%s\n", e.render().c_str());
    }
    if (!issues.empty()) return 2;

    if (parsed.mode == serve::run_mode::client) return run_client(opt);
    // The aggregator runs no engine, so it needs no topology or
    // registries — dispatch before any of that is built.
    if (opt.federate.aggregate()) return run_aggregator(opt);

    // Topology: preset, or imported file.
    topology topo;
    if (!opt.topo_file.empty()) {
        std::ifstream in(opt.topo_file);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", opt.topo_file.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        topology_parse_result parsed_topo = import_topology(buffer.str());
        for (const topology_parse_error& e : parsed_topo.errors) {
            std::fprintf(stderr, "%s:%d: %s\n", opt.topo_file.c_str(), e.line,
                         e.message.c_str());
            if (!e.text.empty()) {
                std::fprintf(stderr, "  | %s\n", e.text.c_str());
            }
        }
        if (!parsed_topo.ok()) return 1;
        topo = std::move(parsed_topo.topo);
    } else {
        generator_params params = opt.topo_preset == "tiny"     ? generator_params::tiny()
                                  : opt.topo_preset == "medium" ? generator_params::medium()
                                  : opt.topo_preset == "large"  ? generator_params::large()
                                                                : generator_params::small();
        params.seed = opt.seed;
        topo = generate_topology(params);
    }
    std::printf("topology: %zu devices, %zu links, %zu circuit sets\n", topo.devices().size(),
                topo.links().size(), topo.circuit_sets().size());

    if (!opt.export_topo.empty()) {
        std::ofstream out(opt.export_topo);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", opt.export_topo.c_str());
            return 1;
        }
        out << export_topology(topo);
        std::printf("wrote %s\n", opt.export_topo.c_str());
        return 0;
    }

    rng crand(opt.seed + 1);
    const customer_registry customers = customer_registry::generate(topo, opt.customers, crand);
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    if (opt.extended) register_extended_alert_types(registry);
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    if (parsed.mode == serve::run_mode::serve) {
        return run_serve(opt, topo, customers, registry, syslog);
    }

    std::unique_ptr<fault_injector> faults;
    if (!opt.faults_spec.empty()) {
        fault_parse_result parsed_faults = parse_fault_spec(opt.faults_spec);
        for (const fault_parse_error& e : parsed_faults.errors) {
            std::fprintf(stderr, "--faults: bad clause '%s': %s\n", e.clause.c_str(),
                         e.message.c_str());
        }
        if (!parsed_faults.ok()) return 2;
        faults = std::make_unique<fault_injector>(parsed_faults.spec);
        std::printf("faults: injecting '%s'\n", opt.faults_spec.c_str());
    }

    overload::controller guard(opt.overload_config(), &topo, &registry);
    if (!guard.pass_through()) {
        std::printf("overload: admission budget %llu/window, breakers %s\n",
                    static_cast<unsigned long long>(opt.admission_budget),
                    opt.breaker ? "on" : "off");
    }

    const skynet_engine::deps deps{&topo, &customers, &registry, &syslog};
    if (opt.shards > 0) {
        sharded_config scfg = opt.sharded();
        if (faults) {
            scfg.force_full = faults->queue_pressure_hook();
            scfg.worker_stall = faults->worker_stall_hook();
            // Injected stalls without a watchdog would wedge the run;
            // arm a default deadline so the drill recovers on its own.
            if (scfg.worker_stall && scfg.watchdog_deadline_ms == 0) {
                scfg.watchdog_deadline_ms = 250;
            }
        }
        sharded_engine engine(deps, scfg);
        std::printf("engine: region-sharded, %zu shards, overflow=%s%s\n", engine.shard_count(),
                    std::string(to_string(scfg.overflow)).c_str(),
                    scfg.watchdog_deadline_ms > 0 ? ", watchdog on" : "");
        return run_session(engine, opt, topo, customers, faults.get(), &guard);
    }
    skynet_engine engine(deps, opt.pipeline);
    return run_session(engine, opt, topo, customers, faults.get(), &guard);
}
