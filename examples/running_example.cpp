// The paper's Figure 6 running example, end to end.
//
// Reproduces the walk-through: raw alerts from Ping, Out-of-band, Syslog
// and SNMP arrive; the preprocessor structures them; the locator groups
// them into two incidents (a logic-site-wide failure and an isolated
// cluster problem); the evaluator scores them so operators address the
// big one first. Also prints the Figure 7 reachability matrix.
#include <cstdio>

#include "skynet/core/pipeline.h"
#include "skynet/syslog/message_catalog.h"
#include "skynet/telemetry/reachability.h"
#include "skynet/topology/generator.h"

using namespace skynet;

int main() {
    std::printf("=== SkyNet running example (paper Figure 6) ===\n\n");

    const topology topo = generate_topology(generator_params::small());
    rng rand(2024);
    const customer_registry customers = customer_registry::generate(topo, 400, rand);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    skynet_engine engine(skynet_engine::deps{&topo, &customers, &registry, &syslog});
    network_state state(&topo, &customers);

    // Incident 1 stage: a logic-site failure. Devices i, ii live in
    // different sites of logic site 2; alerts land at several levels.
    location ls2;
    for (const device& d : topo.devices()) {
        if (d.role == device_role::csr) {
            ls2 = d.loc.ancestor_at(hierarchy_level::logic_site);
            break;
        }
    }
    // Device ii: a CSR of the logic site; device i: an AGG directly
    // linked to it — their alerts share one root cause, like the paper's
    // devices i and ii.
    const device* dev_ii_ptr = nullptr;
    for (const device& d : topo.devices()) {
        if (ls2.contains(d.loc) && d.role == device_role::csr) {
            dev_ii_ptr = &d;
            break;
        }
    }
    const location site_of_ii = dev_ii_ptr->loc.ancestor_at(hierarchy_level::site);
    const device* dev_i_ptr = nullptr;
    for (const device& d : topo.devices()) {
        if (site_of_ii.contains(d.loc) && d.role == device_role::agg) {
            dev_i_ptr = &d;
            break;
        }
    }
    const device& dev_i = *dev_i_ptr;
    const device& dev_ii = *dev_ii_ptr;

    sim_time now = 0;
    auto raw = [&](data_source src, std::string kind, const device& d, double metric) {
        raw_alert a;
        a.source = src;
        a.timestamp = now;
        a.kind = std::move(kind);
        a.loc = d.loc;
        a.device = d.id;
        a.metric = metric;
        engine.ingest(a, now);
    };
    auto syslog_raw = [&](const char* pattern, const device& d) {
        raw_alert a;
        a.source = data_source::syslog;
        a.timestamp = now;
        a.message = render_syslog(pattern, rand);
        a.loc = d.loc;
        a.device = d.id;
        engine.ingest(a, now);
    };

    std::printf("-- feeding the alert flood of incident 1 (logic site 2) --\n");
    for (int tick = 0; tick < 8; ++tick) {
        raw(data_source::ping, "packet loss", dev_i, 0.31);
        raw(data_source::ping, "packet loss", dev_ii, 0.28);
        raw(data_source::out_of_band, "device inaccessible", dev_i, 1.0);
        raw(data_source::snmp, "traffic congestion", dev_ii, 0.97);
        if (tick == 2) {
            syslog_raw("%LINK-3-UPDOWN: Interface {intf} changed state to down", dev_i);
            syslog_raw("%BGP-5-ADJCHANGE: neighbor {ip} Down BGP Notification sent holdtimer "
                       "expired",
                       dev_ii);
            syslog_raw("%FIB-2-BLACKHOLE: prefix {ip} resolves to null adjacency traffic "
                       "blackholed",
                       dev_i);
        }
        if (tick == 4) {
            syslog_raw("%PLATFORM-2-HW_ERROR: ASIC {num} parity error detected slot {num} "
                       "requires reset",
                       dev_i);
            syslog_raw("%SYS-1-MEMORY: out of memory malloc failed in process {proc} size {num}",
                       dev_ii);
        }
        now += seconds(2);
        engine.tick(now, state);
    }

    // Incident 2 stage: an unrelated single-device problem far away
    // ("device n" of Figure 5c).
    const device* dev_n = nullptr;
    for (const device& d : topo.devices()) {
        if (!ls2.contains(d.loc) && d.role == device_role::tor) {
            dev_n = &d;
            break;
        }
    }
    std::printf("-- feeding the small, unrelated incident 2 (device n) --\n\n");
    for (int tick = 0; tick < 4; ++tick) {
        raw(data_source::internet_telemetry, "internet packet loss", *dev_n, 0.12);
        if (tick == 1) {
            syslog_raw("%PORT-5-IF_DOWN: port {intf} is down transceiver signal lost", *dev_n);
            syslog_raw("%SYS-2-CRASH: process {proc} terminated unexpectedly core dumped signal "
                       "{num}",
                       *dev_n);
        }
        now += seconds(2);
        engine.tick(now, state);
    }

    // The locator grouped everything; the evaluator ranks.
    const auto reports = engine.open_reports(now, state);
    std::printf("SkyNet produced %zu incidents (ranked by risk):\n\n", reports.size());
    for (const incident_report& r : reports) {
        std::printf("%s\n", r.render().c_str());
    }

    // Figure 7: the reachability matrix for the big incident.
    if (!reports.empty()) {
        const reachability_matrix m = engine.scorer().build_matrix(reports.front().inc);
        if (m.size() >= 2) {
            std::printf("Reachability matrix (Figure 7):\n%s\n", m.to_string().c_str());
        }
    }
    return 0;
}
