// §9 "better thresholds" end to end: record labeled episodes from the
// simulator, convert the traces into a tuning corpus, grid-search the
// incident thresholds, and report the winner — the automated version of
// the §6.3 methodology that produced the production setting 2/1+2/5.
#include <cstdio>

#include "skynet/core/threshold_tuner.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

using namespace skynet;

int main() {
    std::printf("=== Data-driven threshold tuning (paper 9, 'better thresholds') ===\n\n");

    const topology topo = generate_topology(generator_params::small());
    rng crand(3);
    const customer_registry customers = customer_registry::generate(topo, 300, crand);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    // 1. Record a labeled corpus: a dozen failures of mixed class and
    //    severity, each with concurrent benign noise.
    std::printf("recording labeled episodes...\n");
    std::vector<tuning_episode> corpus;
    for (int e = 0; e < 12; ++e) {
        const std::uint64_t seed = static_cast<std::uint64_t>(500 + e);
        simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = seed});
        sim.add_default_monitors(monitor_options{.noise_rate = 0.03});
        rng srand(seed + 1);
        sim.inject(make_random_scenario(topo, srand, e % 2 == 0), minutes(1), minutes(6));
        sim.inject(make_flash_crowd(topo, srand), minutes(1), minutes(6));

        std::vector<traced_alert> trace;
        sim.run_until(minutes(9), [&trace](const raw_alert& a, sim_time arrival) {
            trace.push_back(traced_alert{.alert = a, .arrival = arrival});
        });
        corpus.push_back(
            make_tuning_episode(topo, registry, syslog, trace, sim.ground_truth()));
        std::printf("  episode %2d: %-44s %5zu raw -> %4zu structured\n", e + 1,
                    sim.ground_truth().front().name.c_str(), trace.size(),
                    corpus.back().alerts.size());
    }

    // 2. Grid search.
    const std::vector<incident_thresholds> grid = default_threshold_grid();
    const tuning_result result = tune_thresholds(topo, corpus, grid);

    std::printf("\n%-12s %6s %6s %6s\n", "candidate", "TP", "FP", "FN");
    for (const threshold_candidate_result& c : result.all) {
        std::printf("%-12s %6d %6d %6d%s\n", c.thresholds.to_string().c_str(),
                    c.accuracy.true_positives, c.accuracy.false_positives,
                    c.accuracy.false_negatives,
                    c.thresholds.to_string() == result.best.to_string() ? "   <- selected"
                                                                        : "");
    }
    std::printf("\nselected thresholds: %s (FN=%d, FP=%d)\n", result.best.to_string().c_str(),
                result.best_accuracy.false_negatives, result.best_accuracy.false_positives);
    std::printf("The selection rule mirrors 6.3: never tolerate false negatives,\n"
                "then minimize false positives, then prefer stricter settings.\n");
    return 0;
}
