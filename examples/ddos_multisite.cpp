// §5.1 "multiple scene detection": a DDoS attack hits several locations
// at once. SkyNet clusters the alerts by location into separate
// incidents, so the operator sees every attack point instead of chasing
// one and overlooking the rest.
#include <cstdio>
#include <set>

#include "skynet/core/pipeline.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

using namespace skynet;

int main() {
    std::printf("=== Multi-site DDoS (paper 5.1, multiple scene detection) ===\n\n");

    const topology topo = generate_topology(generator_params::small());
    rng rand(123);
    const customer_registry customers = customer_registry::generate(topo, 600, rand);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = 17});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.02});
    rng srand(18);
    sim.inject(make_security_ddos(topo, srand, 4), minutes(1), minutes(6));

    std::printf("attacked sites (ground truth):\n");
    for (const location& site : sim.ground_truth().front().scopes) {
        std::printf("  %s\n", site.to_string().c_str());
    }
    std::printf("\n");

    skynet_engine skynet(skynet_engine::deps{&topo, &customers, &registry, &syslog});
    sim.run_until(minutes(8),
                  [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                  [&](sim_time now) { skynet.tick(now, sim.state()); });
    skynet.finish(sim.clock().now(), sim.state());

    const auto reports = skynet.take_reports();
    std::printf("SkyNet produced %zu incidents:\n", reports.size());
    std::set<std::string> sites;
    for (const incident_report& r : reports) {
        const location site = r.inc.root.ancestor_at(hierarchy_level::logic_site);
        sites.insert(site.to_string());
        std::printf("  incident %llu at %s (score %.1f)\n",
                    static_cast<unsigned long long>(r.inc.id), r.inc.root.to_string().c_str(),
                    r.severity.score);
    }
    std::printf("\ndistinct logic sites reported: %zu\n", sites.size());
    std::printf("Each attack point appears as its own incident -> operators can\n"
                "block all of them at once instead of discovering them serially.\n");
    return 0;
}
