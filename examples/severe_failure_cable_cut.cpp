// The §2.2 / §5.1 severe failure: half the cables of a data center's
// Internet entrance fail at once.
//
// Pre-SkyNet this took hours: the congestion alert was buried in a flood
// of 10,000+ alerts and operators chased device failures and cable
// repairs. With SkyNet the flood collapses into one incident pinned at
// the data center entrance, root-cause congestion alerts grouped and
// visible, and the reachability matrix zooming in on the failure point.
#include <cstdio>

#include "skynet/core/pipeline.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

using namespace skynet;

int main() {
    std::printf("=== Severe failure: internet entrance cable cut (paper 2.2) ===\n\n");

    const topology topo = generate_topology(generator_params::small());
    rng rand(99);
    const customer_registry customers = customer_registry::generate(topo, 600, rand);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    // Pick a data center (logic site) and cut 60 % of its entry circuits.
    location dc;
    for (const device& d : topo.devices()) {
        if (d.role == device_role::isr) {
            dc = d.loc.ancestor_at(hierarchy_level::logic_site);
            break;
        }
    }
    std::printf("target data center: %s\n\n", dc.to_string().c_str());

    simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = 5});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.02});
    sim.inject(make_internet_entry_cut(topo, dc, 0.6), minutes(1), minutes(8));

    skynet_engine skynet(skynet_engine::deps{&topo, &customers, &registry, &syslog});
    std::int64_t raw = 0;
    sim.run_until(minutes(9),
                  [&](const raw_alert& a, sim_time arrival) {
                      ++raw;
                      skynet.ingest(a, arrival);
                  },
                  [&](sim_time now) { skynet.tick(now, sim.state()); });
    skynet.finish(sim.clock().now(), sim.state());

    const preprocessor_stats& stats = skynet.preprocessing_stats();
    std::printf("raw alert flood:        %lld alerts\n", static_cast<long long>(raw));
    std::printf("after preprocessing:    %lld structured alerts\n",
                static_cast<long long>(stats.emitted_new));

    const auto reports = skynet.take_reports();
    std::printf("incidents produced:     %zu\n\n", reports.size());
    for (const incident_report& r : reports) {
        if (!(r.inc.root.contains(dc) || dc.contains(r.inc.root))) continue;
        std::printf("%s\n", r.render().c_str());
        std::printf("The incident pins the failure at the data center entrance;\n"
                    "the congestion root-cause alerts that were 'obscured by a\n"
                    "flood of alerts' in the paper's war story are grouped under\n"
                    "Root cause alerts above. Mitigation: reduce bandwidth /\n"
                    "migrate services, then repair the cables.\n");
        break;
    }
    return 0;
}
