// §7.1 visualization: the alert-voting graph.
//
// Reproduces the logic-site case where the highest-voted device turned
// out to be a route reflector — not a common device at that level — and
// pointed operators straight at the root cause. Prints the ranked ASCII
// table and the Graphviz DOT rendering.
#include <cstdio>

#include "skynet/core/pipeline.h"
#include "skynet/topology/generator.h"
#include "skynet/viz/vote_graph.h"

using namespace skynet;

int main() {
    std::printf("=== Alert-voting visualization (paper 7.1) ===\n\n");

    const topology topo = generate_topology(generator_params::tiny());

    // The reflector fails: it reports BGP jitter, and every DCBR peering
    // with it reports the session dropping.
    device_id rr = invalid_device;
    for (const device& d : topo.devices()) {
        if (d.role == device_role::reflector) rr = d.id;
    }
    if (rr == invalid_device) {
        std::printf("no reflector in this topology\n");
        return 1;
    }

    incident inc;
    inc.id = 1;
    inc.root = topo.device_at(rr).loc.ancestor_at(hierarchy_level::logic_site);
    inc.when = time_range{0, minutes(3)};
    auto add = [&](device_id dev, const char* type, alert_category cat) {
        structured_alert a;
        a.type_name = type;
        a.category = cat;
        a.when = inc.when;
        a.loc = topo.device_at(dev).loc;
        a.device = dev;
        inc.alerts.push_back(a);
    };
    add(rr, "bgp link jitter", alert_category::root_cause);
    for (device_id nb : topo.neighbors(rr)) {
        add(nb, "bgp peer down", alert_category::abnormal);
        add(nb, "route churn", alert_category::abnormal);
    }

    vote_graph graph(&topo);
    graph.add_incident(inc);

    std::printf("vote ranking:\n%s\n", graph.to_ascii().c_str());
    const vote_graph::ranked_device top = graph.ranking().front();
    std::printf("highest-voted device: %s (role %s)\n", topo.device_at(top.id).name.c_str(),
                std::string(to_string(topo.device_at(top.id).role)).c_str());
    std::printf("-> a route reflector at logic-site level is unusual; operators\n"
                "   isolate it first, which is exactly how the paper's incident\n"
                "   was cut short.\n\n");

    std::printf("Graphviz rendering (pipe into `dot -Tsvg`):\n\n%s", graph.to_dot().c_str());
    return 0;
}
