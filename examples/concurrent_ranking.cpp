// §5.1 "scene ranking": two failures at once. One is geographically
// bigger and noisier; the other hurts critical customers. The evaluator
// ranks the critical-customer incident first — the call the operator got
// wrong in the paper's pre-SkyNet war story.
#include <cstdio>

#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

using namespace skynet;

namespace {

/// A flap storm across a whole site — very loud (syslog/SNMP alerts from
/// every device) but service keeps flowing.
class flap_storm final : public scenario {
public:
    flap_storm(const topology& t, location site) : loc_(std::move(site)) {
        for (const skynet::link& l : t.links()) {
            if (loc_.contains(t.device_at(l.a).loc) || loc_.contains(t.device_at(l.b).loc)) {
                links_.push_back(l.id);
            }
        }
        victims_ = t.devices_under(loc_);
    }
    std::string name() const override { return "noisy-flap-storm"; }
    root_cause cause() const override { return root_cause::device_software; }
    location scope() const override { return loc_; }
    bool severe() const override { return true; }
    void on_start(network_state& s, rng&, sim_time) override {
        for (link_id lid : links_) s.link_state(lid).flapping = true;
        for (device_id v : victims_) s.device_state(v).cpu = 0.93;
    }
    void on_end(network_state& s, rng&, sim_time) override {
        for (link_id lid : links_) s.link_state(lid).flapping = false;
        for (device_id v : victims_) s.device_state(v).cpu = 0.3;
    }

private:
    location loc_;
    std::vector<link_id> links_;
    std::vector<device_id> victims_;
};

/// Corrupts a cluster's aggregation circuits directly — smaller, but it
/// bleeds the critical customers' packets.
class corrupt_b final : public scenario {
public:
    corrupt_b(const topology& t, location cl) : loc_(std::move(cl)) {
        for (const circuit_set& cs : t.circuit_sets()) {
            if (loc_.contains(t.device_at(cs.a).loc) || loc_.contains(t.device_at(cs.b).loc)) {
                for (link_id lid : cs.circuits) circuits_.push_back(lid);
            }
        }
    }
    std::string name() const override { return "critical-corruption"; }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return true; }
    void on_start(network_state& s, rng&, sim_time) override {
        for (link_id lid : circuits_) s.link_state(lid).corruption_loss = 0.3;
    }
    void on_end(network_state& s, rng&, sim_time) override {
        for (link_id lid : circuits_) s.link_state(lid) = link_health{};
    }

private:
    location loc_;
    std::vector<link_id> circuits_;
};

}  // namespace

int main() {
    std::printf("=== Concurrent failures and incident ranking (paper 5.1) ===\n\n");

    const topology topo = generate_topology(generator_params::small());
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    // Hand-build the customer base to make the contrast sharp: cluster A
    // hosts a horde of standard customers; cluster B hosts the critical
    // ones with SLA flows.
    customer_registry customers;
    std::vector<location> clusters = topo.clusters_under(location{});
    const location cluster_a = clusters.at(0);
    const location cluster_b = clusters.at(clusters.size() / 2);

    auto attach_cluster = [&](const location& cluster, customer_tier tier, int n) {
        for (const circuit_set& cs : topo.circuit_sets()) {
            const bool touches = cluster.contains(topo.device_at(cs.a).loc) ||
                                 cluster.contains(topo.device_at(cs.b).loc);
            if (!touches) continue;
            for (int i = 0; i < n; ++i) {
                const customer_id c = customers.add_customer(
                    std::string(to_string(tier)) + "-" + cluster.to_string() + "-" +
                        std::to_string(cs.id) + "-" + std::to_string(i),
                    tier);
                customers.attach(c, cs.id);
                if (tier != customer_tier::standard) {
                    (void)customers.add_sla_flow(c, cs.id, 2.0);
                }
            }
        }
    };
    attach_cluster(cluster_a, customer_tier::standard, 2);
    attach_cluster(cluster_b, customer_tier::critical, 3);

    std::printf("big noisy failure at:   %s (standard customers)\n", cluster_a.to_string().c_str());
    std::printf("critical failure at:    %s (critical customers + SLAs)\n\n",
                cluster_b.to_string().c_str());

    simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = 4});
    sim.add_default_monitors();

    // Failure 1: a flap storm across cluster A's whole site — very loud
    // (syslog/SNMP alerts from every device) but service keeps flowing.
    // Failure 2: cluster B's uplinks corrupt — smaller, but it bleeds the
    // critical customers' packets.
    sim.inject(std::make_unique<flap_storm>(topo, cluster_a.parent()), minutes(1), minutes(6));
    sim.inject(std::make_unique<corrupt_b>(topo, cluster_b), minutes(1), minutes(6));

    // Uncap the display score so the ranking discriminates between two
    // heavy incidents instead of saturating both at 100. Deterministic
    // incident ids make the sequential and sharded rankings comparable.
    skynet_config cfg;
    cfg.eval.score_cap = 1e12;
    cfg.loc.deterministic_ids = true;
    skynet_engine skynet({&topo, &customers, &registry, &syslog}, cfg);
    std::vector<incident_report> ranked;
    sim.run_until_batched(
        minutes(6),
        [&](std::span<const traced_alert> batch) { skynet.ingest_batch(batch); },
        [&](sim_time now) {
            skynet.tick(now, sim.state());
            if (now == minutes(5)) ranked = skynet.reports(report_scope::open, now, sim.state());
        });

    std::printf("live incident ranking at t+5min (most urgent first):\n");
    for (const incident_report& r : ranked) {
        const bool critical = r.inc.root.contains(cluster_b) || cluster_b.contains(r.inc.root);
        std::printf("  score %6.1f  %s%s\n", r.severity.score, r.inc.root.to_string().c_str(),
                    critical ? "   <- critical customers" : "");
    }
    if (!ranked.empty()) {
        const bool top_is_critical = ranked.front().inc.root.contains(cluster_b) ||
                                     cluster_b.contains(ranked.front().inc.root);
        std::printf("\n%s\n", top_is_critical
                                  ? "The critical-customer incident outranks the bigger, "
                                    "noisier one — operators fix the right thing first."
                                  : "Ranking did not favour the critical incident in this run.");
    }

    // Same episode through the region-sharded engine (the simulation is
    // deterministic, so the replay is identical): the merged live view
    // must rank the incidents in exactly the same order.
    simulation_engine sim2(&topo, &customers, engine_params{.tick = seconds(2), .seed = 4});
    sim2.add_default_monitors();
    sim2.inject(std::make_unique<flap_storm>(topo, cluster_a.parent()), minutes(1), minutes(6));
    sim2.inject(std::make_unique<corrupt_b>(topo, cluster_b), minutes(1), minutes(6));

    sharded_config scfg;
    scfg.shards = 4;
    scfg.engine = cfg;
    sharded_engine sharded({&topo, &customers, &registry, &syslog}, scfg);
    std::vector<incident_report> sharded_ranked;
    sim2.run_until_batched(
        minutes(6),
        [&](std::span<const traced_alert> batch) { sharded.ingest_batch(batch); },
        [&](sim_time now) {
            sharded.tick(now, sim2.state());
            if (now == minutes(5)) {
                sharded_ranked = sharded.reports(report_scope::open, now, sim2.state());
            }
        });

    bool same = sharded_ranked.size() == ranked.size();
    for (std::size_t i = 0; same && i < ranked.size(); ++i) {
        same = sharded_ranked[i].inc.id == ranked[i].inc.id &&
               sharded_ranked[i].severity.score == ranked[i].severity.score;
    }
    std::printf("\nregion-sharded engine (4 shards) live ranking: %s\n",
                same ? "identical to the sequential engine" : "DIFFERS (unexpected)");
    return 0;
}
