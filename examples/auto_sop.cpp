// §5.1 "automatic SOP for known failures": a single device misbehaves in
// a textbook way (packet loss, quiet group, manageable traffic); the
// heuristic rule engine recognizes the pattern and isolates the device
// with a rollback plan prepared — no human in the loop, mitigation in
// about a minute.
#include <cstdio>

#include "skynet/core/preprocessor.h"
#include "skynet/heuristics/sop.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

using namespace skynet;

int main() {
    std::printf("=== Automatic SOP for a known failure (paper 5.1) ===\n\n");

    const topology topo = generate_topology(generator_params::tiny());
    rng rand(3);
    const customer_registry customers = customer_registry::generate(topo, 50, rand);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = 6});
    sim.add_default_monitors();
    sim.state().reset_traffic(0.3);  // group traffic manageable

    rng srand(8);
    auto failure = make_device_hardware_failure(topo, srand, false);
    const device_id victim = failure->culprit().value();
    std::printf("injected: %s on %s\n\n", failure->name().c_str(),
                topo.device_at(victim).name.c_str());
    sim.inject(std::move(failure), seconds(10), minutes(10));

    preprocessor pre(&topo, &registry, &syslog, {});
    const sop_engine sop = sop_engine::with_default_rules(&topo);
    std::printf("rule engine loaded with %zu rules\n", sop.rule_count());

    std::vector<structured_alert> recent;
    bool done = false;
    sim.run_until(
        minutes(10),
        [&](const raw_alert& a, sim_time arrival) {
            for (auto& ev : pre.process(a, arrival)) recent.push_back(ev.alert);
        },
        [&](sim_time now) {
            (void)pre.flush(now);
            if (done) return;
            for (const sop_match& m : sop.match(recent, sim.state())) {
                std::printf("\n[%s] rule fired: \"%s\"\n", format_time(now).c_str(),
                            m.rule->name.c_str());
                std::printf("  action:   %s (%s)\n", std::string(to_string(m.action)).c_str(),
                            topo.device_at(m.device).name.c_str());
                std::printf("  rollback: %s (prepared, not executed)\n",
                            m.rollback_note.c_str());
                auto rollback = sop.execute(m, sim.state());
                (void)rollback;  // kept by the operator in case the call was wrong
                std::printf("  device isolated: %s\n",
                            sim.state().device_state(m.device).isolated ? "yes" : "no");
                done = true;
            }
        });

    std::printf("\n%s\n", done ? "Known failure mitigated automatically — the severe/unknown "
                                 "ones are what SkyNet itself exists for."
                               : "No rule matched (unexpected for this scripted failure).");
    return 0;
}
