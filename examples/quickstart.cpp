// Quickstart: the smallest end-to-end use of the SkyNet library.
//
// Build a network, create the engine, feed it raw alerts from a couple
// of monitoring tools, and read back the ranked incident report.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "skynet/core/pipeline.h"
#include "skynet/topology/generator.h"

using namespace skynet;

int main() {
    // 1. A network. In production this is your inventory; here the
    //    generator builds a small multi-region cloud.
    const topology topo = generate_topology(generator_params::tiny());
    rng rand(7);
    const customer_registry customers = customer_registry::generate(topo, 50, rand);

    // 2. The SkyNet engine: preprocessor + locator + evaluator, with the
    //    built-in alert-type catalog and a syslog classifier trained on
    //    the bundled message corpus.
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    skynet_engine engine(skynet_engine::deps{&topo, &customers, &registry, &syslog});

    // 3. Feed raw alerts. Normally these stream from your monitoring
    //    tools; we fabricate a burst pointing at one cluster.
    const device& victim = topo.devices().front();
    network_state state(&topo, &customers);  // live state for severity

    sim_time now = 0;
    auto feed = [&](data_source src, const char* kind, double metric) {
        raw_alert a;
        a.source = src;
        a.timestamp = now;
        a.kind = kind;
        a.loc = victim.loc;
        a.device = victim.id;
        a.metric = metric;
        engine.ingest(a, now);
    };

    for (int tick = 0; tick < 5; ++tick) {
        feed(data_source::ping, "packet loss", 0.2);
        feed(data_source::traffic_stats, "sflow packet loss", 0.15);
        feed(data_source::snmp, "link down", 1.0);
        feed(data_source::snmp, "traffic congestion", 0.95);
        now += seconds(2);
        engine.tick(now, state);
    }

    // 4. Read incidents. Open incidents are ranked most-severe first.
    const auto open = engine.open_reports(now, state);
    std::printf("open incidents: %zu\n\n", open.size());
    for (const incident_report& report : open) {
        std::printf("%s\n", report.render().c_str());
    }
    return 0;
}
