// Tests for the evaluator (§4.3): Equations 1-3, the severity filter and
// location zoom-in.
#include <gtest/gtest.h>

#include <cmath>

#include "skynet/core/evaluator.h"

namespace skynet {
namespace {

/// A site with two clusters; customers on the cluster uplink circuit set.
struct fixture {
    topology topo;
    customer_registry customers;
    device_id tor1, tor2, agg1, csr;
    circuit_set_id uplink, backup;
    location site{"R", "C", "LS", "S"};
    location cluster1{"R", "C", "LS", "S", "CL1"};
    location cluster2{"R", "C", "LS", "S", "CL2"};

    fixture() {
        tor1 = topo.add_device("tor1", device_role::tor, cluster1.child("tor1"));
        tor2 = topo.add_device("tor2", device_role::tor, cluster2.child("tor2"));
        agg1 = topo.add_device("agg1", device_role::agg, cluster1.child("agg1"));
        csr = topo.add_device("csr1", device_role::csr, site.child("csr1"));
        uplink = topo.add_circuit_set("uplink", agg1, csr);
        backup = topo.add_circuit_set("backup", tor1, agg1);
        (void)topo.add_link(agg1, csr, uplink, 100.0);
        (void)topo.add_link(agg1, csr, uplink, 100.0);
        (void)topo.add_link(tor1, agg1, backup, 100.0);

        // Ten critical customers ride the uplink.
        for (int i = 0; i < 10; ++i) {
            const customer_id c =
                customers.add_customer("vip-" + std::to_string(i), customer_tier::critical);
            customers.attach(c, uplink);
            (void)customers.add_sla_flow(c, uplink, 2.0);
        }
    }

    incident make_incident(double loss, sim_duration age) const {
        incident inc;
        inc.id = 1;
        inc.root = site;
        inc.when = time_range{0, age};
        structured_alert a;
        a.type = 0;
        a.type_name = "packet loss";
        a.source = data_source::ping;
        a.category = alert_category::failure;
        a.when = inc.when;
        a.loc = cluster1;
        a.metric = loss;
        inc.alerts.push_back(a);
        return inc;
    }
};

TEST(EvaluatorTest, RelatedCircuitSets) {
    fixture f;
    evaluator eval(&f.topo, &f.customers);
    incident inc = f.make_incident(0.1, minutes(5));
    EXPECT_EQ(eval.related_circuit_sets(inc).size(), 2u);  // uplink + backup

    inc.root = f.cluster1;
    EXPECT_EQ(eval.related_circuit_sets(inc).size(), 2u);  // both touch cluster1 devices

    inc.root = location{"Elsewhere"};
    EXPECT_TRUE(eval.related_circuit_sets(inc).empty());
}

TEST(EvaluatorTest, ImpactFactorFloorsAtOne) {
    // Equation 1: max(1, ...) keeps severity non-zero with no breakage.
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    const severity_breakdown s = eval.evaluate(f.make_incident(0.1, minutes(5)), state, minutes(5));
    EXPECT_DOUBLE_EQ(s.impact_factor, 1.0);
}

TEST(EvaluatorTest, ImpactGrowsWithBreakRatioAndCustomers) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);

    // Break half the uplink: d = 0.5, g = 20 (critical), u = 10.
    state.link_state(f.topo.circuit_set_at(f.uplink).circuits[0]).up = false;
    const severity_breakdown s = eval.evaluate(f.make_incident(0.1, minutes(5)), state, minutes(5));
    EXPECT_NEAR(s.impact_factor, 0.5 * 20.0 * 10.0, 1e-6);
}

TEST(EvaluatorTest, SlaOverloadContributesToImpact) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    // Push half the SLA flows over their limit: l = 0.5.
    for (int i = 0; i < 5; ++i) {
        state.set_flow_rate_gbps(static_cast<sla_flow_id>(i), 3.0);
    }
    const severity_breakdown s = eval.evaluate(f.make_incident(0.1, minutes(5)), state, minutes(5));
    EXPECT_NEAR(s.impact_factor, 0.5 * 20.0 * 10.0, 1e-6);
    EXPECT_NEAR(s.max_sla_overload, 0.5, 1e-9);
}

TEST(EvaluatorTest, TimeFactorGrowsWithDuration) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    const auto young = eval.evaluate(f.make_incident(0.1, minutes(1)), state, minutes(1));
    const auto old_inc = eval.evaluate(f.make_incident(0.1, minutes(30)), state, minutes(30));
    EXPECT_GT(old_inc.time_factor, young.time_factor);
    EXPECT_GT(old_inc.score, young.score);
}

TEST(EvaluatorTest, TimeFactorGrowsWithLossRate) {
    // "An increased average packet loss rate accelerates this growth."
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    const auto mild = eval.evaluate(f.make_incident(0.05, minutes(10)), state, minutes(10));
    const auto harsh = eval.evaluate(f.make_incident(0.5, minutes(10)), state, minutes(10));
    EXPECT_GT(harsh.time_factor, mild.time_factor);
}

class DurationMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(DurationMonotonicity, ScoreNeverDecreasesWithAge) {
    // Property sweep over loss rates: severity is monotone in duration,
    // so ignored incidents eventually capture attention.
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    double last = -1.0;
    for (const sim_duration age :
         {seconds(30), minutes(2), minutes(10), minutes(30), hours(2)}) {
        const auto s = eval.evaluate(f.make_incident(GetParam(), age), state, age);
        EXPECT_GE(s.score, last);
        last = s.score;
    }
}

INSTANTIATE_TEST_SUITE_P(LossRates, DurationMonotonicity,
                         ::testing::Values(0.01, 0.05, 0.2, 0.5, 0.9));

TEST(EvaluatorTest, ScoreCapped) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    for (link_id lid : f.topo.circuit_set_at(f.uplink).circuits) {
        state.link_state(lid).up = false;
    }
    evaluator eval(&f.topo, &f.customers);
    const auto s = eval.evaluate(f.make_incident(0.9, days(1)), state, days(1));
    EXPECT_DOUBLE_EQ(s.score, eval.config().score_cap);
}

TEST(EvaluatorTest, ZeroLossZeroOverloadScoresZero) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    incident inc = f.make_incident(0.0, minutes(10));
    inc.alerts[0].category = alert_category::abnormal;  // no failure metrics at all
    const auto s = eval.evaluate(inc, state, minutes(10));
    // R_k and L_k are both ~0, so the clamped log base is huge and the
    // time factor stays small: the incident never escalates on its own.
    EXPECT_LT(s.time_factor, 1.0);
    EXPECT_LT(s.score, 10.0);  // stays under the severity threshold
}

TEST(EvaluatorTest, SeverityFilterThreshold) {
    fixture f;
    evaluator eval(&f.topo, &f.customers, evaluator_config{.severity_threshold = 10.0});
    severity_breakdown below;
    below.score = 9.9;
    severity_breakdown above;
    above.score = 10.0;
    EXPECT_FALSE(eval.passes_filter(below));
    EXPECT_TRUE(eval.passes_filter(above));
}

TEST(EvaluatorTest, SeverityFilterBoundaryIsInclusive) {
    // The filter is `score >= threshold`: a score exactly at 10 is kept,
    // the largest double strictly below 10 is filtered. One ULP decides.
    fixture f;
    evaluator eval(&f.topo, &f.customers, evaluator_config{.severity_threshold = 10.0});
    severity_breakdown s;
    s.score = 10.0;
    EXPECT_TRUE(eval.passes_filter(s));
    s.score = std::nextafter(10.0, 0.0);
    EXPECT_FALSE(eval.passes_filter(s));
    s.score = std::nextafter(10.0, 20.0);
    EXPECT_TRUE(eval.passes_filter(s));
}

TEST(EvaluatorTest, SeverityFilterBoundaryOnComputedScore) {
    // Same one-ULP boundary, but against a *computed* score: pin the
    // threshold to exactly what evaluate() returns, then nudge it up by
    // one ULP and watch the same incident get filtered.
    fixture f;
    network_state state(&f.topo, &f.customers);
    const incident inc = f.make_incident(0.2, minutes(10));

    evaluator probe(&f.topo, &f.customers);
    const double score = probe.evaluate(inc, state, minutes(10)).score;
    ASSERT_GT(score, 0.0);

    evaluator at(&f.topo, &f.customers, evaluator_config{.severity_threshold = score});
    EXPECT_TRUE(at.passes_filter(at.evaluate(inc, state, minutes(10))));

    const double barely_above = std::nextafter(score, score + 1.0);
    evaluator over(&f.topo, &f.customers,
                   evaluator_config{.severity_threshold = barely_above});
    EXPECT_FALSE(over.passes_filter(over.evaluate(inc, state, minutes(10))));
}

TEST(EvaluatorTest, BuildMatrixFromPairAlerts) {
    fixture f;
    evaluator eval(&f.topo, &f.customers);
    incident inc;
    inc.root = f.site;
    structured_alert a;
    a.category = alert_category::failure;
    a.metric = 0.3;
    a.src_loc = f.cluster1;
    a.dst_loc = f.cluster2;
    a.loc = f.cluster1;
    inc.alerts.push_back(a);
    const reachability_matrix m = eval.build_matrix(inc);
    EXPECT_EQ(m.size(), 2u);
    EXPECT_DOUBLE_EQ(m.at(f.cluster1, f.cluster2), 0.3);
}

TEST(EvaluatorTest, ZoomInFindsFocalCluster) {
    // Figure 7: cluster1's row and column dark across several endpoints.
    fixture f;
    evaluator eval(&f.topo, &f.customers);
    incident inc;
    inc.root = f.site;
    const location cl3 = f.site.child("CL3");
    const location cl4 = f.site.child("CL4");
    const location cl5 = f.site.child("CL5");
    const location cl6 = f.site.child("CL6");
    for (const location& other : {f.cluster2, cl3, cl4, cl5, cl6}) {
        for (const auto& [src, dst] : {std::pair{f.cluster1, other}, {other, f.cluster1}}) {
            structured_alert a;
            a.category = alert_category::failure;
            a.metric = 0.15;
            a.src_loc = src;
            a.dst_loc = dst;
            a.loc = src;
            inc.alerts.push_back(a);
        }
        // Clean probes among the others.
        structured_alert ok;
        ok.category = alert_category::failure;
        ok.metric = 0.0;
        ok.src_loc = other;
        ok.dst_loc = other == cl3 ? cl4 : cl3;
        ok.loc = other;
        inc.alerts.push_back(ok);
    }
    const auto zoomed = eval.zoom_in(inc);
    ASSERT_TRUE(zoomed.has_value());
    EXPECT_EQ(*zoomed, f.cluster1);
}

TEST(EvaluatorTest, ZoomInSflowTraceBack) {
    fixture f;
    evaluator eval(&f.topo, &f.customers);
    incident inc;
    inc.root = f.site;
    for (const device_id dev : {f.tor1, f.agg1}) {
        structured_alert a;
        a.type_name = "sflow packet loss";
        a.category = alert_category::failure;
        a.loc = f.topo.device_at(dev).loc;
        a.device = dev;
        a.metric = 0.1;
        inc.alerts.push_back(a);
    }
    const auto zoomed = eval.zoom_in(inc);
    ASSERT_TRUE(zoomed.has_value());
    EXPECT_EQ(*zoomed, f.cluster1);  // common ancestor of tor1 and agg1
}

TEST(EvaluatorTest, ZoomInFallsBackToRoot) {
    fixture f;
    evaluator eval(&f.topo, &f.customers);
    incident inc;
    inc.root = f.site;
    structured_alert a;
    a.type_name = "link down";
    a.category = alert_category::root_cause;
    a.loc = f.site;
    inc.alerts.push_back(a);
    EXPECT_FALSE(eval.zoom_in(inc).has_value());
}

TEST(EvaluatorTest, ImportantCustomersCounted) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    evaluator eval(&f.topo, &f.customers);
    const auto s = eval.evaluate(f.make_incident(0.1, minutes(5)), state, minutes(5));
    EXPECT_EQ(s.important_customers, 10);
}

}  // namespace
}  // namespace skynet
