// Tests for the §9 extended data sources (user-side telemetry, SRTE
// label probing) and the §5.2 extensibility claim: their alerts flow
// through the unchanged pipeline.
#include <gtest/gtest.h>

#include "skynet/core/pipeline.h"
#include "skynet/monitors/extended_monitors.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo = generate_topology(generator_params::tiny());
    customer_registry customers;
    network_state state{&topo, &customers};
    rng rand{61};

    std::vector<raw_alert> poll(monitor_tool& tool) {
        std::vector<raw_alert> out;
        tool.poll(state, seconds(30), rand, out);
        return out;
    }
};

TEST(ExtendedTypesTest, RegistrationIsIdempotent) {
    alert_type_registry reg = alert_type_registry::with_builtin_catalog();
    const std::size_t before = reg.size();
    register_extended_alert_types(reg);
    const std::size_t after = reg.size();
    EXPECT_EQ(after, before + 5);
    register_extended_alert_types(reg);
    EXPECT_EQ(reg.size(), after);
    EXPECT_TRUE(reg.find(data_source::inband_telemetry, "srte bundle dead").has_value());
}

TEST(UserTelemetryTest, QuietWhenHealthy) {
    world w;
    user_telemetry_monitor tool(w.topo, {}, {});
    EXPECT_TRUE(w.poll(tool).empty());
}

TEST(UserTelemetryTest, SeesTroubleBeyondTheBorder) {
    // Loss past the ISP is invisible to internal samplers but the user
    // probes cross it.
    world w;
    for (const device& d : w.topo.devices()) {
        if (d.role == device_role::isp) w.state.device_state(d.id).silent_loss = 0.5;
    }
    user_telemetry_monitor tool(w.topo, {}, {});
    const auto alerts = w.poll(tool);
    ASSERT_FALSE(alerts.empty());
    bool loss_seen = false;
    for (const raw_alert& a : alerts) {
        if (a.kind == "user probe loss") loss_seen = true;
        EXPECT_EQ(a.source, data_source::internet_telemetry);
    }
    EXPECT_TRUE(loss_seen);
}

TEST(UserTelemetryTest, UnreachableWhenEntrySevered) {
    world w;
    for (const link& l : w.topo.links()) {
        if (l.internet_entry) w.state.link_state(l.id).up = false;
    }
    user_telemetry_monitor tool(w.topo, {}, {});
    bool unreachable = false;
    for (const raw_alert& a : w.poll(tool)) {
        if (a.kind == "user probe unreachable") unreachable = true;
    }
    EXPECT_TRUE(unreachable);
}

TEST(SrteProbeTest, ReportsExactBreakRatio) {
    world w;
    srte_probe_monitor tool(w.topo, {}, {});
    EXPECT_TRUE(w.poll(tool).empty());

    // Break half of a 4-circuit bundle.
    const circuit_set* bundle = nullptr;
    for (const circuit_set& cs : w.topo.circuit_sets()) {
        if (cs.circuits.size() == 4) bundle = &cs;
    }
    ASSERT_NE(bundle, nullptr);
    w.state.link_state(bundle->circuits[0]).up = false;
    w.state.link_state(bundle->circuits[1]).up = false;

    const auto alerts = w.poll(tool);
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_EQ(alerts[0].kind, "srte bundle degraded");
    EXPECT_DOUBLE_EQ(alerts[0].metric, 0.5);
    EXPECT_EQ(alerts[0].device, bundle->a);

    // Kill the rest: dead, not degraded.
    w.state.link_state(bundle->circuits[2]).up = false;
    w.state.link_state(bundle->circuits[3]).up = false;
    const auto dead = w.poll(tool);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].kind, "srte bundle dead");
}

TEST(ExtensibilityTest, AlertsFlowThroughUnchangedPipeline) {
    // The §5.2 claim: a new structured source plugs in with zero pipeline
    // changes. The SRTE tester's root-cause verdicts plus user-probe
    // failure alerts must form an incident exactly like built-in sources.
    world w;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    register_extended_alert_types(registry);
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    skynet_engine engine(skynet_engine::deps{&w.topo, &w.customers, &registry, &syslog});

    // Kill a bundle and blackhole past the border.
    const circuit_set* bundle = nullptr;
    for (const circuit_set& cs : w.topo.circuit_sets()) {
        if (cs.circuits.size() == 4 && w.topo.device_at(cs.b).role == device_role::isp) {
            bundle = &cs;
        }
    }
    ASSERT_NE(bundle, nullptr);
    // Stage the failure the way cable cuts land: most circuits first
    // (degraded, congested), the last one a minute later (dead,
    // unreachable).
    for (std::size_t i = 0; i + 1 < bundle->circuits.size(); ++i) {
        w.state.link_state(bundle->circuits[i]).up = false;
    }

    user_telemetry_monitor user_tool(w.topo, {}, {});
    srte_probe_monitor srte_tool(w.topo, {}, {});
    sim_time now = 0;
    for (int tick = 0; tick < 8; ++tick) {
        if (tick == 4) w.state.link_state(bundle->circuits.back()).up = false;
        std::vector<raw_alert> alerts;
        user_tool.poll(w.state, now, w.rand, alerts);
        srte_tool.poll(w.state, now, w.rand, alerts);
        for (const raw_alert& a : alerts) engine.ingest(a, now);
        now += seconds(20);
        engine.tick(now, w.state);
    }

    const auto open = engine.open_reports(now, w.state);
    ASSERT_FALSE(open.empty());
    bool srte_type = false;
    bool user_type = false;
    for (const incident_report& r : open) {
        for (const structured_alert& a : r.inc.alerts) {
            if (a.type_name.rfind("srte bundle", 0) == 0) srte_type = true;
            if (a.type_name.rfind("user probe", 0) == 0) user_type = true;
        }
    }
    EXPECT_TRUE(srte_type);
    EXPECT_TRUE(user_type);
}

}  // namespace
}  // namespace skynet
