// Unit tests for FT-tree syslog template extraction and classification.
#include <gtest/gtest.h>

#include <set>

#include "skynet/common/error.h"
#include "skynet/syslog/classifier.h"
#include "skynet/syslog/ft_tree.h"
#include "skynet/syslog/message_catalog.h"

namespace skynet {
namespace {

TEST(StripVariablesTest, RemovesAddressesInterfacesNumbers) {
    const auto words = strip_variables(
        "%LINK-3-UPDOWN: Interface TenGigE0/1/0/25 changed state to down");
    // The interface path is variable; the mnemonic and prose words stay.
    EXPECT_EQ(words, (std::vector<std::string>{"%LINK-3-UPDOWN:", "Interface", "changed", "state",
                                               "to", "down"}));
}

TEST(StripVariablesTest, RemovesIpv4AndHexAndQuantities) {
    const auto words = strip_variables("neighbor 10.1.2.3 down code 0xdeadbeef after 250ms 42");
    EXPECT_EQ(words, (std::vector<std::string>{"neighbor", "down", "code", "after"}));
}

TEST(StripVariablesTest, TrimsTrailingPunctuation) {
    const auto words = strip_variables("link down, port reset.");
    EXPECT_EQ(words, (std::vector<std::string>{"link", "down", "port", "reset"}));
}

TEST(FtTreeTest, BuildsTemplatesFromRepeatedMessages) {
    ft_tree tree;
    for (int i = 0; i < 5; ++i) {
        tree.add_message("%LINK-3-UPDOWN: Interface TenGigE0/" + std::to_string(i) +
                         "/0/1 changed state to down");
        tree.add_message("%BGP-5-ADJCHANGE: neighbor 10.0.0." + std::to_string(i) + " Down");
    }
    tree.build();
    EXPECT_TRUE(tree.built());
    EXPECT_GE(tree.templates().size(), 2u);

    const auto a = tree.classify("%LINK-3-UPDOWN: Interface TenGigE0/9/9/9 changed state to down");
    const auto b = tree.classify("%BGP-5-ADJCHANGE: neighbor 192.168.0.7 Down");
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(*a, *b);
}

TEST(FtTreeTest, RareMessagesPrunedAway) {
    ft_tree tree(ft_tree::options{.max_depth = 6, .min_support = 3});
    for (int i = 0; i < 10; ++i) tree.add_message("common message repeated often here");
    tree.add_message("weird singleton gibberish tokens qzx");
    tree.build();
    EXPECT_TRUE(tree.classify("common message repeated often here").has_value());
    EXPECT_FALSE(tree.classify("weird singleton gibberish tokens qzx").has_value());
}

TEST(FtTreeTest, LabelAssignsType) {
    ft_tree tree;
    for (int i = 0; i < 4; ++i) tree.add_message("interface flap detected count " + std::to_string(i));
    tree.build();
    const auto id = tree.label("interface flap detected count 99", "link flapping");
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(tree.template_at(*id).assigned_type, "link flapping");
}

TEST(FtTreeTest, AddAfterBuildThrows) {
    ft_tree tree;
    tree.add_message("a b c d");
    tree.add_message("a b c d");
    tree.build();
    EXPECT_THROW(tree.add_message("x"), skynet_error);
    EXPECT_THROW(tree.build(), skynet_error);
}

TEST(FtTreeTest, ClassifyBeforeBuildReturnsNothing) {
    ft_tree tree;
    tree.add_message("a b c");
    EXPECT_FALSE(tree.classify("a b c").has_value());
}

TEST(ClassifierTest, CatalogRoundTrip) {
    // Property: every rendered message of every catalog format classifies
    // back to its own type.
    const syslog_classifier clf = syslog_classifier::train_from_catalog();
    rng rand(123);
    for (const syslog_format& fmt : syslog_message_catalog()) {
        for (int i = 0; i < 5; ++i) {
            const std::string msg = render_syslog(fmt.pattern, rand);
            const auto r = clf.classify(msg);
            ASSERT_TRUE(r.has_value()) << msg;
            EXPECT_EQ(r->type_name, fmt.type_name) << msg;
        }
    }
}

TEST(ClassifierTest, UnknownMessagesUnclassified) {
    const syslog_classifier clf = syslog_classifier::train_from_catalog();
    EXPECT_FALSE(clf.classify("%SYS-6-INFO: periodic housekeeping task completed id 77")
                     .has_value());
    EXPECT_FALSE(clf.classify("totally unrelated text").has_value());
}

TEST(ClassifierTest, UnlabeledCorpusContributesWithoutClassifying) {
    std::vector<std::pair<std::string, std::string>> corpus;
    for (int i = 0; i < 5; ++i) {
        corpus.emplace_back("alpha beta gamma " + std::to_string(i), "my type");
        corpus.emplace_back("noise words here " + std::to_string(i), "");
    }
    const syslog_classifier clf = syslog_classifier::train(corpus);
    const auto labeled = clf.classify("alpha beta gamma 99");
    ASSERT_TRUE(labeled.has_value());
    EXPECT_EQ(labeled->type_name, "my type");
    EXPECT_FALSE(clf.classify("noise words here 3").has_value());
}

TEST(MessageCatalogTest, RenderSubstitutesAllPlaceholders) {
    rng rand(5);
    for (const syslog_format& fmt : syslog_message_catalog()) {
        const std::string msg = render_syslog(fmt.pattern, rand);
        EXPECT_EQ(msg.find('{'), std::string::npos) << msg;
        EXPECT_EQ(msg.find('}'), std::string::npos) << msg;
        EXPECT_FALSE(msg.empty());
    }
}

TEST(MessageCatalogTest, FormatsCoverDistinctTypes) {
    std::set<std::string> types;
    for (const syslog_format& fmt : syslog_message_catalog()) types.insert(fmt.type_name);
    EXPECT_GE(types.size(), 15u);
}

}  // namespace
}  // namespace skynet
