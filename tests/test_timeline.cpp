// Tests for the ASCII incident timeline and the WAN partition scenario.
#include <gtest/gtest.h>

#include "skynet/sim/scenario.h"
#include "skynet/topology/generator.h"
#include "skynet/viz/timeline.h"

namespace skynet {
namespace {

incident_report report(std::uint64_t id, location root, time_range when, double score,
                       bool actionable) {
    incident_report r;
    r.inc.id = id;
    r.inc.root = std::move(root);
    r.inc.when = when;
    structured_alert a;
    a.type_name = "packet loss";
    a.category = alert_category::failure;
    a.when = when;
    a.loc = r.inc.root;
    r.inc.alerts.push_back(a);
    r.severity.score = score;
    r.actionable = actionable;
    return r;
}

TEST(TimelineTest, EmptyInput) {
    EXPECT_EQ(render_timeline({}), "(no incidents)\n");
}

TEST(TimelineTest, OrdersBySeverityAndMarksActionable) {
    const std::vector<incident_report> reports{
        report(1, location{"R", "C", "Low"}, {minutes(1), minutes(5)}, 3.0, false),
        report(2, location{"R", "C", "High"}, {minutes(2), minutes(8)}, 80.0, true),
    };
    const std::string chart = render_timeline(reports);
    EXPECT_LT(chart.find("High"), chart.find("Low"));
    EXPECT_NE(chart.find("80.0 *"), std::string::npos);
    EXPECT_NE(chart.find("3.0"), std::string::npos);
    EXPECT_NE(chart.find('#'), std::string::npos);  // failure activity marked
}

TEST(TimelineTest, LongLabelsTruncated) {
    const location deep{"Very", "Deep", "Location", "Path", "Cluster-9000", "device-with-long-name"};
    const std::vector<incident_report> reports{
        report(1, deep, {0, minutes(2)}, 5.0, false)};
    timeline_options opts;
    opts.label_width = 20;
    const std::string chart = render_timeline(reports, opts);
    EXPECT_NE(chart.find("..."), std::string::npos);
    for (const std::string& line : {std::string("Very|Deep|Location")}) {
        EXPECT_EQ(chart.find(line), std::string::npos);  // truncated away
    }
}

TEST(TimelineTest, AxisShowsWindowBounds) {
    const std::vector<incident_report> reports{
        report(1, location{"R"}, {minutes(10), minutes(20)}, 1.0, false)};
    const std::string chart = render_timeline(reports);
    EXPECT_NE(chart.find(format_time(minutes(10))), std::string::npos);
    EXPECT_NE(chart.find(format_time(minutes(20))), std::string::npos);
}

TEST(WanPartitionTest, CutsEveryCircuitBetweenTwoCities) {
    const topology topo = generate_topology(generator_params::small());
    customer_registry customers;
    network_state state(&topo, &customers);
    rng rand(77);
    auto s = make_wan_partition(topo, rand);
    EXPECT_TRUE(s->severe());
    ASSERT_EQ(s->scopes().size(), 2u);
    const location city_a = s->scopes()[0];
    const location city_b = s->scopes()[1];
    EXPECT_EQ(city_a.level(), hierarchy_level::city);
    EXPECT_NE(city_a, city_b);

    s->on_start(state, rand, 0);
    for (const circuit_set& cs : topo.circuit_sets()) {
        if (topo.device_at(cs.a).role != device_role::bsr ||
            topo.device_at(cs.b).role != device_role::bsr) {
            continue;
        }
        const location ca = topo.device_at(cs.a).loc.ancestor_at(hierarchy_level::city);
        const location cb = topo.device_at(cs.b).loc.ancestor_at(hierarchy_level::city);
        const bool cut_pair = (ca == city_a && cb == city_b) || (ca == city_b && cb == city_a);
        EXPECT_DOUBLE_EQ(state.break_ratio(cs.id), cut_pair ? 1.0 : 0.0)
            << cs.name << " unexpected state";
    }

    s->on_end(state, rand, minutes(5));
    for (const link& l : topo.links()) {
        EXPECT_TRUE(state.link_state(l.id).up);
    }
}

TEST(WanPartitionTest, TrafficStillFlowsAroundTheRing) {
    // The generator builds a ring with chords: a single partition must
    // not island any city (redundancy holds); traffic reroutes.
    const topology topo = generate_topology(generator_params::small());
    customer_registry customers;
    network_state state(&topo, &customers);
    rng rand(78);
    auto s = make_wan_partition(topo, rand);
    s->on_start(state, rand, 0);

    const auto clusters = topo.clusters_under(location{});
    const auto src = state.representative(clusters.front());
    const auto dst = state.representative(clusters.back());
    ASSERT_TRUE(src && dst);
    EXPECT_TRUE(state.probe(*src, *dst).reachable);
    s->on_end(state, rand, minutes(5));
}

}  // namespace
}  // namespace skynet
