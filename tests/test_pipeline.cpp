// End-to-end tests for the skynet_engine pipeline: simulator alerts in,
// ranked incident reports out.
#include <gtest/gtest.h>

#include "skynet/core/pipeline.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    world() {
        generator_params p = generator_params::tiny();
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(41);
        customers = customer_registry::generate(topo, 100, crand);
    }

    /// Runs a scenario through simulator + SkyNet; returns the reports.
    std::vector<incident_report> run(std::unique_ptr<scenario> s, sim_duration duration,
                                     skynet_config cfg = {}, std::uint64_t seed = 50) {
        simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = seed});
        sim.add_default_monitors();
        sim.inject(std::move(s), minutes(1), duration);

        skynet_engine skynet({&topo, &customers, &registry, &syslog}, cfg);
        sim.run_until(minutes(1) + duration + minutes(2),
                      [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                      [&](sim_time now) { skynet.tick(now, sim.state()); });
        skynet.finish(sim.clock().now(), sim.state());
        return skynet.take_reports();
    }
};

TEST(PipelineTest, DetectsSevereInfrastructureFailure) {
    world w;
    rng srand(51);
    auto s = make_infrastructure_failure(w.topo, srand, true);
    const location scope = s->scope();
    const auto reports = w.run(std::move(s), minutes(5));
    ASSERT_FALSE(reports.empty());
    // Some incident must cover the failed site.
    bool covered = false;
    for (const incident_report& r : reports) {
        if (r.inc.root.contains(scope) || scope.contains(r.inc.root)) covered = true;
    }
    EXPECT_TRUE(covered);
}

TEST(PipelineTest, QuietNetworkNoIncidents) {
    world w;
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 52});
    sim.add_default_monitors();
    skynet_engine skynet(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
    sim.run_until(minutes(5),
                  [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                  [&](sim_time now) { skynet.tick(now, sim.state()); });
    skynet.finish(sim.clock().now(), sim.state());
    EXPECT_TRUE(skynet.take_reports().empty());
}

TEST(PipelineTest, PreprocessingReducesVolume) {
    world w;
    rng srand(53);
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 54});
    sim.add_default_monitors();
    sim.inject(make_infrastructure_failure(w.topo, srand, true), minutes(1), minutes(5));

    skynet_engine skynet(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
    sim.run_until(minutes(8),
                  [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                  [&](sim_time now) { skynet.tick(now, sim.state()); });

    const preprocessor_stats& stats = skynet.preprocessing_stats();
    EXPECT_GT(stats.raw_in, 100);
    // The flood shrinks by a large factor (Figure 8b shape).
    EXPECT_LT(stats.emitted_new, stats.raw_in / 3);
}

TEST(PipelineTest, SevereIncidentOutranksMinorOne) {
    // The scene-ranking case study (§5.1): concurrent failures; the one
    // hurting important customers wins regardless of alert volume.
    world w;
    rng srand(55);
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 56});
    sim.add_default_monitors();
    auto severe = make_internet_entry_cut(
        w.topo,
        [&] {
            for (const device& d : w.topo.devices()) {
                if (d.role == device_role::isr) {
                    return d.loc.ancestor_at(hierarchy_level::logic_site);
                }
            }
            throw std::runtime_error("no isr");
        }(),
        0.6);
    sim.inject(std::move(severe), minutes(1), minutes(6));

    skynet_engine skynet(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
    std::vector<incident_report> ranked;
    sim.run_until(minutes(6),
                  [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                  [&](sim_time now) {
                      skynet.tick(now, sim.state());
                      if (now == minutes(5)) ranked = skynet.open_reports(now, sim.state());
                  });
    ASSERT_FALSE(ranked.empty());
    // open_reports is sorted most-severe first.
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_GE(ranked[i - 1].severity.score, ranked[i].severity.score);
    }
    EXPECT_GT(ranked[0].severity.score, 0.0);
}

TEST(PipelineTest, ReportRenderIncludesScore) {
    world w;
    rng srand(57);
    const auto reports = w.run(make_infrastructure_failure(w.topo, srand, true), minutes(4));
    ASSERT_FALSE(reports.empty());
    const std::string text = reports[0].render();
    EXPECT_NE(text.find("Risk score:"), std::string::npos);
    EXPECT_NE(text.find("Incident"), std::string::npos);
}

TEST(PipelineTest, LiveScoreKeepsPeak) {
    // Severity is evaluated live; the final report keeps the peak even
    // though the breakage healed before the incident closed.
    world w;
    rng srand(58);
    auto s = make_internet_entry_cut(
        w.topo,
        [&] {
            for (const device& d : w.topo.devices()) {
                if (d.role == device_role::isr) {
                    return d.loc.ancestor_at(hierarchy_level::logic_site);
                }
            }
            throw std::runtime_error("no isr");
        }(),
        0.6);
    const auto reports = w.run(std::move(s), minutes(4));
    ASSERT_FALSE(reports.empty());
    // At close time all circuits are healed (break ratio 0), yet the
    // peak impact factor observed while open must exceed the floor.
    double best = 0.0;
    for (const incident_report& r : reports) best = std::max(best, r.severity.impact_factor);
    EXPECT_GT(best, 1.0);
}

TEST(PipelineTest, StructuredCountTracksEmissions) {
    world w;
    rng srand(59);
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 60});
    sim.add_default_monitors();
    sim.inject(make_link_failure(w.topo, srand, true), minutes(1), minutes(3));
    skynet_engine skynet(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
    sim.run_until(minutes(5),
                  [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                  [&](sim_time now) { skynet.tick(now, sim.state()); });
    EXPECT_GT(skynet.structured_alert_count(), 0);
}

}  // namespace
}  // namespace skynet
