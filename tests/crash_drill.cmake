# Crash drill (registered in tests/CMakeLists.txt). Drives skynet_cli
# across a real process crash: journal a replay run, kill it at an exact
# record boundary (--crash-after), recover in a fresh process, and
# require the recovered reports byte-identical to an uninterrupted run.
# Expects -DSKYNET_CLI=<path> and -DDRILL_DIR=<scratch dir>.
file(REMOVE_RECURSE "${DRILL_DIR}")
file(MAKE_DIRECTORY "${DRILL_DIR}")

function(run_cli out_var expect_code)
  execute_process(COMMAND ${SKYNET_CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE code)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR "skynet_cli ${ARGN}: exit ${code} (wanted ${expect_code})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(trace "${DRILL_DIR}/trace.txt")
run_cli(record_out 0 --topo tiny --seed 5 --record ${trace})
run_cli(base 0 --topo tiny --seed 5 --replay ${trace})

# Crash mid-replay: the process must die with the drill exit code (137),
# not report a clean failure, after the 30th journal record is durable.
execute_process(COMMAND ${SKYNET_CLI} --topo tiny --seed 5 --replay ${trace}
                        --checkpoint-dir ${DRILL_DIR}/ckpt --checkpoint-every 4
                        --crash-after 30
                OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE code)
if(NOT code EQUAL 137)
  message(FATAL_ERROR "crash run exited ${code}, wanted 137")
endif()
if(NOT EXISTS "${DRILL_DIR}/ckpt/journal.skywal")
  message(FATAL_ERROR "crash run left no journal behind")
endif()

run_cli(recovered 0 --topo tiny --seed 5 --replay ${trace}
        --checkpoint-dir ${DRILL_DIR}/ckpt --checkpoint-every 4 --recover)

# Compare everything from the alert totals down: the recovered run adds
# recover: notes above that point, but the reports must match byte for
# byte.
foreach(v base recovered)
  string(FIND "${${v}}" "alerts:" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "no report section in ${v} output:\n${${v}}")
  endif()
  string(SUBSTRING "${${v}}" ${at} -1 ${v}_reports)
endforeach()
if(NOT base_reports STREQUAL recovered_reports)
  message(FATAL_ERROR "recovered reports differ from the uninterrupted run:\n"
                      "--- uninterrupted\n${base_reports}\n--- recovered\n${recovered_reports}")
endif()
message(STATUS "crash drill passed: recovered reports identical")
