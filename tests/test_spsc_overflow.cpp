// SPSC queue overflow and backoff tests, plus the sharded engine's
// three overflow policies driven deterministically through the
// force_full hook. Runs under the `tsan` ctest label: the park/wake
// paths (push waiting on a slow consumer, pop_blocking waiting on a
// slow producer) are exactly where a lost notify or a data race would
// hide.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <span>
#include <thread>

#include "skynet/common/spsc_queue.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

// ------------------------------------------------------------- queue

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(spsc_queue<int>(1).capacity(), 1u);
    EXPECT_EQ(spsc_queue<int>(2).capacity(), 2u);
    EXPECT_EQ(spsc_queue<int>(3).capacity(), 4u);
    EXPECT_EQ(spsc_queue<int>(5).capacity(), 8u);
    EXPECT_EQ(spsc_queue<int>(256).capacity(), 256u);
}

TEST(SpscQueueTest, TryPushFailsExactlyAtCapacityBoundary) {
    spsc_queue<int> q(4);
    ASSERT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        int v = i;
        EXPECT_TRUE(q.try_push(v)) << "push " << i << " of capacity";
    }
    // Slot cap+1: must fail and leave the value untouched.
    int overflow = 99;
    EXPECT_FALSE(q.try_push(overflow));
    EXPECT_EQ(overflow, 99);
    EXPECT_EQ(q.size(), 4u);

    // One pop frees exactly one slot.
    int out = -1;
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(q.try_push(overflow));
    EXPECT_FALSE(q.try_push(overflow));

    // FIFO order survives the wrap.
    for (const int want : {1, 2, 3, 99}) {
        ASSERT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, want);
    }
    EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueueTest, PushCountsWaitsAgainstSlowConsumer) {
    spsc_queue<int> q(2);
    std::size_t total_waits = 0;
    std::thread producer([&] {
        for (int i = 0; i < 1000; ++i) total_waits += q.push(i);
    });
    std::thread consumer([&] {
        int out = -1;
        for (int i = 0; i < 1000; ++i) {
            q.pop_blocking(out);
            ASSERT_EQ(out, i);
            if (i % 64 == 0) std::this_thread::yield();
        }
    });
    producer.join();
    consumer.join();
    // 1000 items through a 2-slot ring: the producer must have waited.
    EXPECT_GT(total_waits, 0u);
    EXPECT_EQ(q.size(), 0u);
}

TEST(SpscQueueTest, PopBlockingParksAndWakes) {
    // The consumer exhausts its spin budget and parks on the futex; the
    // delayed producer's notify must wake it. A lost wakeup hangs the
    // test (and the suite's timeout catches it).
    spsc_queue<int> q(4);
    std::atomic<bool> got{false};
    std::thread consumer([&] {
        int out = -1;
        q.pop_blocking(out);
        EXPECT_EQ(out, 42);
        got.store(true, std::memory_order_release);
    });
    // Long enough for spin_limit yields to elapse and the park to start.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(got.load(std::memory_order_acquire));
    int v = 42;
    ASSERT_TRUE(q.try_push(v));
    consumer.join();
    EXPECT_TRUE(got.load(std::memory_order_acquire));
}

TEST(SpscQueueTest, PushParksAgainstFullRingThenWakes) {
    spsc_queue<int> q(1);
    int seed_value = 0;
    ASSERT_TRUE(q.try_push(seed_value));  // ring now full
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        (void)q.push(1);  // must park: ring stays full for 50ms
        pushed.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(pushed.load(std::memory_order_acquire));
    int out = -1;
    ASSERT_TRUE(q.try_pop(out));  // frees the slot, notifies the producer
    producer.join();
    EXPECT_TRUE(pushed.load(std::memory_order_acquire));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, 1);
}

// ------------------------------------------- sharded overflow policies

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    world() {
        generator_params p = generator_params::tiny();
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 50, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() {
        return {&topo, &customers, &registry, &syslog};
    }
};

TEST(OverflowPolicyTest, ParseAndRenderRoundTrip) {
    EXPECT_EQ(parse_overflow_policy("block"), overflow_policy::block);
    EXPECT_EQ(parse_overflow_policy("drop_oldest"), overflow_policy::drop_oldest);
    EXPECT_EQ(parse_overflow_policy("drop-oldest"), overflow_policy::drop_oldest);
    EXPECT_EQ(parse_overflow_policy("reject"), overflow_policy::reject);
    EXPECT_FALSE(parse_overflow_policy("nonsense").has_value());
    EXPECT_EQ(to_string(overflow_policy::block), "block");
    EXPECT_EQ(to_string(overflow_policy::drop_oldest), "drop_oldest");
    EXPECT_EQ(to_string(overflow_policy::reject), "reject");
}

/// Drives `count` single-alert ingest batches through a 1-shard engine
/// whose force_full hook is under the caller's deterministic control,
/// then returns the aggregate metrics after a barrier.
engine_metrics drive_pressured(world& w, overflow_policy policy, std::size_t backlog,
                               int count, const std::function<bool()>& full) {
    sharded_config scfg;
    scfg.shards = 1;
    scfg.max_ingest_batch = 1;  // one command per alert
    scfg.overflow = policy;
    scfg.backlog_batches = backlog;
    scfg.force_full = full;
    sharded_engine eng(w.deps(), scfg);

    raw_alert a;
    a.source = data_source::snmp;
    a.loc = w.topo.devices().front().loc;
    a.device = w.topo.devices().front().id;
    for (int i = 0; i < count; ++i) {
        a.timestamp = seconds(i);
        eng.ingest(a, seconds(i));
    }
    engine_metrics m = eng.metrics();  // sync barrier inside
    (void)eng.take_reports();
    return m;
}

TEST(OverflowPolicyTest, RejectShedsEveryPressuredBatchAndCounts) {
    world w;
    // Every submit sees a forced-full window: all 20 alerts shed.
    const engine_metrics m =
        drive_pressured(w, overflow_policy::reject, 16, 20, [] { return true; });
    EXPECT_EQ(m.degraded.alerts_dropped_overflow, 20u);
    EXPECT_EQ(m.alerts_in, 0u);
    EXPECT_GE(m.enqueue_full_waits, 20u);
    EXPECT_NE(m.render().find("degraded"), std::string::npos);
}

TEST(OverflowPolicyTest, RejectWithoutPressureShedsNothing) {
    world w;
    const engine_metrics m =
        drive_pressured(w, overflow_policy::reject, 16, 20, [] { return false; });
    EXPECT_EQ(m.degraded.alerts_dropped_overflow, 0u);
    EXPECT_EQ(m.alerts_in, 20u);
}

TEST(OverflowPolicyTest, DropOldestKeepsNewestShedsOldestExactly) {
    world w;
    // Pressure the whole run: every batch lands in the backlog, which
    // holds `backlog_batches` = 4 single-alert batches. 20 in, the
    // oldest 16 shed, the newest 4 delivered when sync() drains.
    const engine_metrics m =
        drive_pressured(w, overflow_policy::drop_oldest, 4, 20, [] { return true; });
    EXPECT_EQ(m.degraded.alerts_dropped_overflow, 16u);
    EXPECT_EQ(m.alerts_in, 4u);
}

TEST(OverflowPolicyTest, BlockIsLosslessUnderPressure) {
    world w;
    // Intermittent pressure (every other submit): block never sheds, it
    // only records backpressure.
    auto flip = std::make_shared<bool>(false);
    const engine_metrics m = drive_pressured(w, overflow_policy::block, 16, 20,
                                             [flip] { return *flip = !*flip; });
    EXPECT_EQ(m.degraded.alerts_dropped_overflow, 0u);
    EXPECT_EQ(m.alerts_in, 20u);
    EXPECT_GT(m.enqueue_full_waits, 0u);
}

TEST(OverflowPolicyTest, DropOldestRecoversWhenPressureLifts) {
    world w;
    // Pressure only the first 10 submits; backlog of 4 holds the tail of
    // the pressured window, then the drain path re-enqueues them once
    // pressure lifts. Only the overflowed prefix is lost.
    auto calls = std::make_shared<int>(0);
    const engine_metrics m = drive_pressured(w, overflow_policy::drop_oldest, 4, 20,
                                             [calls] { return ++*calls <= 10; });
    EXPECT_EQ(m.degraded.alerts_dropped_overflow + m.alerts_in, 20u);
    EXPECT_GT(m.alerts_in, 4u);  // backlog survivors + unpressured tail
}

TEST(OverflowPolicyTest, BarriersNeverShedEvenUnderPermanentPressure) {
    // tick/finish/take_reports must complete (no deadlock, no dropped
    // barrier) even when the hook reports full forever.
    world w;
    sharded_config scfg;
    scfg.shards = 2;
    scfg.overflow = overflow_policy::reject;
    scfg.force_full = [] { return true; };
    sharded_engine eng(w.deps(), scfg);

    raw_alert a;
    a.source = data_source::snmp;
    a.loc = w.topo.devices().front().loc;
    a.device = w.topo.devices().front().id;
    a.timestamp = seconds(1);
    eng.ingest(a, seconds(1));

    network_state state(&w.topo, &w.customers);
    eng.tick(seconds(2), state);
    eng.finish(minutes(1), state);
    EXPECT_TRUE(eng.take_reports().empty());  // the one alert was shed
    EXPECT_EQ(eng.metrics().degraded.alerts_dropped_overflow, 1u);
}

}  // namespace
}  // namespace skynet
