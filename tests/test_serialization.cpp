// Tests for the topology text format (export / import).
#include <gtest/gtest.h>

#include "skynet/sim/network_state.h"
#include "skynet/topology/generator.h"
#include "skynet/topology/serialization.h"

namespace skynet {
namespace {

TEST(RoleTokenTest, RoundTripsAllRoles) {
    for (const device_role role :
         {device_role::tor, device_role::agg, device_role::csr, device_role::dcbr,
          device_role::isr, device_role::bsr, device_role::reflector, device_role::isp}) {
        EXPECT_EQ(parse_role(role_token(role)), role);
    }
    EXPECT_EQ(parse_role("spacecraft"), std::nullopt);
}

TEST(SerializationTest, GeneratedTopologyRoundTrips) {
    const topology original = generate_topology(generator_params::tiny());
    const std::string text = export_topology(original);
    const topology_parse_result parsed = import_topology(text);
    ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0].message);

    const topology& copy = parsed.topo;
    ASSERT_EQ(copy.devices().size(), original.devices().size());
    ASSERT_EQ(copy.links().size(), original.links().size());
    ASSERT_EQ(copy.circuit_sets().size(), original.circuit_sets().size());
    ASSERT_EQ(copy.groups().size(), original.groups().size());

    for (std::size_t i = 0; i < original.devices().size(); ++i) {
        const device& a = original.devices()[i];
        const device& b = copy.devices()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.role, b.role);
        EXPECT_EQ(a.loc, b.loc);
        EXPECT_EQ(a.legacy_slow_snmp, b.legacy_slow_snmp);
        EXPECT_EQ(a.supports_int, b.supports_int);
        EXPECT_EQ(a.group, b.group);
    }
    for (std::size_t i = 0; i < original.links().size(); ++i) {
        const link& a = original.links()[i];
        const link& b = copy.links()[i];
        EXPECT_EQ(a.a, b.a);
        EXPECT_EQ(a.b, b.b);
        EXPECT_EQ(a.cset, b.cset);
        EXPECT_DOUBLE_EQ(a.capacity_gbps, b.capacity_gbps);
        EXPECT_EQ(a.internet_entry, b.internet_entry);
    }
    // Export of the copy is byte-identical (canonical form).
    EXPECT_EQ(export_topology(copy), text);
}

TEST(SerializationTest, ParsesHandWrittenInventory) {
    const auto result = import_topology(R"(
# two racks, one uplink bundle
device tor1 tor R1|C1|LS1|S1|CL1|tor1
device agg1 agg R1|C1|LS1|S1|CL1|agg1
flags tor1 legacy_snmp int
group rack-agg agg1
cset uplink tor1 agg1
link tor1 agg1 uplink 25
link tor1 agg1 uplink 25
)");
    ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0].message);
    const topology& topo = result.topo;
    ASSERT_EQ(topo.devices().size(), 2u);
    EXPECT_TRUE(topo.device_at(0).legacy_slow_snmp);
    EXPECT_TRUE(topo.device_at(0).supports_int);
    EXPECT_EQ(topo.device_at(1).group, 0u);
    ASSERT_EQ(topo.circuit_sets().size(), 1u);
    EXPECT_EQ(topo.circuit_set_at(0).circuits.size(), 2u);
}

TEST(SerializationTest, ReportsErrorsWithLineNumbers) {
    const auto result = import_topology(R"(device tor1 tor R1|tor1
device tor1 tor R1|other
device ghost spacecraft R1|ghost
link tor1 nowhere - 25
link tor1 tor1 - banana
frobnicate
)");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 5u);
    EXPECT_EQ(result.errors[0].line, 2);  // duplicate device
    EXPECT_EQ(result.errors[1].line, 3);  // unknown role
    EXPECT_EQ(result.errors[2].line, 4);  // unknown endpoint
    EXPECT_EQ(result.errors[3].line, 5);  // bad capacity
    EXPECT_EQ(result.errors[4].line, 6);  // unknown directive
    // The valid first device still parsed.
    EXPECT_EQ(result.topo.devices().size(), 1u);
}

TEST(SerializationTest, UnknownCsetAndFlagRejected) {
    const auto result = import_topology(R"(device a tor R|a
device b tor R|b
link a b missing-set 10
flags a warp_drive
)");
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.errors.size(), 2u);
}

TEST(SerializationTest, ErrorsCarryTheOffendingLineText) {
    const auto result = import_topology(R"(device tor1 tor R1|tor1
flags ghost legacy_snmp
cset uplink tor1 phantom
link tor1 nowhere - 25
)");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 3u);
    // Unknown-device references in flags, cset and link lines each name
    // the missing device and carry the rejected line verbatim.
    EXPECT_NE(result.errors[0].message.find("'ghost'"), std::string::npos);
    EXPECT_EQ(result.errors[0].text, "flags ghost legacy_snmp");
    EXPECT_NE(result.errors[1].message.find("'phantom'"), std::string::npos);
    EXPECT_EQ(result.errors[1].text, "cset uplink tor1 phantom");
    EXPECT_NE(result.errors[2].message.find("'nowhere'"), std::string::npos);
    EXPECT_EQ(result.errors[2].text, "link tor1 nowhere - 25");
}

TEST(SerializationTest, DuplicateDeviceKeepsTheFirstDefinition) {
    const auto result = import_topology(R"(device tor1 tor R1|first
device tor1 tor R1|second
)");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].message.find("duplicate device"), std::string::npos);
    EXPECT_EQ(result.errors[0].text, "device tor1 tor R1|second");
    ASSERT_EQ(result.topo.devices().size(), 1u);
    EXPECT_EQ(result.topo.devices()[0].loc.to_string(), "R1|first");
}

TEST(SerializationTest, QuotedLocationsRoundTrip) {
    // Hierarchy segments are free text and may contain spaces; the
    // exporter quotes such paths and the importer restores them intact.
    topology original;
    const location spaced{"Region A", "City X", "LS 1", "Site I", "CL 1"};
    (void)original.add_device("tor1", device_role::tor, spaced.child("tor1"));
    (void)original.add_device("tor2", device_role::tor, location{"R1", "tor2"});

    const std::string text = export_topology(original);
    EXPECT_NE(text.find("\"Region A|City X|LS 1|Site I|CL 1|tor1\""), std::string::npos);

    const topology_parse_result parsed = import_topology(text);
    ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0].message);
    ASSERT_EQ(parsed.topo.devices().size(), 2u);
    EXPECT_EQ(parsed.topo.devices()[0].loc, spaced.child("tor1"));
    EXPECT_EQ(parsed.topo.devices()[1].loc, (location{"R1", "tor2"}));
    // And the canonical re-export matches byte for byte.
    EXPECT_EQ(export_topology(parsed.topo), text);
}

TEST(SerializationTest, UnterminatedQuoteIsRejectedWithTheLine) {
    const auto result = import_topology("device tor1 tor \"R1|unclosed\n");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].message.find("unterminated quote"), std::string::npos);
    EXPECT_EQ(result.errors[0].text, "device tor1 tor \"R1|unclosed");
}

TEST(SerializationTest, LinkWithoutCircuitSet) {
    const auto result = import_topology(R"(device a tor R|a
device b tor R|b
link a b - 10 internet
)");
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.topo.links().size(), 1u);
    EXPECT_EQ(result.topo.links()[0].cset, invalid_circuit_set);
    EXPECT_TRUE(result.topo.links()[0].internet_entry);
}

TEST(SerializationTest, EmptyAndCommentOnlyInputOk) {
    EXPECT_TRUE(import_topology("").ok());
    EXPECT_TRUE(import_topology("# nothing here\n\n  \n").ok());
}

TEST(SerializationTest, ImportedTopologyIsUsable) {
    // The imported network drives the normal machinery.
    const topology original = generate_topology(generator_params::tiny());
    const topology_parse_result parsed = import_topology(export_topology(original));
    ASSERT_TRUE(parsed.ok());
    customer_registry customers;
    network_state state(&parsed.topo, &customers);
    const auto clusters = parsed.topo.clusters_under(location{});
    ASSERT_GE(clusters.size(), 2u);
    const auto src = state.representative(clusters[0]);
    const auto dst = state.representative(clusters[1]);
    ASSERT_TRUE(src && dst);
    EXPECT_TRUE(state.probe(*src, *dst).reachable);
}

}  // namespace
}  // namespace skynet
