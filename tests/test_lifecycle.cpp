// Incident life-cycle manager tests: recurrence fingerprinting, flap
// suppression with hysteresis, auto-close with recovery confirmation,
// the per-barrier diff, persist round-trips, byte parity across engine
// configurations, and the adversarial scenario pack's accuracy
// assertions (one managed incident per root cause, not duplicates).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/lifecycle/manager.h"
#include "skynet/persist/snapshot.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

using lifecycle::manager;
using lifecycle::phase;

// --- manager unit tests (synthetic reports) --------------------------------

constexpr const char* kRoot = "Region A|City a|LS 1|Site I|Cluster i";

incident_report mk(std::uint64_t id, const std::string& root,
                   std::initializer_list<std::uint32_t> types, sim_time begin, sim_time end,
                   double score, bool closed = true) {
    incident_report r;
    r.inc.id = id;
    r.inc.root = location::parse(root);
    r.inc.when = {begin, end};
    for (std::uint32_t t : types) {
        structured_alert a;
        a.type = t;
        a.when = {begin, end};
        r.inc.alerts.push_back(std::move(a));
    }
    r.inc.closed = closed;
    r.severity.score = score;
    r.actionable = true;
    return r;
}

TEST(LifecycleManagerTest, ThreeFlapsCollapseToOneFlappingLineage) {
    manager m(lifecycle::config{});  // flap_threshold 3, window 30 min
    m.on_barrier(minutes(1), {mk(11, kRoot, {1, 2}, 0, minutes(1), 80)}, {}, nullptr);
    ASSERT_EQ(m.lineages().size(), 1u);
    EXPECT_EQ(m.lineages()[0].state, phase::closed);
    EXPECT_EQ(m.last_diff().opened.size(), 1u);

    m.on_barrier(minutes(6), {mk(12, kRoot, {1, 2}, minutes(5), minutes(6), 82)}, {}, nullptr);
    ASSERT_EQ(m.lineages().size(), 1u);  // recurrence links, no new lineage
    EXPECT_EQ(m.lineages()[0].occurrences, 2u);

    m.on_barrier(minutes(11), {mk(13, kRoot, {1, 2}, minutes(10), minutes(11), 84)}, {},
                 nullptr);
    ASSERT_EQ(m.lineages().size(), 1u);
    const lifecycle::lineage& ln = m.lineages()[0];
    EXPECT_EQ(ln.state, phase::flapping);
    EXPECT_EQ(ln.occurrences, 3u);  // 3 flaps -> one incident x3, not 3
    EXPECT_EQ(ln.id, 11u);          // lineage keeps the first member's id
    ASSERT_EQ(m.last_diff().flapping.size(), 1u);
    EXPECT_EQ(m.last_diff().flapping[0].occurrences, 3u);
    EXPECT_EQ(m.managed_reports().size(), 1u);
    EXPECT_EQ(m.metrics().flaps_collapsed, 1u);
    EXPECT_EQ(m.metrics().recurrences_linked, 2u);
}

TEST(LifecycleManagerTest, FourthFlapIsSuppressedNotReannounced) {
    manager m(lifecycle::config{});
    m.on_barrier(minutes(1), {mk(11, kRoot, {1, 2}, 0, minutes(1), 80)}, {}, nullptr);
    m.on_barrier(minutes(5), {mk(12, kRoot, {1, 2}, minutes(4), minutes(5), 80)}, {}, nullptr);
    m.on_barrier(minutes(9), {mk(13, kRoot, {1, 2}, minutes(8), minutes(9), 80)}, {}, nullptr);
    ASSERT_EQ(m.lineages()[0].state, phase::flapping);

    m.on_barrier(minutes(13), {mk(14, kRoot, {1, 2}, minutes(12), minutes(13), 80)}, {},
                 nullptr);
    ASSERT_EQ(m.lineages().size(), 1u);
    EXPECT_EQ(m.lineages()[0].state, phase::suppressed);
    EXPECT_EQ(m.lineages()[0].suppressed_realerts, 1u);
    EXPECT_TRUE(m.last_diff().flapping.empty());  // hysteresis: swallowed
    EXPECT_TRUE(m.last_diff().opened.empty());
    EXPECT_EQ(m.metrics().realerts_suppressed, 1u);
}

TEST(LifecycleManagerTest, RecurrenceOutsideWindowMintsNewLineage) {
    lifecycle::config cfg;
    cfg.recurrence_window = minutes(10);
    manager m(cfg);
    m.on_barrier(minutes(1), {mk(11, kRoot, {1, 2}, 0, minutes(1), 80)}, {}, nullptr);
    // 11 minutes after the close: past the window, a fresh incident.
    m.on_barrier(minutes(12), {mk(12, kRoot, {1, 2}, minutes(11), minutes(12), 80)}, {},
                 nullptr);
    ASSERT_EQ(m.lineages().size(), 2u);
    EXPECT_EQ(m.lineages()[1].id, 12u);
    EXPECT_EQ(m.metrics().recurrences_linked, 0u);
}

TEST(LifecycleManagerTest, DifferentFingerprintStaysSeparate) {
    manager m(lifecycle::config{});
    m.on_barrier(minutes(1), {mk(11, kRoot, {1, 2}, 0, minutes(1), 80)}, {}, nullptr);
    // Same root, disjoint type set: Dice overlap 0 < 0.5 -> new lineage.
    m.on_barrier(minutes(3), {mk(12, kRoot, {7, 8}, minutes(2), minutes(3), 70)}, {}, nullptr);
    EXPECT_EQ(m.lineages().size(), 2u);
    // Different root, same types: new lineage too.
    m.on_barrier(minutes(5),
                 {mk(13, "Region B|City b|LS 1|Site I|Cluster i", {1, 2}, minutes(4),
                     minutes(5), 60)},
                 {}, nullptr);
    EXPECT_EQ(m.lineages().size(), 3u);
}

TEST(LifecycleManagerTest, AutoCloseAfterQuietThenReopenSameLineage) {
    manager m(lifecycle::config{});  // auto_close_quiet 6 min
    const incident_report open0 = mk(21, kRoot, {1, 2}, 0, minutes(1), 70, /*closed=*/false);
    m.on_barrier(minutes(1), {}, std::span(&open0, 1), nullptr);
    ASSERT_EQ(m.lineages().size(), 1u);
    EXPECT_EQ(m.lineages()[0].state, phase::open);

    // Engine still holds it open but the subtree has been quiet for 7
    // minutes; null state = reachability assumed healthy -> auto-close.
    m.on_barrier(minutes(8), {}, std::span(&open0, 1), nullptr);
    EXPECT_EQ(m.lineages()[0].state, phase::auto_closed);
    ASSERT_EQ(m.last_diff().resolved.size(), 1u);
    EXPECT_EQ(m.metrics().auto_closed, 1u);

    // Alerts recur: the incident re-opens with its lineage id intact.
    const incident_report again = mk(21, kRoot, {1, 2}, 0, minutes(9), 75, /*closed=*/false);
    m.on_barrier(minutes(9), {}, std::span(&again, 1), nullptr);
    ASSERT_EQ(m.lineages().size(), 1u);
    EXPECT_EQ(m.lineages()[0].state, phase::open);
    EXPECT_EQ(m.lineages()[0].id, 21u);
    EXPECT_EQ(m.metrics().reopened, 1u);
    ASSERT_EQ(m.last_diff().opened.size(), 1u);
    EXPECT_EQ(m.last_diff().opened[0].lineage, 21u);
}

TEST(LifecycleManagerTest, EscalationUsesHysteresisBand) {
    manager m(lifecycle::config{});
    const incident_report a = mk(31, kRoot, {1, 2}, 0, minutes(1), 50, /*closed=*/false);
    m.on_barrier(minutes(1), {}, std::span(&a, 1), nullptr);
    // +10% stays inside the +-20% band: no diff line.
    const incident_report b = mk(31, kRoot, {1, 2}, 0, minutes(2), 55, /*closed=*/false);
    m.on_barrier(minutes(2), {}, std::span(&b, 1), nullptr);
    EXPECT_TRUE(m.last_diff().escalated.empty());
    // +40% escapes the band: escalated, and the anchor moves.
    const incident_report c = mk(31, kRoot, {1, 2}, 0, minutes(3), 70, /*closed=*/false);
    m.on_barrier(minutes(3), {}, std::span(&c, 1), nullptr);
    ASSERT_EQ(m.last_diff().escalated.size(), 1u);
    EXPECT_EQ(m.last_diff().escalated[0].prev_score, 50.0);
    // Falling below 80% of the new anchor de-escalates.
    const incident_report d = mk(31, kRoot, {1, 2}, 0, minutes(4), 40, /*closed=*/false);
    m.on_barrier(minutes(4), {}, std::span(&d, 1), nullptr);
    ASSERT_EQ(m.last_diff().deescalated.size(), 1u);
}

TEST(LifecycleManagerTest, BackwardsAndRefiredBarriersAreSkipped) {
    manager m(lifecycle::config{});
    m.on_barrier(minutes(5), {mk(11, kRoot, {1, 2}, 0, minutes(5), 80)}, {}, nullptr);
    const auto diff_json = m.last_diff().to_json();
    // A durable resume re-streams an older barrier: must be a no-op.
    m.on_barrier(minutes(3), {mk(99, kRoot, {1, 2}, 0, minutes(3), 90)}, {}, nullptr);
    EXPECT_EQ(m.lineages().size(), 1u);
    EXPECT_EQ(m.last_diff().to_json(), diff_json);
    // An equal-time refire with no fresh closures: also a no-op.
    m.on_barrier(minutes(5), {}, {}, nullptr);
    EXPECT_EQ(m.last_diff().to_json(), diff_json);
}

TEST(LifecycleManagerTest, ConfigValidateRejectsNonsense) {
    lifecycle::config cfg;
    cfg.flap_threshold = 1;
    EXPECT_THROW(cfg.validate(), skynet_error);
    cfg = {};
    cfg.recurrence_window = 0;
    EXPECT_THROW(cfg.validate(), skynet_error);
    cfg = {};
    cfg.auto_close_quiet = -1;
    EXPECT_THROW(cfg.validate(), skynet_error);
    EXPECT_NO_THROW(lifecycle::config{}.validate());
}

TEST(LifecycleManagerTest, DiffRenderAndJsonCarryAllSections) {
    manager m(lifecycle::config{});
    m.on_barrier(minutes(1), {mk(11, kRoot, {1, 2}, 0, minutes(1), 80)}, {}, nullptr);
    const std::string text = m.last_diff().render();
    EXPECT_NE(text.find("what changed @"), std::string::npos);
    EXPECT_NE(text.find("opened"), std::string::npos);
    const std::string json = m.last_diff().to_json();
    for (const char* key : {"\"at\"", "\"opened\"", "\"escalated\"", "\"deescalated\"",
                            "\"resolved\"", "\"flapping\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

// --- persist round-trip ----------------------------------------------------

TEST(LifecyclePersistTest, SnapshotRoundTripIsBitIdentical) {
    manager m(lifecycle::config{});
    m.on_barrier(minutes(1), {mk(11, kRoot, {1, 2}, 0, minutes(1), 80)}, {}, nullptr);
    m.on_barrier(minutes(5), {mk(12, kRoot, {1, 2}, minutes(4), minutes(5), 85)}, {}, nullptr);
    m.on_barrier(minutes(9), {mk(13, kRoot, {1, 2}, minutes(8), minutes(9), 90)}, {}, nullptr);

    persist::snapshot_data snap;
    snap.lifecycle = m.export_state();
    const std::string text = persist::render_snapshot(snap);
    const auto parsed = persist::parse_snapshot(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;

    manager restored(lifecycle::config{});
    restored.import_state(parsed.data->lifecycle);
    EXPECT_EQ(restored.last_barrier(), m.last_barrier());
    EXPECT_EQ(restored.last_diff().to_json(), m.last_diff().to_json());
    EXPECT_EQ(restored.render_managed(), m.render_managed());
    EXPECT_EQ(restored.metrics().flaps_collapsed, m.metrics().flaps_collapsed);
    EXPECT_EQ(restored.metrics().recurrences_linked, m.metrics().recurrences_linked);

    // Future behavior must be identical too: the suppression hysteresis
    // survives the round-trip.
    const auto next = mk(14, kRoot, {1, 2}, minutes(12), minutes(13), 80);
    m.on_barrier(minutes(13), {next}, {}, nullptr);
    restored.on_barrier(minutes(13), {next}, {}, nullptr);
    EXPECT_EQ(restored.last_diff().to_json(), m.last_diff().to_json());
    EXPECT_EQ(restored.render_managed(), m.render_managed());
    EXPECT_EQ(restored.metrics().realerts_suppressed, m.metrics().realerts_suppressed);
}

// --- sim-driven tests ------------------------------------------------------

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    world() {
        generator_params p = generator_params::small();
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 300, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() {
        return {&topo, &customers, &registry, &syslog};
    }
};

using scenario_factory = std::function<std::unique_ptr<scenario>()>;

/// Locator timeouts and the consolidation window shrunk so a 2-minute
/// flap gap actually closes the incident between down phases: the
/// default 15-minute incident timeout (and the 5-minute dedup window,
/// which would keep refreshing the open alerts across the gap) would
/// hold one incident open across every flap, hiding the recurrences.
skynet_config flap_sensitive_config() {
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    cfg.loc.node_timeout = seconds(45);
    cfg.loc.incident_timeout = seconds(90);
    cfg.pre.dedup_window = seconds(60);
    return cfg;
}

/// Replays one deterministic simulated episode through `eng`, feeding
/// the life-cycle manager at every barrier exactly like the CLI and the
/// daemon do: engine tick first, then take_reports + open_reports into
/// on_barrier.
template <typename Engine>
void drive_managed(world& w, Engine& eng, manager& mgr, const scenario_factory& make,
                   sim_duration duration, std::uint64_t seed) {
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    sim.inject(make(), minutes(1), duration);
    const auto barrier = [&](sim_time now) {
        std::vector<incident_report> closed = eng.take_reports();
        const std::vector<incident_report> open = eng.open_reports(now, sim.state());
        mgr.on_barrier(now, std::move(closed), open, &sim.state());
    };
    sim.run_until_batched(
        minutes(1) + duration + minutes(1),
        [&](std::span<const traced_alert> batch) { eng.ingest_batch(batch); },
        [&](sim_time now) {
            eng.tick(now, sim.state());
            barrier(now);
        });
    const sim_time end = sim.clock().now();
    eng.finish(end, sim.state());
    barrier(end);
}

/// Lineages attributable to a ground-truth scope (either direction:
/// the located root may sit above or below the injected scope).
std::vector<const lifecycle::lineage*> lineages_in_scope(const manager& mgr,
                                                         const location& scope) {
    std::vector<const lifecycle::lineage*> out;
    for (const auto& ln : mgr.lineages()) {
        const location root = location::parse(ln.root);
        if (scope.contains(root) || root.contains(scope)) out.push_back(&ln);
    }
    return out;
}

TEST(LifecycleFlapTest, ThreeFlapLinkYieldsOneFlappingLineagePerSeed) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        world w;
        rng srand(seed);
        auto scen = make_flapping_link(w.topo, srand, /*severe=*/true);
        const location scope = scen->scope();
        scenario* raw = scen.get();

        skynet_engine eng(w.deps(), flap_sensitive_config());
        manager mgr(lifecycle::config{}, &w.topo);
        // Period 2 min: down phases at [0,2) [4,6) [8,10) -> 3 flaps.
        bool first = true;
        drive_managed(
            w, eng, mgr,
            [&]() -> std::unique_ptr<scenario> {
                if (!first) ADD_FAILURE() << "factory called twice";
                first = false;
                return std::move(scen);
            },
            minutes(10), seed);
        (void)raw;

        const auto in_scope = lineages_in_scope(mgr, scope);
        ASSERT_EQ(in_scope.size(), 1u) << "duplicate managed incidents for one flapping link";
        const lifecycle::lineage& ln = *in_scope[0];
        EXPECT_EQ(ln.occurrences, 3u) << "expected one incident x3 occurrences, not "
                                      << ln.occurrences;
        EXPECT_TRUE(ln.state == phase::flapping || ln.state == phase::suppressed ||
                    ln.state == phase::auto_closed)
            << "state " << lifecycle::to_string(ln.state);
        EXPECT_GE(mgr.metrics().flaps_collapsed, 1u);
    }
}

TEST(LifecycleParityTest, SequentialShardedAndStealOnAreByteIdentical) {
    world w;
    const std::uint64_t seed = 5;
    const auto run = [&](auto make_engine) {
        rng srand(seed);
        auto scen = make_flapping_link(w.topo, srand, /*severe=*/true);
        auto eng = make_engine();
        manager mgr(lifecycle::config{}, &w.topo);
        drive_managed(
            w, *eng, mgr, [&] { return std::move(scen); }, minutes(10), seed);
        return std::make_pair(mgr.render_managed(), mgr.last_diff().to_json());
    };

    const auto seq = run([&] {
        return std::make_unique<skynet_engine>(w.deps(), flap_sensitive_config());
    });
    const auto sharded = run([&] {
        sharded_config scfg;
        scfg.shards = 4;
        scfg.steal = false;
        scfg.engine = flap_sensitive_config();
        return std::make_unique<sharded_engine>(w.deps(), scfg);
    });
    const auto stealing = run([&] {
        sharded_config scfg;
        scfg.shards = 4;
        scfg.steal = true;
        scfg.engine = flap_sensitive_config();
        return std::make_unique<sharded_engine>(w.deps(), scfg);
    });

    EXPECT_EQ(seq.first, sharded.first);
    EXPECT_EQ(seq.second, sharded.second);
    EXPECT_EQ(seq.first, stealing.first);
    EXPECT_EQ(seq.second, stealing.second);
}

// --- adversarial pack accuracy --------------------------------------------

TEST(LifecycleScenarioTest, GrayFailureOneManagedIncident) {
    world w;
    rng srand(11);
    auto scen = make_gray_failure(w.topo, srand, /*severe=*/true);
    const location scope = scen->scope();

    // Gray failures surface only through thin end-to-end loss evidence;
    // lower the spawn thresholds so the single-signal incident forms.
    skynet_config cfg = flap_sensitive_config();
    cfg.loc.thresholds.any = 2;

    skynet_engine eng(w.deps(), cfg);
    manager mgr(lifecycle::config{}, &w.topo);
    drive_managed(
        w, eng, mgr, [&] { return std::move(scen); }, minutes(8), 11);

    const auto in_scope = lineages_in_scope(mgr, scope);
    ASSERT_GE(in_scope.size(), 1u) << "gray failure went undetected";
    EXPECT_EQ(in_scope.size(), 1u) << "intermittent evidence must not mint duplicates";
}

TEST(LifecycleScenarioTest, MultiCauseStormOneManagedIncidentPerRoot) {
    world w;
    rng srand(21);
    auto scen = make_multi_cause_storm(w.topo, srand, /*severe=*/true);
    const std::vector<location> scopes = scen->scopes();
    ASSERT_GE(scopes.size(), 2u);

    skynet_engine eng(w.deps(), flap_sensitive_config());
    manager mgr(lifecycle::config{}, &w.topo);
    drive_managed(
        w, eng, mgr, [&] { return std::move(scen); }, minutes(8), 21);

    // Each injected root cause stays its own managed incident: neither
    // merged across scopes nor duplicated within one.
    std::size_t covered = 0;
    for (const location& scope : scopes) {
        const auto in_scope = lineages_in_scope(mgr, scope);
        EXPECT_LE(in_scope.size(), 1u)
            << "duplicate managed incidents under " << scope.to_string();
        covered += in_scope.empty() ? 0 : 1;
    }
    EXPECT_GE(covered, 2u) << "storm roots went undetected";
}

TEST(LifecycleScenarioTest, MaintenanceWindowCollapsesToOneManagedIncident) {
    world w;
    rng srand(31);
    auto scen = make_maintenance_window(w.topo, srand);
    ASSERT_TRUE(scen->benign());
    const location scope = scen->scope();

    skynet_config cfg = flap_sensitive_config();
    cfg.loc.thresholds.any = 2;

    skynet_engine eng(w.deps(), cfg);
    manager mgr(lifecycle::config{}, &w.topo);
    drive_managed(
        w, eng, mgr, [&] { return std::move(scen); }, minutes(8), 31);

    // Rolling per-device reboots must not fan out into one managed
    // incident per device.
    const auto in_scope = lineages_in_scope(mgr, scope);
    EXPECT_LE(in_scope.size(), 1u) << "rolling maintenance minted duplicates";
}

TEST(LifecycleScenarioTest, SlowBurnDegradationOneManagedIncident) {
    world w;
    rng srand(41);
    auto scen = make_slow_burn_degradation(w.topo, srand, /*severe=*/true);
    const location scope = scen->scope();

    skynet_config cfg = flap_sensitive_config();
    cfg.loc.thresholds.any = 2;

    skynet_engine eng(w.deps(), cfg);
    manager mgr(lifecycle::config{}, &w.topo);
    drive_managed(
        w, eng, mgr, [&] { return std::move(scen); }, minutes(10), 41);

    const auto in_scope = lineages_in_scope(mgr, scope);
    ASSERT_GE(in_scope.size(), 1u) << "slow burn went undetected";
    EXPECT_EQ(in_scope.size(), 1u) << "a slow ramp must stay one managed incident";
}

}  // namespace
}  // namespace skynet
