// Unit tests for skynet/common: time, rng, strings.
#include <gtest/gtest.h>

#include <set>

#include "skynet/common/rng.h"
#include "skynet/common/sim_clock.h"
#include "skynet/common/strings.h"
#include "skynet/common/time.h"

namespace skynet {
namespace {

TEST(TimeTest, DurationHelpers) {
    EXPECT_EQ(seconds(1), 1000);
    EXPECT_EQ(minutes(1), 60 * 1000);
    EXPECT_EQ(hours(1), 60 * 60 * 1000);
    EXPECT_EQ(days(1), 24 * 60 * 60 * 1000);
    EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
}

TEST(TimeTest, FormatTime) {
    EXPECT_EQ(format_time(0), "00:00:00.000");
    EXPECT_EQ(format_time(minutes(61) + seconds(2) + 3), "01:01:02.003");
    EXPECT_EQ(format_time(-seconds(1)), "-00:00:01.000");
}

TEST(TimeTest, FormatDuration) {
    EXPECT_EQ(format_duration(512), "512ms");
    EXPECT_EQ(format_duration(seconds(3) + 500), "3.5s");
    EXPECT_EQ(format_duration(minutes(3) + seconds(42)), "3m42s");
    EXPECT_EQ(format_duration(hours(2) + minutes(5)), "2h5m");
}

TEST(TimeRangeTest, ExtendAndContains) {
    time_range r{100, 200};
    EXPECT_EQ(r.length(), 100);
    EXPECT_TRUE(r.contains(100));
    EXPECT_TRUE(r.contains(200));
    EXPECT_FALSE(r.contains(201));
    r.extend(50);
    r.extend(300);
    EXPECT_EQ(r.begin, 50);
    EXPECT_EQ(r.end, 300);
}

TEST(TimeRangeTest, Overlaps) {
    const time_range a{0, 100};
    EXPECT_TRUE(a.overlaps(time_range{100, 200}));
    EXPECT_TRUE(a.overlaps(time_range{50, 60}));
    EXPECT_FALSE(a.overlaps(time_range{101, 200}));
}

TEST(SimClockTest, AdvancesMonotonically) {
    sim_clock clock(100);
    EXPECT_EQ(clock.now(), 100);
    clock.advance(50);
    EXPECT_EQ(clock.now(), 150);
    clock.advance(-10);  // clamped
    EXPECT_EQ(clock.now(), 150);
    clock.advance_to(120);  // backwards jump ignored
    EXPECT_EQ(clock.now(), 150);
    clock.advance_to(500);
    EXPECT_EQ(clock.now(), 500);
}

TEST(RngTest, DeterministicForSeed) {
    rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    }
}

TEST(RngTest, UniformIntBounds) {
    rng r(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(RngTest, ChanceExtremes) {
    rng r(2);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-1.0));
    EXPECT_TRUE(r.chance(2.0));
}

TEST(RngTest, WeightedIndexRespectsZeros) {
    rng r(3);
    const std::vector<double> weights{0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.weighted_index(weights), 1u);
    }
}

TEST(RngTest, WeightedIndexDistribution) {
    rng r(4);
    const std::vector<double> weights{1.0, 9.0};
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        if (r.weighted_index(weights) == 1) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.9, 0.03);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
    rng r(5);
    EXPECT_THROW((void)r.weighted_index(std::vector<double>{0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW((void)r.weighted_index(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
}

TEST(RngTest, IndexThrowsOnEmpty) {
    rng r(6);
    EXPECT_THROW((void)r.index(0), std::invalid_argument);
}

TEST(RngTest, ForkIndependence) {
    rng a(7);
    rng child = a.fork();
    // A fork must not replay the parent stream.
    rng b(7);
    (void)b.fork();
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
    (void)child.uniform_int(0, 10);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
    EXPECT_EQ(split("a|b||c", '|'), (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(split("", '|'), (std::vector<std::string>{""}));
    EXPECT_EQ(split("abc", '|'), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitWhitespace) {
    EXPECT_EQ(split_whitespace("  a\t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(StringsTest, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, "|"), "a|b|c");
    EXPECT_EQ(join({}, "|"), "");
    EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(StringsTest, Predicates) {
    EXPECT_TRUE(starts_with("hello world", "hello"));
    EXPECT_FALSE(starts_with("hi", "hello"));
    EXPECT_TRUE(contains("hello world", "o w"));
    EXPECT_FALSE(contains("hello", "z"));
}

TEST(StringsTest, ToLower) {
    EXPECT_EQ(to_lower("AbC-123"), "abc-123");
}

}  // namespace
}  // namespace skynet
