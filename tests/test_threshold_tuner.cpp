// Tests for the data-driven threshold tuner (§9 future work).
#include <gtest/gtest.h>

#include "skynet/alert/type_registry.h"
#include "skynet/common/error.h"
#include "skynet/core/threshold_tuner.h"

namespace skynet {
namespace {

/// Two connected devices for alert placement.
struct fixture {
    topology topo;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    device_id a, b;

    fixture() {
        const location cl{"R", "C", "LS", "S", "CL"};
        a = topo.add_device("a", device_role::tor, cl.child("a"));
        b = topo.add_device("b", device_role::agg, cl.child("b"));
        const circuit_set_id cs = topo.add_circuit_set("ab", a, b);
        (void)topo.add_link(a, b, cs, 100.0);
    }

    structured_alert alert(const char* type, data_source src, device_id dev, sim_time t) const {
        structured_alert out;
        const auto id = registry.find(src, type);
        if (!id) throw std::runtime_error("unknown type");
        out.type = *id;
        out.type_name = type;
        out.source = src;
        out.category = registry.at(*id).category;
        out.when = time_range{t, t};
        out.loc = topo.device_at(dev).loc;
        out.device = dev;
        out.metric = out.category == alert_category::failure ? 0.1 : 0.0;
        return out;
    }

    /// Episode with a real failure footprint: F failure types + O other
    /// types at connected devices.
    tuning_episode failure_episode(int failure_types, int other_types) const {
        static const char* failures[] = {"packet loss", "sflow packet loss",
                                         "internet packet loss", "int packet loss"};
        static const char* others[] = {"link down", "bgp peer down", "traffic congestion",
                                       "device inaccessible"};
        static const data_source failure_src[] = {data_source::ping, data_source::traffic_stats,
                                                  data_source::internet_telemetry,
                                                  data_source::inband_telemetry};
        static const data_source other_src[] = {data_source::snmp, data_source::syslog,
                                                data_source::snmp, data_source::out_of_band};
        tuning_episode e;
        sim_time t = 0;
        for (int i = 0; i < failure_types; ++i) {
            e.alerts.emplace_back(alert(failures[i], failure_src[i], a, t), t);
            t += seconds(2);
        }
        for (int i = 0; i < other_types; ++i) {
            e.alerts.emplace_back(alert(others[i], other_src[i], b, t), t);
            t += seconds(2);
        }
        e.truth.push_back(scenario_record{.name = "synthetic",
                                          .cause = root_cause::device_hardware,
                                          .scope = topo.device_at(a).loc.parent(),
                                          .scopes = {topo.device_at(a).loc.parent()},
                                          .active = time_range{0, t},
                                          .severe = true,
                                          .benign = false,
                                          .must_detect = true,
                                          .culprit = a});
        e.end = t + minutes(20);
        return e;
    }

    /// Noise episode: a benign event producing N abnormal types; any
    /// incident here is a false positive.
    tuning_episode noise_episode(int abnormal_types) const {
        static const char* types[] = {"high cpu", "traffic surge", "interface flap",
                                      "route churn"};
        static const data_source srcs[] = {data_source::out_of_band, data_source::snmp,
                                           data_source::snmp, data_source::route_monitoring};
        tuning_episode e;
        sim_time t = 0;
        for (int i = 0; i < abnormal_types; ++i) {
            e.alerts.emplace_back(alert(types[i], srcs[i], a, t), t);
            t += seconds(2);
        }
        e.truth.push_back(scenario_record{.name = "flash crowd",
                                          .cause = root_cause::security,
                                          .scope = topo.device_at(a).loc.parent(),
                                          .scopes = {topo.device_at(a).loc.parent()},
                                          .active = time_range{0, t},
                                          .severe = false,
                                          .benign = true,
                                          .must_detect = false,
                                          .culprit = std::nullopt});
        e.end = t + minutes(20);
        return e;
    }
};

TEST(ThresholdTunerTest, DefaultGridIncludesProduction) {
    const auto grid = default_threshold_grid();
    bool found = false;
    for (const incident_thresholds& t : grid) {
        if (t.pure_failure == 2 && t.combo_failure == 1 && t.combo_other == 2 && t.any == 5) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ThresholdTunerTest, RejectsEmptyCandidates) {
    fixture f;
    EXPECT_THROW((void)tune_thresholds(f.topo, {}, {}), skynet_error);
}

TEST(ThresholdTunerTest, PrefersZeroFalseNegatives) {
    fixture f;
    // Failures have exactly 2 failure types + 1 other; noise has 4
    // abnormal types.
    std::vector<tuning_episode> episodes;
    episodes.push_back(f.failure_episode(2, 1));
    episodes.push_back(f.failure_episode(2, 2));
    episodes.push_back(f.noise_episode(4));

    // Candidate A (3/0+0/0) misses the failures; candidate B (2/0+0/0)
    // catches both with no FP; candidate C (0/0+0/3) catches them but
    // also fires on the noise.
    const std::vector<incident_thresholds> candidates{
        incident_thresholds{.pure_failure = 3, .combo_failure = 0, .combo_other = 0, .any = 0},
        incident_thresholds{.pure_failure = 2, .combo_failure = 0, .combo_other = 0, .any = 0},
        incident_thresholds{.pure_failure = 0, .combo_failure = 0, .combo_other = 0, .any = 3},
    };
    const tuning_result result = tune_thresholds(f.topo, episodes, candidates);

    EXPECT_EQ(result.best.pure_failure, 2);
    EXPECT_EQ(result.best_accuracy.false_negatives, 0);
    EXPECT_EQ(result.best_accuracy.false_positives, 0);
    ASSERT_EQ(result.all.size(), 3u);
    EXPECT_GT(result.all[0].accuracy.false_negatives, 0);  // too strict
    EXPECT_GT(result.all[2].accuracy.false_positives, 0);  // too loose
}

TEST(ThresholdTunerTest, TieBreaksTowardStricter) {
    fixture f;
    std::vector<tuning_episode> episodes;
    episodes.push_back(f.failure_episode(3, 2));

    // Both candidates detect the episode with zero FP/FN; the stricter
    // one (higher any-threshold) wins the tie.
    const std::vector<incident_thresholds> candidates{
        incident_thresholds{.pure_failure = 0, .combo_failure = 0, .combo_other = 0, .any = 4},
        incident_thresholds{.pure_failure = 0, .combo_failure = 0, .combo_other = 0, .any = 5},
    };
    const tuning_result result = tune_thresholds(f.topo, episodes, candidates);
    EXPECT_EQ(result.best.any, 5);
}

TEST(ThresholdTunerTest, ProductionWinsOnDefaultGrid) {
    // A small labeled corpus shaped like the Figure 9 findings: failures
    // with the canonical footprints, plus type-rich benign noise.
    fixture f;
    std::vector<tuning_episode> episodes;
    episodes.push_back(f.failure_episode(2, 0));  // needs A<=2
    episodes.push_back(f.failure_episode(1, 2));  // needs B/C
    episodes.push_back(f.failure_episode(2, 3));
    episodes.push_back(f.noise_episode(4));       // must NOT fire

    const auto grid = default_threshold_grid();
    const tuning_result result = tune_thresholds(f.topo, episodes, grid);
    EXPECT_EQ(result.best_accuracy.false_negatives, 0);
    EXPECT_EQ(result.best_accuracy.false_positives, 0);
    // The winner accepts 2 pure failures and 1+2 combos — the production
    // clauses (the any-threshold may tie higher).
    EXPECT_EQ(result.best.pure_failure, 2);
    EXPECT_EQ(result.best.combo_failure, 1);
    EXPECT_EQ(result.best.combo_other, 2);
}

}  // namespace
}  // namespace skynet
