// Unit and property tests for the topology container and generator.
#include <gtest/gtest.h>

#include <unordered_set>

#include "skynet/common/error.h"
#include "skynet/topology/generator.h"
#include "skynet/topology/topology.h"

namespace skynet {
namespace {

/// Minimal hand-built fabric: two ToRs and an AGG in one cluster plus a
/// remote device.
struct mini_topo {
    topology topo;
    device_id tor1, tor2, agg, remote;
    link_id l1, l2;
    circuit_set_id cs1;

    mini_topo() {
        const location cluster{"R", "C", "LS", "S", "CL"};
        tor1 = topo.add_device("tor1", device_role::tor, cluster.child("tor1"));
        tor2 = topo.add_device("tor2", device_role::tor, cluster.child("tor2"));
        agg = topo.add_device("agg1", device_role::agg, cluster.child("agg1"));
        remote = topo.add_device("remote", device_role::tor,
                                 location{"R", "C", "LS", "S2", "CL9", "remote"});
        cs1 = topo.add_circuit_set("tor1<->agg1", tor1, agg);
        l1 = topo.add_link(tor1, agg, cs1, 25.0);
        l2 = topo.add_link(tor2, agg, invalid_circuit_set, 25.0);
    }
};

TEST(TopologyTest, ElementAccess) {
    mini_topo m;
    EXPECT_EQ(m.topo.devices().size(), 4u);
    EXPECT_EQ(m.topo.links().size(), 2u);
    EXPECT_EQ(m.topo.device_at(m.tor1).name, "tor1");
    EXPECT_EQ(m.topo.link_at(m.l1).capacity_gbps, 25.0);
    EXPECT_EQ(m.topo.circuit_set_at(m.cs1).circuits.size(), 1u);
    EXPECT_THROW((void)m.topo.device_at(999), skynet_error);
    EXPECT_THROW((void)m.topo.link_at(999), skynet_error);
}

TEST(TopologyTest, DuplicateDeviceNameRejected) {
    topology topo;
    (void)topo.add_device("x", device_role::tor, location{"R", "x"});
    EXPECT_THROW((void)topo.add_device("x", device_role::tor, location{"R", "y"}),
                 skynet_error);
}

TEST(TopologyTest, FindDevice) {
    mini_topo m;
    EXPECT_EQ(m.topo.find_device("agg1"), m.agg);
    EXPECT_EQ(m.topo.find_device("nope"), std::nullopt);
}

TEST(TopologyTest, AdjacencyAndNeighbors) {
    mini_topo m;
    EXPECT_TRUE(m.topo.adjacent(m.tor1, m.agg));
    EXPECT_FALSE(m.topo.adjacent(m.tor1, m.tor2));
    const auto n = m.topo.neighbors(m.agg);
    EXPECT_EQ(n.size(), 2u);
}

TEST(TopologyTest, DevicesUnder) {
    mini_topo m;
    EXPECT_EQ(m.topo.devices_under(location{"R", "C", "LS", "S", "CL"}).size(), 3u);
    EXPECT_EQ(m.topo.devices_under(location{"R"}).size(), 4u);
    EXPECT_TRUE(m.topo.devices_under(location{"Z"}).empty());
}

TEST(TopologyTest, HopDistance) {
    mini_topo m;
    EXPECT_EQ(m.topo.hop_distance(m.tor1, m.tor1), 0);
    EXPECT_EQ(m.topo.hop_distance(m.tor1, m.agg), 1);
    EXPECT_EQ(m.topo.hop_distance(m.tor1, m.tor2), 2);
    EXPECT_EQ(m.topo.hop_distance(m.tor1, m.remote), std::nullopt);
}

TEST(TopologyTest, ConnectedComponentsSplitIsolatedDevices) {
    mini_topo m;
    const std::vector<device_id> members{m.tor1, m.agg, m.remote};
    const auto groups = m.topo.connected_components(members);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::vector<device_id>{m.tor1, m.agg}));
    EXPECT_EQ(groups[1], (std::vector<device_id>{m.remote}));
}

TEST(TopologyTest, ConnectedComponentsSameClusterGlue) {
    mini_topo m;
    // tor1 and tor2 share no link but share the cluster.
    const std::vector<device_id> members{m.tor1, m.tor2};
    EXPECT_EQ(m.topo.connected_components(members).size(), 1u);
}

TEST(TopologyTest, CircuitSetsOf) {
    mini_topo m;
    EXPECT_EQ(m.topo.circuit_sets_of(m.tor1).size(), 1u);
    EXPECT_TRUE(m.topo.circuit_sets_of(m.tor2).empty());
}

// --- generator properties ---------------------------------------------------

class GeneratorTest : public ::testing::TestWithParam<generator_params> {};

TEST_P(GeneratorTest, StructuralInvariants) {
    const topology topo = generate_topology(GetParam());

    ASSERT_FALSE(topo.devices().empty());
    ASSERT_FALSE(topo.links().empty());

    // Every link endpoint is valid and every circuit of a set joins the
    // set's endpoints.
    for (const link& l : topo.links()) {
        ASSERT_LT(l.a, topo.devices().size());
        ASSERT_LT(l.b, topo.devices().size());
        if (l.cset != invalid_circuit_set) {
            const circuit_set& cs = topo.circuit_set_at(l.cset);
            const bool matches = (cs.a == l.a && cs.b == l.b) || (cs.a == l.b && cs.b == l.a);
            ASSERT_TRUE(matches) << "circuit endpoints disagree with set " << cs.name;
        }
    }

    // Device locations are unique, non-root, and end with the device name.
    std::unordered_set<std::string> locs;
    for (const device& d : topo.devices()) {
        ASSERT_FALSE(d.loc.is_root());
        ASSERT_EQ(d.loc.leaf(), d.name);
        ASSERT_TRUE(locs.insert(d.loc.to_string()).second);
    }

    // Every non-ISP device is connected to the fabric.
    for (const device& d : topo.devices()) {
        ASSERT_FALSE(topo.links_of(d.id).empty()) << d.name << " is isolated";
    }

    // Group members share the group id.
    for (const device_group& g : topo.groups()) {
        for (device_id m : g.members) {
            ASSERT_EQ(topo.device_at(m).group, g.id);
        }
    }
}

TEST_P(GeneratorTest, InternetEntriesExist) {
    const topology topo = generate_topology(GetParam());
    int entries = 0;
    for (const link& l : topo.links()) {
        if (l.internet_entry) ++entries;
    }
    EXPECT_GT(entries, 0);
}

TEST_P(GeneratorTest, WholeFabricIsReachable) {
    const topology topo = generate_topology(GetParam());
    // BFS from device 0 must reach every device (ISPs included via
    // internet entries).
    const auto d = topo.hop_distance(0, static_cast<device_id>(topo.devices().size() - 1));
    EXPECT_TRUE(d.has_value());
}

TEST_P(GeneratorTest, DeterministicForSeed) {
    const topology a = generate_topology(GetParam());
    const topology b = generate_topology(GetParam());
    ASSERT_EQ(a.devices().size(), b.devices().size());
    ASSERT_EQ(a.links().size(), b.links().size());
    for (std::size_t i = 0; i < a.devices().size(); ++i) {
        EXPECT_EQ(a.devices()[i].name, b.devices()[i].name);
        EXPECT_EQ(a.devices()[i].legacy_slow_snmp, b.devices()[i].legacy_slow_snmp);
    }
}

INSTANTIATE_TEST_SUITE_P(Presets, GeneratorTest,
                         ::testing::Values(generator_params::tiny(), generator_params::small(),
                                           generator_params::medium()));

TEST(GeneratorTest, ScalePresetsAreOrdered) {
    const auto tiny = generate_topology(generator_params::tiny());
    const auto small = generate_topology(generator_params::small());
    const auto medium = generate_topology(generator_params::medium());
    EXPECT_LT(tiny.devices().size(), small.devices().size());
    EXPECT_LT(small.devices().size(), medium.devices().size());
}

TEST(GeneratorTest, ReflectorsPresentWhenRequested) {
    generator_params p = generator_params::tiny();
    p.add_reflectors = true;
    const topology topo = generate_topology(p);
    bool has_rr = false;
    for (const device& d : topo.devices()) {
        if (d.role == device_role::reflector) has_rr = true;
    }
    EXPECT_TRUE(has_rr);
}

}  // namespace
}  // namespace skynet
