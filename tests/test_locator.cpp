// Tests for the locator (§4.2): Algorithms 1-3, incident thresholds,
// per-type counting and topology-connectivity grouping.
#include <gtest/gtest.h>

#include "skynet/alert/type_registry.h"
#include "skynet/core/locator.h"

namespace skynet {
namespace {

/// Two clusters in different sites plus an isolated remote device, like
/// Figure 5c: device n sits apart from the main alerting group.
struct fixture {
    topology topo;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    device_id a1, a2, a3;  // connected chain in Site I / Cluster i
    device_id n;           // isolated device in Site n / Cluster n

    fixture() {
        const location ci{"Region A", "City a", "LS 2", "Site I", "Cluster i"};
        const location cn{"Region A", "City a", "LS 2", "Site n", "Cluster n"};
        a1 = topo.add_device("a1", device_role::tor, ci.child("a1"));
        a2 = topo.add_device("a2", device_role::agg, ci.child("a2"));
        a3 = topo.add_device("a3", device_role::agg, ci.child("a3"));
        n = topo.add_device("n", device_role::tor, cn.child("n"));
        const circuit_set_id cs = topo.add_circuit_set("a1a2", a1, a2);
        (void)topo.add_link(a1, a2, cs, 100.0);
    }

    structured_alert alert(std::string type_name, data_source src, device_id dev,
                           sim_time t) const {
        structured_alert a;
        const auto id = registry.find(src, type_name);
        if (!id) throw std::runtime_error("unknown type " + type_name);
        a.type = *id;
        a.type_name = std::move(type_name);
        a.source = src;
        a.category = registry.at(*id).category;
        a.when = time_range{t, t};
        a.loc = topo.device_at(dev).loc;
        a.device = dev;
        a.metric = a.category == alert_category::failure ? 0.1 : 0.0;
        return a;
    }
};

TEST(ThresholdTest, ProductionNotation) {
    const incident_thresholds t{};  // 2/1+2/5
    EXPECT_EQ(t.to_string(), "2/1+2/5");
    EXPECT_FALSE(t.met(0, 0));
    EXPECT_FALSE(t.met(1, 1));      // one failure alone
    EXPECT_FALSE(t.met(1, 2));      // 1 failure + 1 other
    EXPECT_TRUE(t.met(1, 3));       // 1 failure + 2 other
    EXPECT_TRUE(t.met(2, 2));       // 2 failures
    EXPECT_FALSE(t.met(0, 4));      // 4 any
    EXPECT_TRUE(t.met(0, 5));       // 5 any
}

TEST(ThresholdTest, DisabledClauses) {
    // 0 disables a clause (the Figure 9 ablations).
    const incident_thresholds no_any{.pure_failure = 2, .combo_failure = 1, .combo_other = 2,
                                     .any = 0};
    EXPECT_FALSE(no_any.met(0, 100));
    const incident_thresholds no_pure{.pure_failure = 0, .combo_failure = 1, .combo_other = 2,
                                      .any = 5};
    EXPECT_FALSE(no_pure.met(3, 3));
    EXPECT_TRUE(no_pure.met(3, 5));
    const incident_thresholds no_combo{.pure_failure = 2, .combo_failure = 0, .combo_other = 0,
                                       .any = 5};
    EXPECT_FALSE(no_combo.met(1, 4));
}

TEST(LocatorTest, BelowThresholdNoIncident) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    EXPECT_TRUE(loc.check(seconds(10)).empty());
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, TwoFailureTypesSpawnIncident) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 1000), 1000);
    (void)loc.check(seconds(10));
    const auto open = loc.open_incidents();
    ASSERT_EQ(open.size(), 1u);
    // Root at the common ancestor of the alerting devices.
    EXPECT_EQ(open[0].root, (location{"Region A", "City a", "LS 2", "Site I", "Cluster i"}));
    EXPECT_EQ(open[0].alerts.size(), 2u);
}

TEST(LocatorTest, SameTypeCountsOnce) {
    // §4.2: the probe-glitch flood — hundreds of identical device-down
    // alerts are ONE type and must not spawn an incident.
    fixture f;
    locator loc(&f.topo);
    for (int i = 0; i < 300; ++i) {
        loc.insert(f.alert("device inaccessible", data_source::out_of_band, f.a1, i * 100),
                   i * 100);
    }
    EXPECT_TRUE(loc.check(seconds(40)).empty());
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, TypePlusLocationAblationOverTriggers) {
    // The Figure 9 "type+location" variant counts the same type at
    // different locations separately -> the glitchy pattern now fires.
    fixture f;
    locator_config cfg;
    cfg.count_by_type = false;
    locator loc(&f.topo, cfg);
    // Same single type, five connected locations... our fixture has 3
    // connected devices; use their shared cluster plus site nodes via
    // aggregate alerts.
    loc.insert(f.alert("device inaccessible", data_source::out_of_band, f.a1, 0), 0);
    loc.insert(f.alert("device inaccessible", data_source::out_of_band, f.a2, 0), 0);
    loc.insert(f.alert("device inaccessible", data_source::out_of_band, f.a3, 0), 0);
    structured_alert agg = f.alert("device inaccessible", data_source::out_of_band, f.a1, 0);
    agg.loc = agg.loc.parent();  // cluster-level
    agg.device.reset();
    loc.insert(agg, 0);
    structured_alert site = agg;
    site.loc = agg.loc.parent();  // site-level
    loc.insert(site, 0);
    (void)loc.check(seconds(5));
    EXPECT_EQ(loc.open_incidents().size(), 1u);

    // Per-type counting would have seen one type and stayed silent.
    locator by_type(&f.topo);
    by_type.insert(f.alert("device inaccessible", data_source::out_of_band, f.a1, 0), 0);
    by_type.insert(f.alert("device inaccessible", data_source::out_of_band, f.a2, 0), 0);
    by_type.insert(f.alert("device inaccessible", data_source::out_of_band, f.a3, 0), 0);
    by_type.insert(agg, 0);
    by_type.insert(site, 0);
    (void)by_type.check(seconds(5));
    EXPECT_TRUE(by_type.open_incidents().empty());
}

TEST(LocatorTest, ConnectivitySplitsIsolatedDevice) {
    // Figure 5c: alerts at a connected group AND at an isolated device n
    // -> two incident trees, not one.
    fixture f;
    locator loc(&f.topo);
    // Group 1: two failure types at connected devices.
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    // Group 2: the isolated device n, with 1 failure + 2 other types.
    loc.insert(f.alert("internet packet loss", data_source::internet_telemetry, f.n, 0), 0);
    loc.insert(f.alert("port down", data_source::syslog, f.n, 0), 0);
    loc.insert(f.alert("bgp peer down", data_source::syslog, f.n, 0), 0);

    (void)loc.check(seconds(5));
    const auto open = loc.open_incidents();
    ASSERT_EQ(open.size(), 2u);
    const location cluster_i{"Region A", "City a", "LS 2", "Site I", "Cluster i"};
    const location device_n{"Region A", "City a", "LS 2", "Site n", "Cluster n", "n"};
    EXPECT_TRUE((open[0].root == cluster_i && open[1].root == device_n) ||
                (open[0].root == device_n && open[1].root == cluster_i));
}

TEST(LocatorTest, WithoutConnectivityOneMergedIncident) {
    fixture f;
    locator_config cfg;
    cfg.use_connectivity = false;
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    loc.insert(f.alert("internet packet loss", data_source::internet_telemetry, f.n, 0), 0);
    (void)loc.check(seconds(5));
    const auto open = loc.open_incidents();
    ASSERT_EQ(open.size(), 1u);
    EXPECT_EQ(open[0].root, (location{"Region A", "City a", "LS 2"}));
}

TEST(LocatorTest, AggregateAlertGluesGroups) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    // A logic-site-level alert covers both branches, welding them.
    structured_alert wide = f.alert("internet unreachable", data_source::internet_telemetry,
                                    f.n, 0);
    wide.loc = location{"Region A", "City a", "LS 2"};
    wide.device.reset();
    loc.insert(wide, 0);
    loc.insert(f.alert("port down", data_source::syslog, f.n, 0), 0);
    (void)loc.check(seconds(5));
    const auto open = loc.open_incidents();
    ASSERT_EQ(open.size(), 1u);
    EXPECT_EQ(open[0].root, (location{"Region A", "City a", "LS 2"}));
}

TEST(LocatorTest, IncidentAbsorbsLaterAlerts) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    const std::size_t before = loc.open_incidents()[0].alerts.size();

    // A new alert under the incident root lands in the incident tree
    // (Algorithm 1 lines 1-4).
    loc.insert(f.alert("link down", data_source::snmp, f.a3, seconds(30)), seconds(30));
    (void)loc.check(seconds(35));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    EXPECT_EQ(loc.open_incidents()[0].alerts.size(), before + 1);
}

TEST(LocatorTest, GrowingIncidentAbsorbsSmallerOne) {
    // Algorithm 2 lines 7-9: when a wider group passes the threshold, the
    // incident trees inside its subtree are replaced.
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a1, 0), 0);
    (void)loc.check(seconds(2));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    const location first_root = loc.open_incidents()[0].root;

    // More alerts widen the connected group (a2, a3 join via links /
    // shared cluster).
    loc.insert(f.alert("link down", data_source::snmp, f.a2, seconds(4)), seconds(4));
    loc.insert(f.alert("bgp peer down", data_source::syslog, f.a3, seconds(4)), seconds(4));
    (void)loc.check(seconds(6));
    const auto open = loc.open_incidents();
    ASSERT_EQ(open.size(), 1u);
    EXPECT_TRUE(open[0].root.contains(first_root));
    EXPECT_NE(open[0].root, first_root);
}

TEST(LocatorTest, NodeTimeoutExpiresStaleAlerts) {
    fixture f;
    locator_config cfg;
    cfg.node_timeout = minutes(5);
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    EXPECT_EQ(loc.main_tree_size(), 1u);
    (void)loc.check(minutes(6));
    EXPECT_EQ(loc.main_tree_size(), 0u);

    // The expired alert no longer pairs with a fresh one.
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, minutes(6)),
               minutes(6));
    (void)loc.check(minutes(6) + seconds(5));
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, RefreshKeepsNodeAlive) {
    fixture f;
    locator loc(&f.topo);
    structured_alert a = f.alert("packet loss", data_source::ping, f.a1, 0);
    loc.insert(a, 0);
    // Consolidation updates arrive every 2 minutes; the node must not
    // expire at the 5-minute timeout.
    a.when.extend(minutes(2));
    a.count = 2;
    loc.refresh(a, minutes(2));
    a.when.extend(minutes(4));
    a.count = 3;
    loc.refresh(a, minutes(4));
    (void)loc.check(minutes(6));
    EXPECT_EQ(loc.main_tree_size(), 1u);
}

TEST(LocatorTest, IncidentTimesOutAfterQuietPeriod) {
    fixture f;
    locator_config cfg;
    cfg.incident_timeout = minutes(15);
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);

    EXPECT_TRUE(loc.check(minutes(10)).empty());  // still open
    const auto closed = loc.check(minutes(16));
    ASSERT_EQ(closed.size(), 1u);
    EXPECT_TRUE(closed[0].closed);
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, NodeTimeoutExactAtDeadline) {
    // Regression for the boundary semantics: expiry is >=, so a node
    // idle for exactly node_timeout is gone AT the deadline — a
    // 5-minute timeout means 5 minutes, not 5 minutes plus one tick.
    fixture f;
    locator_config cfg;
    cfg.node_timeout = minutes(5);
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    (void)loc.check(minutes(5) - 1);
    EXPECT_EQ(loc.main_tree_size(), 1u);  // one ms before: still alive
    (void)loc.check(minutes(5));
    EXPECT_EQ(loc.main_tree_size(), 0u);  // exactly at: expired
}

TEST(LocatorTest, NodeTimeoutJustPastDeadline) {
    fixture f;
    locator_config cfg;
    cfg.node_timeout = minutes(5);
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    (void)loc.check(minutes(5) + 1);
    EXPECT_EQ(loc.main_tree_size(), 0u);
}

TEST(LocatorTest, IncidentTimeoutExactAtDeadline) {
    // Same >= boundary for the incident quiet period. The incident's
    // update_time is the check() that spawned it (5s here).
    fixture f;
    locator_config cfg;
    cfg.incident_timeout = minutes(15);
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);

    const sim_time deadline = seconds(5) + minutes(15);
    EXPECT_TRUE(loc.check(deadline - 1).empty());  // one ms before: open
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    const auto closed = loc.check(deadline);  // exactly at: closed
    ASSERT_EQ(closed.size(), 1u);
    EXPECT_TRUE(closed[0].closed);
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, IncidentTimeoutJustPastDeadline) {
    fixture f;
    locator_config cfg;
    cfg.incident_timeout = minutes(15);
    locator loc(&f.topo, cfg);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    const auto closed = loc.check(seconds(5) + minutes(15) + 1);
    ASSERT_EQ(closed.size(), 1u);
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, DrainClosesEverything) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    (void)loc.check(seconds(5));
    const auto closed = loc.drain(seconds(10));
    ASSERT_EQ(closed.size(), 1u);
    EXPECT_TRUE(loc.open_incidents().empty());
}

TEST(LocatorTest, IncidentCountsByCategory) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    loc.insert(f.alert("link down", data_source::snmp, f.a1, 0), 0);
    loc.insert(f.alert("bgp peer down", data_source::syslog, f.a2, 0), 0);
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    const incident inc = loc.open_incidents()[0];
    EXPECT_EQ(inc.type_count(alert_category::failure), 2);
    EXPECT_EQ(inc.type_count(alert_category::root_cause), 1);
    EXPECT_EQ(inc.type_count(alert_category::abnormal), 1);
    EXPECT_EQ(inc.total_type_count(), 4);
    EXPECT_NEAR(inc.avg_failure_loss(), 0.1, 1e-9);
}

TEST(LocatorTest, RenderShowsFigure6Structure) {
    fixture f;
    locator loc(&f.topo);
    loc.insert(f.alert("packet loss", data_source::ping, f.a1, 0), 0);
    loc.insert(f.alert("sflow packet loss", data_source::traffic_stats, f.a2, 0), 0);
    loc.insert(f.alert("link down", data_source::snmp, f.a1, 0), 0);
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    const std::string text = loc.open_incidents()[0].render();
    EXPECT_NE(text.find("Failure alerts"), std::string::npos);
    EXPECT_NE(text.find("Root cause alerts"), std::string::npos);
    EXPECT_NE(text.find("packet loss"), std::string::npos);
    EXPECT_NE(text.find("Region A|City a|LS 2|Site I|Cluster i"), std::string::npos);
}

TEST(LocatorTest, UniformThresholdsAcrossLevels) {
    // A single port-down can be the root cause of a whole failure; the
    // same thresholds apply at every hierarchy level (§4.2).
    fixture f;
    locator loc(&f.topo);
    // Aggregate-level alerts only (logic-site level), no device alerts.
    for (const char* type : {"internet unreachable", "internet packet loss"}) {
        structured_alert a =
            f.alert(type, data_source::internet_telemetry, f.a1, 0);
        a.loc = location{"Region A", "City a", "LS 2"};
        a.device.reset();
        loc.insert(a, 0);
    }
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);
    EXPECT_EQ(loc.open_incidents()[0].root, (location{"Region A", "City a", "LS 2"}));
}

}  // namespace
}  // namespace skynet
