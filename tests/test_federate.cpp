// Tests for skynet::federate: the digest codec and journal, the region
// staleness state machine, the per-region emitter (stale-barrier
// gating, journal reload, retry/catch-up), and the global aggregator
// (exactly-once sequence gating, region flaps, partition parity, the
// merged HTTP surface).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "skynet/federate/aggregator.h"
#include "skynet/federate/digest.h"
#include "skynet/federate/emitter.h"
#include "skynet/federate/health.h"
#include "skynet/serve/net.h"
#include "skynet/serve/report_text.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

namespace skynet::federate {
namespace {

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::tiny()) {
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 150, crand);
    }
};

/// Real incident reports (the digest codec round-trips every field of
/// the alert/severity/incident structures, so synthetic stubs would
/// not exercise it honestly). Produced once.
const std::vector<incident_report>& fixture_reports() {
    static const std::vector<incident_report> reports = [] {
        world w(generator_params::small());
        simulation_engine sim(&w.topo, &w.customers,
                              engine_params{.tick = seconds(2), .seed = 11});
        sim.add_default_monitors();
        rng srand(12);
        sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(4));
        skynet_engine engine(
            skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
        sim.run_until(minutes(6),
                      [&](const raw_alert& a, sim_time arrival) { engine.ingest(a, arrival); },
                      [&](sim_time now) { engine.tick(now, sim.state()); });
        engine.finish(sim.clock().now(), sim.state());
        return engine.take_reports();
    }();
    return reports;
}

std::string unique_sock(const char* tag) {
    return "unix:" + testing::TempDir() + "fed_" + tag + "_" + std::to_string(::getpid()) +
           ".sock";
}

std::string unique_dir(const char* tag) {
    const std::string dir =
        testing::TempDir() + "fed_" + tag + "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
}

region_digest make_digest(std::string region, std::uint64_t seq, sim_time barrier,
                          bool finish, std::vector<incident_report> reports = {}) {
    region_digest d;
    d.region = std::move(region);
    d.seq = seq;
    d.barrier = barrier;
    d.finish = finish;
    d.reports = std::move(reports);
    return d;
}

// ---------------------------------------------------------------------------
// Digest payload codec.

TEST(DigestCodecTest, RoundTripsRealReports) {
    const auto& reports = fixture_reports();
    ASSERT_FALSE(reports.empty());
    const region_digest in = make_digest("eu-west", 42, minutes(5), true, reports);

    region_digest out;
    std::string err;
    ASSERT_TRUE(decode_digest_payload(encode_digest_payload(in), out, err)) << err;
    EXPECT_EQ(out.region, "eu-west");
    EXPECT_EQ(out.seq, 42u);
    EXPECT_EQ(out.barrier, minutes(5));
    EXPECT_TRUE(out.finish);
    ASSERT_EQ(out.reports.size(), reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(out.reports[i].inc.id, reports[i].inc.id);
        EXPECT_EQ(out.reports[i].severity.score, reports[i].severity.score);
        EXPECT_EQ(out.reports[i].render(), reports[i].render());
    }
}

TEST(DigestCodecTest, RejectsTrailingBytesAndEmptyRegion) {
    region_digest out;
    std::string err;
    std::string payload = encode_digest_payload(make_digest("r", 1, 0, false));
    payload += "junk";
    EXPECT_FALSE(decode_digest_payload(payload, out, err));
    EXPECT_NE(err.find("trailing"), std::string::npos);

    // An empty region would make every aggregator key collide.
    std::string anon = encode_digest_payload(make_digest("x", 1, 0, false));
    const std::size_t at = anon.find("\tx\n");
    ASSERT_NE(at, std::string::npos);
    anon.replace(at, 3, "\t\n");
    EXPECT_FALSE(decode_digest_payload(anon, out, err));
}

// ---------------------------------------------------------------------------
// Federation wire decoder.

TEST(FedDecoderTest, ReassemblesFramesFromSingleByteFeeds) {
    std::string stream{fed_magic};
    stream += frame_fed_record(fed_record::hello, "apac");
    stream += frame_fed_record(fed_record::digest,
                               encode_digest_payload(make_digest("apac", 1, seconds(2), false)));
    stream += frame_fed_record(
        fed_record::digest,
        encode_digest_payload(make_digest("apac", 2, minutes(1), true, fixture_reports())));

    fed_decoder dec;
    std::vector<fed_frame> out;
    for (const char c : stream) {
        dec.feed(std::string_view(&c, 1));
        while (auto frame = dec.next()) out.push_back(std::move(*frame));
    }
    EXPECT_FALSE(dec.corrupt());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].type, fed_record::hello);
    EXPECT_EQ(out[0].payload, "apac");
    EXPECT_EQ(out[1].type, fed_record::digest);
    region_digest d;
    std::string err;
    ASSERT_TRUE(decode_digest_payload(out[2].payload, d, err)) << err;
    EXPECT_EQ(d.seq, 2u);
    EXPECT_EQ(d.reports.size(), fixture_reports().size());
    EXPECT_EQ(dec.frames_decoded(), 3u);
}

TEST(FedDecoderTest, LatchesOnBadMagicAndCorruptPayload) {
    fed_decoder bad_magic;
    bad_magic.feed("SKYNETJ1");  // the engine-journal magic, not the federation one
    EXPECT_FALSE(bad_magic.next().has_value());
    EXPECT_TRUE(bad_magic.corrupt());
    EXPECT_NE(bad_magic.corruption_reason().find("magic"), std::string::npos);

    std::string stream{fed_magic};
    std::string frame = frame_fed_record(fed_record::digest,
                                         encode_digest_payload(make_digest("r", 1, 0, false)));
    frame.back() ^= 0x5a;
    stream += frame;
    fed_decoder corrupt;
    corrupt.feed(stream);
    EXPECT_FALSE(corrupt.next().has_value());
    EXPECT_TRUE(corrupt.corrupt());
    EXPECT_NE(corrupt.corruption_reason().find("CRC"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Digest journal: torn tails truncate, intact prefixes replay.

TEST(DigestJournalTest, ReloadsIntactPrefixAndTruncatesTornTail) {
    const std::string dir = unique_dir("journal");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + std::string(digest_journal_filename);
    {
        digest_journal_writer writer(path);
        for (std::uint64_t seq = 1; seq <= 3; ++seq) {
            writer.append_frame(frame_fed_record(
                fed_record::digest,
                encode_digest_payload(make_digest("us-east", seq, seconds(2 * seq), false))));
        }
    }
    const std::uint64_t intact = std::filesystem::file_size(path);
    {
        // A crash mid-append leaves a torn frame; the reader must keep
        // the intact prefix and report the tail.
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "\x02\xff\xff";  // digest type + torn header
    }
    const digest_journal_read loaded = read_digest_journal(path);
    EXPECT_FALSE(loaded.missing);
    ASSERT_EQ(loaded.digests.size(), 3u);
    EXPECT_EQ(loaded.digests[2].seq, 3u);
    EXPECT_EQ(loaded.valid_bytes, intact);
    EXPECT_GT(loaded.truncated_tail_bytes, 0u);
    EXPECT_FALSE(loaded.truncation_reason.empty());

    std::filesystem::remove_all(dir);
}

TEST(DigestJournalTest, MissingMagicDropsTheFile) {
    const std::string dir = unique_dir("magicless");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + std::string(digest_journal_filename);
    std::ofstream(path, std::ios::binary) << "not a digest journal";
    const digest_journal_read loaded = read_digest_journal(path);
    EXPECT_TRUE(loaded.digests.empty());
    EXPECT_EQ(loaded.valid_bytes, 0u);
    EXPECT_GT(loaded.truncated_tail_bytes, 0u);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Region staleness state machine.

TEST(RegionHealthTest, ClassifiesByThresholds) {
    constexpr health_config cfg{.lag_ms = 10, .stale_ms = 20, .partition_ms = 40};
    static_assert(classify(0, cfg) == region_state::live);
    static_assert(classify(9, cfg) == region_state::live);
    static_assert(classify(10, cfg) == region_state::lagging);
    static_assert(classify(19, cfg) == region_state::lagging);
    static_assert(classify(20, cfg) == region_state::stale);
    static_assert(classify(39, cfg) == region_state::stale);
    static_assert(classify(40, cfg) == region_state::partitioned);
    static_assert(classify(1 << 30, cfg) == region_state::partitioned);
    EXPECT_EQ(to_string(region_state::live), "live");
    EXPECT_EQ(to_string(region_state::lagging), "lagging");
    EXPECT_EQ(to_string(region_state::stale), "stale");
    EXPECT_EQ(to_string(region_state::partitioned), "partitioned");
}

// ---------------------------------------------------------------------------
// Emitter: barrier gating and journal reload.

emitter_config quiet_emitter(const char* region, std::string journal_dir = {}) {
    emitter_config cfg;
    cfg.region = region;
    cfg.aggregator_addr = unique_sock("nowhere");  // parseable, never listening
    cfg.journal_dir = std::move(journal_dir);
    cfg.heartbeat_ms = 0;  // no idle sessions
    cfg.session_timeout_ms = 100;
    cfg.retry.attempts = 0;
    return cfg;
}

TEST(EmitterTest, DropsStaleAndRepeatedBarriersButAllowsFinishUpgrade) {
    digest_emitter em(quiet_emitter("west"));
    ASSERT_FALSE(em.start());
    em.publish({}, minutes(5), false);
    EXPECT_EQ(em.next_seq(), 2u);
    em.publish({}, minutes(4), false);  // stale: barrier went backwards
    EXPECT_EQ(em.next_seq(), 2u);
    em.publish({}, minutes(5), false);  // replayed tick at the same barrier
    EXPECT_EQ(em.next_seq(), 2u);
    em.publish({}, minutes(5), true);  // tick -> finish upgrade carries the drain
    EXPECT_EQ(em.next_seq(), 3u);
    em.publish({}, minutes(5), true);  // replayed finish
    EXPECT_EQ(em.next_seq(), 3u);
    EXPECT_EQ(em.metrics().digests_emitted, 2u);
    em.stop();
}

TEST(EmitterTest, JournalReloadResumesSequenceAndBarrier) {
    const std::string dir = unique_dir("reload");
    {
        digest_emitter em(quiet_emitter("west", dir));
        ASSERT_FALSE(em.start());
        em.publish(fixture_reports(), minutes(2), false);
        em.publish({}, minutes(3), false);
        em.stop();
    }
    {
        // A restarted emitter holds every unacked digest and continues
        // the sequence instead of reusing numbers.
        digest_emitter em(quiet_emitter("west", dir));
        ASSERT_FALSE(em.start());
        EXPECT_EQ(em.next_seq(), 3u);
        EXPECT_EQ(em.last_barrier(), minutes(3));
        em.publish({}, minutes(3), false);  // replayed stream: dropped
        EXPECT_EQ(em.next_seq(), 3u);
        em.publish({}, minutes(4), true);
        EXPECT_EQ(em.next_seq(), 4u);
        em.stop();
    }
    {
        // The journal is bound to its region: a mislabelled restart must
        // refuse rather than emit another region's incidents.
        digest_emitter em(quiet_emitter("east", dir));
        const error e = em.start();
        ASSERT_TRUE(e);
        EXPECT_NE(e.message().find("region"), std::string::npos);
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Aggregator: exactly-once sequence gating.

TEST(AggregatorTest, SequenceGatingIsExactlyOnce) {
    aggregator agg({});
    EXPECT_TRUE(agg.apply_digest(make_digest("r1", 1, seconds(2), false)).applied);
    EXPECT_TRUE(agg.apply_digest(make_digest("r1", 2, seconds(4), false)).applied);
    EXPECT_FALSE(agg.apply_digest(make_digest("r1", 2, seconds(4), false)).applied);
    EXPECT_FALSE(agg.apply_digest(make_digest("r1", 1, seconds(2), false)).applied);
    const auto jump = agg.apply_digest(make_digest("r1", 5, seconds(10), false));
    EXPECT_TRUE(jump.applied);
    EXPECT_EQ(jump.gap, 2u);
    EXPECT_FALSE(agg.apply_digest(make_digest("r1", 3, seconds(6), false)).applied);
    EXPECT_EQ(agg.last_seq("r1"), 5u);
    // Other regions have independent sequence spaces.
    EXPECT_TRUE(agg.apply_digest(make_digest("r2", 1, seconds(2), false)).applied);

    const federation_metrics m = agg.metrics();
    EXPECT_EQ(m.digests_applied, 4u);
    EXPECT_EQ(m.duplicates_dropped, 3u);
    EXPECT_EQ(m.gaps_detected, 2u);
    EXPECT_EQ(m.regions_live, 2u);
}

// ---------------------------------------------------------------------------
// Raw emitter sessions against a live aggregator socket.

struct session_result {
    bool ok{false};
    std::string have_line;
    std::string final_line;
};

/// One hand-rolled emitter session: hello, read HAVE, send the given
/// digest frames verbatim, EOF, read the ack. Lets tests send overlaps
/// and garbage the real emitter would never produce.
session_result raw_session(const std::string& addr_text, const std::string& region,
                           const std::vector<region_digest>& digests) {
    session_result result;
    const auto addr = serve::parse_addr(addr_text);
    if (!addr) return result;
    std::string err;
    const int fd = serve::dial(*addr, err);
    if (fd < 0) return result;
    std::string head(fed_magic);
    head += frame_fed_record(fed_record::hello, region);
    if (!serve::write_all(fd, head) ||
        !serve::read_line(fd, result.have_line, 2000)) {
        ::close(fd);
        return result;
    }
    std::string body;
    for (const region_digest& d : digests) {
        body += frame_fed_record(fed_record::digest, encode_digest_payload(d));
    }
    if (!body.empty() && !serve::write_all(fd, body)) {
        ::close(fd);
        return result;
    }
    ::shutdown(fd, SHUT_WR);
    result.ok = serve::read_line(fd, result.final_line, 2000);
    ::close(fd);
    return result;
}

TEST(AggregatorTest, RegionFlapWithOverlappingDigestsStaysExactlyOnce) {
    aggregator_config cfg;
    cfg.listen_addr = unique_sock("flap");
    aggregator agg(std::move(cfg));
    ASSERT_FALSE(agg.start());

    const auto& reports = fixture_reports();
    ASSERT_FALSE(reports.empty());
    auto digest_at = [&](std::uint64_t seq) {
        // One report per digest so duplicate application would visibly
        // inflate the merged listing.
        return make_digest("flappy", seq, seconds(2 * static_cast<sim_time>(seq)), false,
                           {reports[seq % reports.size()]});
    };

    // Three connect/disconnect cycles with overlapping ranges — the
    // retransmit pattern of an emitter that never saw its acks. Each
    // step lists [lo, hi] sent, the HAVE mark expected at session open,
    // and the final ack line ("OK <last_seq> <applied this session>").
    struct flap_step {
        std::uint64_t lo, hi, have;
        const char* ack;
    };
    const std::vector<flap_step> steps = {
        {1, 3, 0, "OK 3 3"},
        {2, 5, 3, "OK 5 2"},  // 2,3 are duplicates
        {4, 6, 5, "OK 6 1"},  // 4,5 are duplicates
    };
    for (const flap_step& step : steps) {
        std::vector<region_digest> digests;
        for (std::uint64_t s = step.lo; s <= step.hi; ++s) digests.push_back(digest_at(s));
        const session_result r = raw_session(agg.fed_addr(), "flappy", digests);
        ASSERT_TRUE(r.ok);
        // HAVE reports the high-water mark before this session; the
        // sequence accounting is monotone across flaps.
        EXPECT_EQ(r.have_line, "HAVE " + std::to_string(step.have));
        EXPECT_EQ(r.final_line, step.ack);
    }

    EXPECT_EQ(agg.last_seq("flappy"), 6u);
    const federation_metrics m = agg.metrics();
    EXPECT_EQ(m.digests_applied, 6u);
    EXPECT_EQ(m.duplicates_dropped, 4u);  // seqs 2,3 then 4,5 resent
    EXPECT_EQ(m.gaps_detected, 0u);
    // No duplicate incidents: exactly one merged report per sequence.
    EXPECT_EQ(agg.merged_ranked().size(), 6u);

    agg.request_stop();
    EXPECT_EQ(agg.run(), 0);
}

TEST(AggregatorTest, RejectsProtocolViolations) {
    aggregator_config cfg;
    cfg.listen_addr = unique_sock("proto");
    aggregator agg(std::move(cfg));
    ASSERT_FALSE(agg.start());

    // Digest whose region does not match the hello.
    const session_result mismatch =
        raw_session(agg.fed_addr(), "alpha", {make_digest("beta", 1, 0, false)});
    ASSERT_TRUE(mismatch.ok);
    EXPECT_EQ(mismatch.final_line.substr(0, 3), "ERR");
    EXPECT_EQ(agg.last_seq("beta"), 0u);

    // The rejected session must not wedge the listener.
    const session_result clean =
        raw_session(agg.fed_addr(), "alpha", {make_digest("alpha", 1, 0, false)});
    ASSERT_TRUE(clean.ok);
    EXPECT_EQ(clean.final_line, "OK 1 1");

    agg.request_stop();
    EXPECT_EQ(agg.run(), 0);
}

// ---------------------------------------------------------------------------
// Emitter <-> aggregator end-to-end: delivery, catch-up, partition parity.

TEST(FederationEndToEndTest, PartitionCatchUpConvergesToTheConnectedReport) {
    const auto& reports = fixture_reports();
    ASSERT_GE(reports.size(), 1u);

    // Baseline: a region that was connected the whole run.
    aggregator connected({});
    for (std::uint64_t s = 1; s <= 4; ++s) {
        connected.apply_digest(make_digest("west", s, seconds(2 * static_cast<sim_time>(s)),
                                           s == 4, {reports[s % reports.size()]}));
    }
    const std::string baseline =
        serve::render_report_listing(connected.merged_ranked(), {.json = true});

    // Partitioned run: the emitter publishes the same digests while no
    // aggregator is listening (every session fails), then the aggregator
    // appears and one flush delivers the backlog.
    const std::string sock = unique_sock("parity");
    emitter_config ecfg;
    ecfg.region = "west";
    ecfg.aggregator_addr = sock;
    ecfg.heartbeat_ms = 0;
    ecfg.session_timeout_ms = 500;
    ecfg.retry.attempts = 0;
    digest_emitter em(ecfg);
    ASSERT_FALSE(em.start());
    for (std::uint64_t s = 1; s <= 4; ++s) {
        em.publish({reports[s % reports.size()]}, seconds(2 * static_cast<sim_time>(s)),
                   s == 4);
    }
    EXPECT_EQ(em.acked_seq(), 0u);  // the link is down

    aggregator_config acfg;
    acfg.listen_addr = sock;
    aggregator agg(std::move(acfg));
    ASSERT_FALSE(agg.start());
    ASSERT_TRUE(em.flush_now());
    EXPECT_EQ(em.acked_seq(), 4u);
    em.stop();

    // The recovered region's merged report is byte-identical to the
    // always-connected run.
    EXPECT_EQ(serve::render_report_listing(agg.merged_ranked(), {.json = true}), baseline);
    const federation_metrics m = agg.metrics();
    EXPECT_EQ(m.digests_applied, 4u);
    EXPECT_EQ(m.duplicates_dropped, 0u);

    agg.request_stop();
    EXPECT_EQ(agg.run(), 0);
}

TEST(FederationEndToEndTest, HeartbeatsKeepAnIdleRegionLive) {
    const std::string sock = unique_sock("beat");
    aggregator_config acfg;
    acfg.listen_addr = sock;
    aggregator agg(std::move(acfg));
    ASSERT_FALSE(agg.start());

    emitter_config ecfg;
    ecfg.region = "idle-region";
    ecfg.aggregator_addr = sock;
    ecfg.heartbeat_ms = 20;
    ecfg.retry.attempts = 0;
    digest_emitter em(ecfg);
    ASSERT_FALSE(em.start());
    // No digests published: only heartbeat sessions run. The region must
    // still appear, live, with nothing applied.
    for (int i = 0; i < 100 && agg.region_count() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    em.stop();
    EXPECT_EQ(agg.region_count(), 1u);
    EXPECT_EQ(agg.last_seq("idle-region"), 0u);
    const federation_metrics m = agg.metrics();
    EXPECT_EQ(m.digests_applied, 0u);
    EXPECT_EQ(m.regions_live, 1u);

    agg.request_stop();
    EXPECT_EQ(agg.run(), 0);
}

// ---------------------------------------------------------------------------
// Aggregator HTTP surface.

TEST(AggregatorHttpTest, ServesHealthReportAndRegions) {
    aggregator agg({});
    agg.apply_digest(make_digest("north", 1, minutes(1), false, fixture_reports()));

    const serve::http_reply health = agg.handle(serve::parse_target("GET", "/v1/health"));
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"federation\":"), std::string::npos);
    EXPECT_NE(health.body.find("\"digests_applied\":1"), std::string::npos);

    const serve::http_reply report =
        agg.handle(serve::parse_target("GET", "/v1/report?json=1"));
    EXPECT_EQ(report.status, 200);
    EXPECT_EQ(report.body,
              serve::render_report_listing(agg.merged_ranked(), {.json = true}));

    const serve::http_reply regions = agg.handle(serve::parse_target("GET", "/v1/regions"));
    EXPECT_EQ(regions.status, 200);
    EXPECT_NE(regions.body.find("\"region\":\"north\""), std::string::npos);
    EXPECT_NE(regions.body.find("\"state\":\"live\""), std::string::npos);
    EXPECT_NE(regions.body.find("\"last_seq\":1"), std::string::npos);

    EXPECT_EQ(agg.handle(serve::parse_target("GET", "/v1/nope")).status, 404);
    EXPECT_EQ(agg.handle(serve::parse_target("POST", "/v1/report")).status, 405);
}

}  // namespace
}  // namespace skynet::federate
