// Tests for the heuristic SOP rule engine (§7.2).
#include <gtest/gtest.h>

#include "skynet/alert/type_registry.h"
#include "skynet/heuristics/sop.h"

namespace skynet {
namespace {

struct fixture {
    topology topo;
    customer_registry customers;
    device_id agg1, agg2, csr;
    circuit_set_id cs1, cs2;

    fixture() {
        const location cl{"R", "C", "LS", "S", "CL"};
        const location site{"R", "C", "LS", "S"};
        agg1 = topo.add_device("agg1", device_role::agg, cl.child("agg1"));
        agg2 = topo.add_device("agg2", device_role::agg, cl.child("agg2"));
        csr = topo.add_device("csr1", device_role::csr, site.child("csr1"));
        const group_id g = topo.add_group("CL-AGG");
        topo.add_to_group(g, agg1);
        topo.add_to_group(g, agg2);
        cs1 = topo.add_circuit_set("a1c", agg1, csr);
        cs2 = topo.add_circuit_set("a2c", agg2, csr);
        (void)topo.add_link(agg1, csr, cs1, 100.0);
        (void)topo.add_link(agg2, csr, cs2, 100.0);
    }

    structured_alert alert(std::string type_name, device_id dev) const {
        structured_alert a;
        a.type_name = std::move(type_name);
        a.loc = topo.device_at(dev).loc;
        a.device = dev;
        return a;
    }
};

TEST(SopEngineTest, DefaultRulesLoaded) {
    fixture f;
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    EXPECT_GE(engine.rule_count(), 5u);
}

TEST(SopEngineTest, MatchesTheCanonicalPattern) {
    // §7.2: one device in a group loses packets, the group is otherwise
    // quiet, traffic is manageable -> isolate it.
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.4);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);

    const std::vector<structured_alert> recent{f.alert("sflow packet loss", f.agg1)};
    const auto matches = engine.match(recent, state);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].device, f.agg1);
    EXPECT_EQ(matches[0].action, sop_action_kind::isolate_device);
}

TEST(SopEngineTest, NoisyGroupBlocksIsolation) {
    // If the peer is alerting too, isolating one device is wrong (the
    // failure is bigger than the device).
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.4);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    const std::vector<structured_alert> recent{
        f.alert("sflow packet loss", f.agg1),
        f.alert("sflow packet loss", f.agg2),
    };
    EXPECT_TRUE(engine.match(recent, state).empty());
}

TEST(SopEngineTest, HighTrafficBlocksIsolation) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.set_offered_gbps(f.cs1, 90.0);  // util 0.9 > 0.7 limit
    state.set_offered_gbps(f.cs2, 90.0);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    const std::vector<structured_alert> recent{f.alert("sflow packet loss", f.agg1)};
    EXPECT_TRUE(engine.match(recent, state).empty());
}

TEST(SopEngineTest, UnknownFailureMatchesNothing) {
    // The unprecedented pattern (all entry links broken): no rule fires;
    // this is exactly the gap SkyNet fills.
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.4);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    const std::vector<structured_alert> recent{
        f.alert("internet unreachable", f.csr),
        f.alert("traffic congestion", f.csr),
    };
    EXPECT_TRUE(engine.match(recent, state).empty());
}

TEST(SopEngineTest, ExecuteIsolatesAndRollsBack) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.4);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    const auto matches =
        engine.match(std::vector<structured_alert>{f.alert("hardware error", f.agg1)}, state);
    ASSERT_EQ(matches.size(), 1u);

    auto rollback = engine.execute(matches[0], state);
    EXPECT_TRUE(state.device_state(f.agg1).isolated);
    // The prepared rollback plan reverts the action (§7.2).
    rollback(state);
    EXPECT_FALSE(state.device_state(f.agg1).isolated);
}

TEST(SopEngineTest, ForbiddenTypeBlocksRule) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.4);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    // crc error alone -> disable interface; with a hardware error in the
    // group the CRC rule is forbidden (hardware rule handles it).
    const auto only_crc =
        engine.match(std::vector<structured_alert>{f.alert("crc error", f.agg1)}, state);
    ASSERT_EQ(only_crc.size(), 1u);
    EXPECT_EQ(only_crc[0].action, sop_action_kind::disable_interface);

    const auto with_hw = engine.match(
        std::vector<structured_alert>{f.alert("crc error", f.agg1),
                                      f.alert("hardware error", f.agg1)},
        state);
    ASSERT_EQ(with_hw.size(), 1u);
    // The hardware-error isolation rule wins instead.
    EXPECT_EQ(with_hw[0].action, sop_action_kind::isolate_device);
}

TEST(SopEngineTest, DisableInterfaceDrainsCorruptedLink) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.1);
    const link_id bad = f.topo.circuit_set_at(f.cs1).circuits.front();
    state.link_state(bad).corruption_loss = 0.1;

    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    const auto matches =
        engine.match(std::vector<structured_alert>{f.alert("crc error", f.agg1)}, state);
    ASSERT_EQ(matches.size(), 1u);
    auto rollback = engine.execute(matches[0], state);
    EXPECT_FALSE(state.link_state(bad).up);
    rollback(state);
    EXPECT_TRUE(state.link_state(bad).up);
}

TEST(SopEngineTest, AlertsWithoutDeviceIgnored) {
    fixture f;
    network_state state(&f.topo, &f.customers);
    const sop_engine engine = sop_engine::with_default_rules(&f.topo);
    structured_alert a;
    a.type_name = "sflow packet loss";
    a.loc = location{"R", "C", "LS"};
    EXPECT_TRUE(engine.match(std::vector<structured_alert>{a}, state).empty());
}

}  // namespace
}  // namespace skynet
