// Overload-control tests: the admission guard's priority shedding, the
// per-source circuit-breaker state machine, the shard watchdog, and
// bounded-memory degradation — plus the two invariants the layer must
// never break: a default-configured controller is a strict pass-through,
// and an *active* guard still preserves sequential/sharded report parity
// because it degrades the single ordered stream before ingest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <span>
#include <thread>

#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/overload/controller.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/faults.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

using overload::admission_config;
using overload::breaker_state;
using overload::controller;
using overload::controller_config;

// ------------------------------------------------------------ fixtures

/// Hand-built two-device topology for controller unit tests (same shape
/// as the preprocessor fixture; the controller only needs valid ids).
struct small_topo {
    topology topo;
    device_id tor1, agg1;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();

    small_topo() {
        const location cl{"R", "C", "LS", "S", "CL"};
        tor1 = topo.add_device("tor1", device_role::tor, cl.child("tor1"));
        agg1 = topo.add_device("agg1", device_role::agg, cl.child("agg1"));
        const circuit_set_id cs = topo.add_circuit_set("t1a1", tor1, agg1);
        topo.add_link(tor1, agg1, cs, 100.0);
    }

    [[nodiscard]] controller make(controller_config cfg) const {
        return controller(cfg, &topo, &registry);
    }

    [[nodiscard]] raw_alert alert(data_source source, std::string kind, sim_time t) const {
        raw_alert a;
        a.source = source;
        a.timestamp = t;
        a.kind = std::move(kind);
        a.loc = topo.device_at(tor1).loc;
        a.device = tor1;
        return a;
    }
};

/// Generated world for end-to-end tests (mirrors the faults suite).
struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::small()) {
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 300, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() { return {&topo, &customers, &registry, &syslog}; }
};

using scenario_factory = std::function<std::unique_ptr<scenario>()>;

/// Replays one deterministic episode through `eng`, routing every batch
/// through a fresh controller built from `ccfg` (and optionally through
/// a fault injector first, like the faults suite). Because admission
/// decisions depend only on the stream and the simulated clock, two
/// calls with identical inputs feed two engines the identical admitted
/// stream — the parity argument for the whole overload layer.
template <typename Engine>
overload_metrics drive_guarded(world& w, Engine& eng, const controller_config& ccfg,
                               const fault_spec& spec, const scenario_factory& make,
                               sim_duration duration, std::uint64_t seed) {
    controller guard(ccfg, &w.topo, &w.registry);
    fault_injector faults(spec);
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    sim.inject(make(), minutes(1), duration);
    const auto deliver = [&](std::vector<traced_alert> batch) {
        const std::vector<traced_alert> admitted = guard.admit(std::move(batch));
        if (!admitted.empty()) eng.ingest_batch(std::span<const traced_alert>(admitted));
    };
    sim.run_until_batched(
        minutes(1) + duration + minutes(1),
        [&](std::span<const traced_alert> batch) {
            deliver(faults.apply(batch));
        },
        [&](sim_time now) {
            deliver(faults.release(now));
            eng.tick(now, sim.state());
            guard.on_tick(now);
        });
    deliver(faults.drain());
    eng.finish(sim.clock().now(), sim.state());
    return guard.metrics();
}

void expect_identical_reports(const std::vector<incident_report>& seq,
                              const std::vector<incident_report>& sharded) {
    ASSERT_EQ(seq.size(), sharded.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        EXPECT_EQ(seq[i].inc.id, sharded[i].inc.id);
        EXPECT_EQ(seq[i].inc.alerts.size(), sharded[i].inc.alerts.size());
        EXPECT_EQ(seq[i].severity.score, sharded[i].severity.score);
        EXPECT_EQ(seq[i].render(), sharded[i].render());
    }
}

// ------------------------------------------------------- admission guard

TEST(OverloadControllerTest, DefaultConfigIsStrictPassThrough) {
    small_topo f;
    controller guard = f.make(controller_config{});
    EXPECT_TRUE(guard.pass_through());

    std::vector<raw_alert> batch;
    batch.push_back(f.alert(data_source::ping, "packet loss", 10));
    batch.push_back(f.alert(data_source::snmp, "martian kind", 20));  // even garbage passes
    const std::vector<raw_alert> out = guard.admit(std::move(batch), 20);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, "packet loss");
    EXPECT_EQ(out[1].kind, "martian kind");
    EXPECT_FALSE(guard.metrics().any());
    guard.on_tick(seconds(2));
    EXPECT_FALSE(guard.metrics().any());
}

TEST(OverloadControllerTest, ShedsLowestValueClassesFirst) {
    small_topo f;
    controller_config cfg;
    cfg.admission.max_alerts = 2;
    controller guard = f.make(cfg);

    // failure > root_cause > other > duplicate, per the builtin catalog.
    std::vector<raw_alert> batch;
    batch.push_back(f.alert(data_source::ping, "packet loss", 0));          // failure
    batch.push_back(f.alert(data_source::ping, "packet loss", 0));          // duplicate
    batch.push_back(f.alert(data_source::traffic_stats, "traffic surge", 0));  // other
    batch.push_back(f.alert(data_source::snmp, "link down", 0));            // root_cause
    const std::vector<raw_alert> out = guard.admit(std::move(batch), 0);

    // Survivors keep their original order.
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].kind, "packet loss");
    EXPECT_EQ(out[1].kind, "link down");

    const overload_metrics& m = guard.metrics();
    EXPECT_EQ(m.admitted, 2u);
    EXPECT_EQ(m.shed_duplicate, 1u);
    EXPECT_EQ(m.shed_other, 1u);
    EXPECT_EQ(m.shed_root_cause, 0u);
    EXPECT_EQ(m.shed_failure, 0u);
    EXPECT_GT(m.shed_bytes, 0u);
}

TEST(OverloadControllerTest, ByteBudgetShedsEvenFailures) {
    small_topo f;
    controller_config cfg;
    cfg.admission.max_bytes = 1;  // nothing fits
    controller guard = f.make(cfg);
    std::vector<raw_alert> batch;
    batch.push_back(f.alert(data_source::ping, "packet loss", 0));
    const std::vector<raw_alert> out = guard.admit(std::move(batch), 0);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(guard.metrics().admitted, 0u);
    EXPECT_EQ(guard.metrics().shed_failure, 1u);
}

TEST(OverloadControllerTest, TickResetsWindowBudgetAndDedup) {
    small_topo f;
    controller_config cfg;
    cfg.admission.max_alerts = 1;
    controller guard = f.make(cfg);

    std::vector<raw_alert> one;
    one.push_back(f.alert(data_source::ping, "packet loss", 0));
    EXPECT_EQ(guard.admit(one, 0).size(), 1u);
    // Window budget spent *and* the key is now a known duplicate.
    EXPECT_TRUE(guard.admit(one, 1).empty());
    EXPECT_EQ(guard.metrics().shed_duplicate, 1u);

    guard.on_tick(seconds(2));
    // Fresh window: the same alert is neither over budget nor a dup.
    const std::vector<raw_alert> out = guard.admit(one, seconds(2));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(guard.metrics().shed_duplicate, 1u);
    EXPECT_EQ(guard.metrics().admitted, 2u);
}

// ------------------------------------------------------ circuit breaker

controller_config breaker_cfg() {
    controller_config cfg;
    cfg.breaker.enabled = true;
    cfg.breaker.window = seconds(10);
    cfg.breaker.min_samples = 4;
    cfg.breaker.trip_ratio = 0.5;
    cfg.breaker.backoff_initial = seconds(20);
    cfg.breaker.backoff_max = seconds(40);
    cfg.breaker.probe_count = 2;
    return cfg;
}

/// Feeds one alert and returns whether it survived the breaker.
bool feed_one(controller& guard, const raw_alert& a, sim_time now) {
    return !guard.admit(std::vector<raw_alert>{a}, now).empty();
}

TEST(BreakerTest, TripsThenHalfOpensThenRecloses) {
    small_topo f;
    controller guard = f.make(breaker_cfg());
    const raw_alert bad = f.alert(data_source::snmp, "martian kind", 0);
    const raw_alert good = f.alert(data_source::snmp, "link down", 0);

    // A closed breaker passes everything — the engine itself rejects bad
    // alerts, which keeps closed-breaker behaviour bit-identical to no
    // breaker at all.
    for (sim_time t : {seconds(0), seconds(1), seconds(2), seconds(3)}) {
        EXPECT_TRUE(feed_one(guard, bad, t));
    }
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::closed);

    // The window rolls at 10s with 4/4 bad samples: trip. The tripping
    // alert itself is then quarantined.
    EXPECT_FALSE(feed_one(guard, good, seconds(11)));
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::open);
    EXPECT_EQ(guard.breaker(data_source::snmp).trips, 1u);
    EXPECT_EQ(guard.metrics().breaker_trips, 1u);
    EXPECT_EQ(guard.metrics().quarantined, 1u);

    // Still dark before the backoff elapses.
    EXPECT_FALSE(feed_one(guard, good, seconds(25)));

    // reopen_at = 11s + 20s: the first alert after that is a probe and is
    // admitted; two clean probes re-close the breaker.
    EXPECT_TRUE(feed_one(guard, good, seconds(31)));
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::half_open);
    EXPECT_TRUE(feed_one(guard, good, seconds(32)));
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::closed);
    EXPECT_EQ(guard.metrics().probes_admitted, 2u);
    EXPECT_EQ(guard.metrics().breaker_closes, 1u);
    EXPECT_EQ(guard.breaker(data_source::snmp).backoff, 0);

    // Back to normal service.
    EXPECT_TRUE(feed_one(guard, good, seconds(33)));
}

TEST(BreakerTest, FailedProbeReopensWithDoubledBackoff) {
    small_topo f;
    controller guard = f.make(breaker_cfg());
    const raw_alert bad = f.alert(data_source::snmp, "martian kind", 0);
    const raw_alert good = f.alert(data_source::snmp, "link down", 0);

    for (sim_time t : {seconds(0), seconds(1), seconds(2), seconds(3)}) {
        feed_one(guard, bad, t);
    }
    EXPECT_FALSE(feed_one(guard, good, seconds(11)));  // trips; reopen at 31s

    // A bad probe is still admitted (the engine rejects it) but slams the
    // breaker shut with doubled backoff, capped at backoff_max.
    EXPECT_TRUE(feed_one(guard, bad, seconds(31)));
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::open);
    EXPECT_EQ(guard.breaker(data_source::snmp).backoff, seconds(40));
    EXPECT_EQ(guard.metrics().breaker_reopens, 1u);

    EXPECT_FALSE(feed_one(guard, good, seconds(60)));  // 31s + 40s not reached
    EXPECT_TRUE(feed_one(guard, good, seconds(71)));
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::half_open);
}

TEST(BreakerTest, QuarantineIsolatesThePoisonedSourceOnly) {
    small_topo f;
    controller guard = f.make(breaker_cfg());
    const raw_alert bad = f.alert(data_source::snmp, "martian kind", 0);

    for (sim_time t : {seconds(0), seconds(1), seconds(2), seconds(3)}) {
        feed_one(guard, bad, t);
    }
    EXPECT_FALSE(feed_one(guard, bad, seconds(11)));
    EXPECT_EQ(guard.breaker(data_source::snmp).state, breaker_state::open);

    // Ping is a different breaker: unaffected.
    EXPECT_TRUE(feed_one(guard, f.alert(data_source::ping, "packet loss", seconds(12)),
                         seconds(12)));
    EXPECT_EQ(guard.breaker(data_source::ping).state, breaker_state::closed);
    EXPECT_EQ(guard.breaker(data_source::ping).quarantined, 0u);
    EXPECT_GT(guard.breaker(data_source::snmp).quarantined, 0u);
}

// -------------------------------------------------------------- persist

void expect_states_equal(const controller::persist_state& a, const controller::persist_state& b) {
    EXPECT_EQ(a.window_alerts, b.window_alerts);
    EXPECT_EQ(a.window_bytes, b.window_bytes);
    EXPECT_EQ(a.dedup_keys, b.dedup_keys);
    for (std::size_t i = 0; i < a.breakers.size(); ++i) {
        SCOPED_TRACE("breaker " + std::to_string(i));
        EXPECT_EQ(a.breakers[i].state, b.breakers[i].state);
        EXPECT_EQ(a.breakers[i].window_good, b.breakers[i].window_good);
        EXPECT_EQ(a.breakers[i].window_bad, b.breakers[i].window_bad);
        EXPECT_EQ(a.breakers[i].window_start, b.breakers[i].window_start);
        EXPECT_EQ(a.breakers[i].reopen_at, b.breakers[i].reopen_at);
        EXPECT_EQ(a.breakers[i].backoff, b.breakers[i].backoff);
        EXPECT_EQ(a.breakers[i].probes_left, b.breakers[i].probes_left);
        EXPECT_EQ(a.breakers[i].trips, b.breakers[i].trips);
        EXPECT_EQ(a.breakers[i].quarantined, b.breakers[i].quarantined);
    }
    EXPECT_EQ(a.counters.admitted, b.counters.admitted);
    EXPECT_EQ(a.counters.shed_total(), b.counters.shed_total());
    EXPECT_EQ(a.counters.quarantined, b.counters.quarantined);
}

TEST(OverloadPersistTest, ExportImportResumesIdenticalDecisions) {
    small_topo f;
    controller_config cfg = breaker_cfg();
    cfg.admission.max_alerts = 3;

    controller original = f.make(cfg);
    std::vector<raw_alert> first;
    first.push_back(f.alert(data_source::ping, "packet loss", 0));
    first.push_back(f.alert(data_source::ping, "packet loss", 0));  // duplicate
    first.push_back(f.alert(data_source::snmp, "martian kind", 0));  // bad sample
    first.push_back(f.alert(data_source::snmp, "link down", 0));
    (void)original.admit(first, 0);

    controller restored = f.make(cfg);
    restored.import_state(original.export_state());
    expect_states_equal(original.export_state(), restored.export_state());

    // From here both controllers must make the same calls forever.
    std::vector<raw_alert> second;
    second.push_back(f.alert(data_source::ping, "packet loss", 0));  // dup across batches
    second.push_back(f.alert(data_source::traffic_stats, "traffic surge", 1));
    second.push_back(f.alert(data_source::snmp, "link down", 1));
    const std::vector<raw_alert> out_a = original.admit(second, seconds(1));
    const std::vector<raw_alert> out_b = restored.admit(second, seconds(1));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t i = 0; i < out_a.size(); ++i) EXPECT_EQ(out_a[i].kind, out_b[i].kind);
    original.on_tick(seconds(2));
    restored.on_tick(seconds(2));
    expect_states_equal(original.export_state(), restored.export_state());
}

TEST(OverloadConfigTest, ValidateRejectsNonsense) {
    small_topo f;
    controller_config cfg;
    cfg.breaker.enabled = true;
    cfg.breaker.trip_ratio = 1.5;
    EXPECT_THROW(f.make(cfg), skynet_error);
    cfg = controller_config{};
    cfg.breaker.enabled = true;
    cfg.breaker.backoff_max = cfg.breaker.backoff_initial - 1;
    EXPECT_THROW(f.make(cfg), skynet_error);
}

// ------------------------------------------------------- shard watchdog

TEST(WatchdogTest, RecoversInjectedStallWithReportParity) {
    world w;
    const scenario_factory make = [&] {
        rng srand(82);
        return make_security_ddos(w.topo, srand, 3);
    };
    const controller_config inert{};  // overload layer off: pure watchdog test
    const fault_spec no_faults{};

    sharded_config base;
    base.shards = 4;
    sharded_engine clean(w.deps(), base);
    (void)drive_guarded(w, clean, inert, no_faults, make, minutes(4), 83);
    const std::vector<incident_report> clean_reports = clean.take_reports();

    sharded_config stalled_cfg = base;
    stalled_cfg.watchdog_deadline_ms = 100;
    stalled_cfg.worker_stall = [](std::size_t shard, std::uint64_t ordinal) {
        return shard == 1 && ordinal == 4;
    };
    sharded_engine stalled(w.deps(), stalled_cfg);
    (void)drive_guarded(w, stalled, inert, no_faults, make, minutes(4), 83);
    const std::vector<incident_report> stalled_reports = stalled.take_reports();

    // The parked worker was released with its queued work untouched, so
    // the run is bit-identical to the unstalled one.
    expect_identical_reports(clean_reports, stalled_reports);
    const engine_metrics m = stalled.metrics();
    EXPECT_GE(m.overload.stalls_detected, 1u);
    EXPECT_EQ(m.overload.stalls_detected, m.overload.stalls_recovered);
    EXPECT_EQ(m.overload.shards_written_off, 0u);
    EXPECT_EQ(stalled.failed_shard_count(), 0u);
}

TEST(WatchdogTest, WritesOffShardWedgedPastDeadline) {
    world w(generator_params::tiny());
    sharded_config scfg;
    scfg.shards = 2;
    scfg.watchdog_deadline_ms = 100;
    // A genuinely wedged worker: no stall gate to release, just a command
    // that outlives the deadline. The watchdog must write the shard off
    // rather than hang the barrier.
    std::atomic<bool> wedged_once{false};
    scfg.worker_fault = [&wedged_once](std::size_t shard) {
        if (shard == 1 && !wedged_once.exchange(true)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(600));
        }
    };
    sharded_engine eng(w.deps(), scfg);
    network_state idle(&w.topo, &w.customers);
    EXPECT_THROW(eng.tick(seconds(2), idle), skynet_error);

    EXPECT_EQ(eng.failed_shard_count(), 1u);
    const std::vector<std::string> msgs = eng.failed_shard_messages();
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_NE(msgs[0].find("watchdog"), std::string::npos);
    const engine_metrics m = eng.metrics();
    EXPECT_EQ(m.overload.shards_written_off, 1u);
    EXPECT_EQ(m.overload.stalls_recovered, 0u);
}

// -------------------------------------------- bounded-memory degradation

/// Tight caps + a three-seed fault storm: eviction must fire, and two
/// runs of the same seed must agree exactly (deterministic oldest-first
/// eviction, not load-dependent shedding).
TEST(EvictionTest, DeterministicUnderFaultStormForThreeSeeds) {
    world w;
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    cfg.pre.max_pending_alerts = 16;
    cfg.loc.max_node_alerts = 4;
    cfg.loc.max_open_incidents = 3;

    fault_spec spec;
    spec.duplicate_rate = 0.3;
    spec.corrupt_rate = 0.05;
    spec.skew_rate = 0.2;
    spec.max_skew = seconds(5);

    const controller_config inert{};
    for (const std::uint64_t fault_seed : {3u, 17u, 4242u}) {
        SCOPED_TRACE("fault seed " + std::to_string(fault_seed));
        spec.seed = fault_seed;
        const scenario_factory make = [&] {
            rng srand(82);
            return make_security_ddos(w.topo, srand, 3);
        };
        const auto run = [&](skynet_engine& eng) {
            return drive_guarded(w, eng, inert, spec, make, minutes(4), 83);
        };
        skynet_engine a(w.deps(), cfg);
        skynet_engine b(w.deps(), cfg);
        run(a);
        run(b);
        const std::vector<incident_report> ra = a.take_reports();
        const std::vector<incident_report> rb = b.take_reports();
        expect_identical_reports(ra, rb);

        const overload_metrics& om = a.metrics().overload;
        EXPECT_GT(om.evicted_node_alerts + om.evicted_incidents + om.evicted_pending, 0u)
            << "caps this tight must evict under a storm";
        EXPECT_EQ(om.evicted_node_alerts, b.metrics().overload.evicted_node_alerts);
        EXPECT_EQ(om.evicted_incidents, b.metrics().overload.evicted_incidents);
        EXPECT_EQ(om.evicted_pending, b.metrics().overload.evicted_pending);
    }
}

// ------------------------------------------------------ e2e parity/json

/// The layer's headline invariant: an *active* admission guard still
/// preserves sequential/sharded parity, because it sheds from the single
/// ordered stream before region partitioning.
TEST(GuardedParityTest, ActiveAdmissionPreservesEngineParity) {
    world w;
    controller_config ccfg;
    ccfg.admission.max_alerts = 10;  // tight enough to shed during the flood
    ccfg.breaker.enabled = true;
    const fault_spec no_faults{};
    const scenario_factory make = [&] {
        rng srand(82);
        return make_security_ddos(w.topo, srand, 3);
    };

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine seq(w.deps(), cfg);
    const overload_metrics seq_m =
        drive_guarded(w, seq, ccfg, no_faults, make, minutes(5), 83);
    const std::vector<incident_report> seq_reports = seq.take_reports();

    sharded_config scfg;
    scfg.shards = 4;
    sharded_engine par(w.deps(), scfg);
    const overload_metrics par_m =
        drive_guarded(w, par, ccfg, no_faults, make, minutes(5), 83);
    const std::vector<incident_report> par_reports = par.take_reports();

    // Identical stream, identical admission calls.
    EXPECT_EQ(seq_m.admitted, par_m.admitted);
    EXPECT_EQ(seq_m.shed_total(), par_m.shed_total());
    EXPECT_GT(seq_m.shed_total(), 0u) << "budget must actually bite for this test to mean much";
    expect_identical_reports(seq_reports, par_reports);
    EXPECT_EQ(seq.preprocessing_stats(), par.preprocessing_stats());
}

TEST(OverloadMetricsTest, ToJsonCarriesEveryBlock) {
    engine_metrics m;
    m.overload.shed_other = 2;
    m.overload.breaker_trips = 1;
    m.degraded.alerts_rejected = 3;
    const std::string json = m.to_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    for (const char* key : {"\"stages\"", "\"queue\"", "\"degraded\"", "\"recovery\"",
                            "\"overload\"", "\"shed_other\":2", "\"breaker_trips\":1",
                            "\"alerts_rejected\":3", "\"stalls_detected\":0"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(OverloadMetricsTest, RenderShowsOverloadOnlyWhenActive) {
    engine_metrics m;
    EXPECT_EQ(m.render().find("overload"), std::string::npos);
    m.overload.quarantined = 5;
    EXPECT_NE(m.render().find("overload"), std::string::npos);
}

}  // namespace
}  // namespace skynet
