// Sketch-based counting tests: count-min conservative update, the
// exact-front counting_policy, and the differential harness that proves
// the two regimes relate the way DESIGN.md promises — bit-identical
// below the cardinality threshold, one-sided (never undercounting)
// above it, with the epsilon/delta overestimation bound holding
// empirically at flood scale.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/common/rng.h"
#include "skynet/core/pipeline.h"
#include "skynet/core/preprocessor.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/overload/controller.h"
#include "skynet/sim/engine.h"
#include "skynet/sketch/counting.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

using sketch::counted;
using sketch::count_min_sketch;
using sketch::counting_mode;
using sketch::counting_policy;
using sketch::sketch_config;

// ---------------------------------------------------------------------------
// Config surface.

TEST(SketchConfigTest, ParsesCliSpellings) {
    EXPECT_EQ(sketch::parse_counting_mode("off"), counting_mode::off);
    EXPECT_EQ(sketch::parse_counting_mode("auto"), counting_mode::auto_switch);
    EXPECT_EQ(sketch::parse_counting_mode("on"), counting_mode::always);
    EXPECT_FALSE(sketch::parse_counting_mode("maybe").has_value());
    EXPECT_FALSE(sketch::parse_counting_mode("").has_value());
}

TEST(SketchConfigTest, RoundTripsToString) {
    for (const counting_mode mode :
         {counting_mode::off, counting_mode::auto_switch, counting_mode::always}) {
        EXPECT_EQ(sketch::parse_counting_mode(sketch::to_string(mode)), mode);
    }
}

TEST(SketchConfigTest, RejectsBadShapes) {
    sketch_config cfg;
    EXPECT_EQ(cfg.check(), nullptr);  // defaults are valid

    cfg.width = 1000;  // not a power of two
    EXPECT_NE(cfg.check(), nullptr);
    cfg.width = 8192;

    cfg.depth = 0;
    EXPECT_NE(cfg.check(), nullptr);
    cfg.depth = count_min_sketch::max_depth + 1;
    EXPECT_NE(cfg.check(), nullptr);
    cfg.depth = 4;

    cfg.threshold = 0;  // auto mode with no exact regime at all
    EXPECT_NE(cfg.check(), nullptr);

    // Off mode never consults the shape, so nothing to reject.
    cfg.mode = counting_mode::off;
    EXPECT_EQ(cfg.check(), nullptr);
}

TEST(SketchConfigTest, ErrorBoundsFollowShape) {
    sketch_config cfg;
    cfg.width = 8192;
    cfg.depth = 4;
    EXPECT_NEAR(cfg.epsilon(), 2.718281828 / 8192.0, 1e-9);
    EXPECT_NEAR(cfg.delta(), 0.018315639, 1e-6);
    cfg.depth = 8;
    EXPECT_LT(cfg.delta(), 0.001);
}

TEST(SketchConfigTest, InvalidConfigThrowsFromPolicy) {
    sketch_config cfg;
    cfg.width = 7;
    EXPECT_THROW(counting_policy{cfg}, skynet_error);
}

TEST(SketchConfigTest, Hash64IsStableAcrossBuilds) {
    // FNV-1a reference values; these must never change (persisted
    // comparisons and deterministic replay depend on them).
    EXPECT_EQ(sketch::hash64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(sketch::hash64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_NE(sketch::hash64("skynet"), sketch::hash64("skynets"));
}

// ---------------------------------------------------------------------------
// count_min_sketch core.

TEST(CountMinTest, NeverUndercounts) {
    count_min_sketch cm(1024, 4);
    std::unordered_map<std::uint64_t, std::uint64_t> truth;
    rng rand(7);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rand.uniform_int(0, 4999);
        const std::uint64_t n = rand.uniform_int(1, 3);
        truth[key] += n;
        const std::uint64_t est = cm.add(key, n);
        ASSERT_GE(est, truth[key]);
    }
    for (const auto& [key, count] : truth) {
        ASSERT_GE(cm.estimate(key), count);
    }
}

TEST(CountMinTest, ConservativeUpdateBeatsPlainUpdate) {
    // Same stream through both update rules: the conservative estimates
    // must never exceed the fetch_add ones (they raise fewer cells).
    count_min_sketch conservative(512, 4);
    count_min_sketch plain(512, 4);
    rng rand(11);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t key = rand.uniform_int(0, 2999);
        keys.push_back(key);
        (void)conservative.add(key);
        plain.add_concurrent(key);
    }
    std::uint64_t conservative_total = 0;
    std::uint64_t plain_total = 0;
    for (std::uint64_t key = 0; key < 3000; ++key) {
        ASSERT_LE(conservative.estimate(key), plain.estimate(key));
        conservative_total += conservative.estimate(key);
        plain_total += plain.estimate(key);
    }
    EXPECT_LE(conservative_total, plain_total);
}

TEST(CountMinTest, ClearZeroesEstimates) {
    count_min_sketch cm(64, 2);
    (void)cm.add(42, 100);
    EXPECT_GE(cm.estimate(42), 100u);
    cm.clear();
    EXPECT_EQ(cm.estimate(42), 0u);
}

TEST(CountMinTest, CopyPreservesEstimates) {
    count_min_sketch cm(128, 3);
    for (std::uint64_t key = 0; key < 50; ++key) (void)cm.add(key, key + 1);
    const count_min_sketch copy = cm;  // NOLINT(performance-unnecessary-copy-initialization)
    for (std::uint64_t key = 0; key < 50; ++key) {
        EXPECT_EQ(copy.estimate(key), cm.estimate(key));
    }
    EXPECT_EQ(copy.memory_bytes(), cm.memory_bytes());
}

TEST(CountMinTest, EmptySketchEstimatesZero) {
    const count_min_sketch cm;
    EXPECT_EQ(cm.estimate(123), 0u);
    EXPECT_EQ(cm.memory_bytes(), 0u);
}

TEST(CountMinTest, EpsilonDeltaBoundHoldsEmpirically) {
    // 10^5 distinct keys, one add each: the fraction of keys whose
    // estimate exceeds truth by more than epsilon*N must stay within
    // delta. Conservative update only tightens the classic bound, so a
    // clean pass here is the expected outcome, not a lucky one.
    constexpr std::size_t kKeys = 100000;
    constexpr std::size_t kWidth = 4096;
    constexpr std::size_t kDepth = 4;
    sketch_config cfg;
    cfg.width = kWidth;
    cfg.depth = kDepth;
    count_min_sketch cm(kWidth, kDepth);
    for (std::uint64_t key = 0; key < kKeys; ++key) (void)cm.add(key);

    const double bound = cfg.epsilon() * static_cast<double>(kKeys);
    std::size_t violations = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        const std::uint64_t est = cm.estimate(key);
        ASSERT_GE(est, 1u);  // one-sided: never under the true count
        if (static_cast<double>(est - 1) > bound) ++violations;
    }
    const double observed = static_cast<double>(violations) / static_cast<double>(kKeys);
    EXPECT_LE(observed, cfg.delta())
        << violations << " of " << kKeys << " keys exceeded eps*N=" << bound;
}

// ---------------------------------------------------------------------------
// counting_policy regimes.

TEST(CountingPolicyTest, ExactBelowThreshold) {
    sketch_config cfg;
    cfg.threshold = 100;
    counting_policy policy(cfg);
    for (std::uint64_t key = 0; key < 99; ++key) {
        const counted c = policy.add(key);
        EXPECT_FALSE(c.sketched);
        EXPECT_TRUE(c.first);
        EXPECT_EQ(c.count, 1u);
    }
    const counted repeat = policy.add(5);
    EXPECT_FALSE(repeat.sketched);
    EXPECT_FALSE(repeat.first);
    EXPECT_EQ(repeat.count, 2u);
    EXPECT_EQ(policy.sketched_adds(), 0u);
    EXPECT_FALSE(policy.sketch_active());
}

TEST(CountingPolicyTest, SpillsToSketchAtThreshold) {
    sketch_config cfg;
    cfg.threshold = 10;
    counting_policy policy(cfg);
    for (std::uint64_t key = 0; key < 10; ++key) (void)policy.add(key);
    EXPECT_EQ(policy.exact_size(), 10u);

    const counted spilled = policy.add(1000);
    EXPECT_TRUE(spilled.sketched);
    EXPECT_TRUE(policy.sketch_active());
    EXPECT_EQ(policy.sketched_adds(), 1u);
    // Keys already exact stay exact: the front cache is never demoted.
    const counted cached = policy.add(3);
    EXPECT_FALSE(cached.sketched);
    EXPECT_EQ(cached.count, 2u);
    EXPECT_EQ(policy.exact_size(), 10u);
}

TEST(CountingPolicyTest, AlwaysModeSketchesFromFirstKey) {
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    EXPECT_TRUE(policy.overflowing(0));
    const counted c = policy.add(7, 3);
    EXPECT_TRUE(c.sketched);
    EXPECT_TRUE(c.first);
    EXPECT_GE(c.count, 3u);
    EXPECT_EQ(policy.exact_size(), 0u);
}

TEST(CountingPolicyTest, OffModeNeverOverflows) {
    sketch_config cfg;
    cfg.mode = counting_mode::off;
    cfg.threshold = 1;
    counting_policy policy(cfg);
    EXPECT_FALSE(policy.enabled());
    EXPECT_FALSE(policy.overflowing(1u << 20));
    for (std::uint64_t key = 0; key < 1000; ++key) {
        EXPECT_FALSE(policy.add(key).sketched);
    }
    EXPECT_EQ(policy.sketched_adds(), 0u);
}

TEST(CountingPolicyTest, SketchAddReportsFirstReliably) {
    // A pre-add estimate of zero is exact for count-min, so `first` on
    // the very first sketched key is trustworthy even above threshold.
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    const counted first = policy.sketch_add(99);
    EXPECT_TRUE(first.first);
    const counted second = policy.sketch_add(99);
    EXPECT_FALSE(second.first);
    EXPECT_GE(second.count, 2u);
}

TEST(CountingPolicyTest, ResetSemantics) {
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    (void)policy.add(1);
    (void)policy.add(1);
    EXPECT_EQ(policy.sketched_adds(), 2u);

    policy.clear_sketch();  // epoch rollover: counts reset, marker kept
    EXPECT_EQ(policy.count(1), 0u);
    EXPECT_EQ(policy.sketched_adds(), 2u);
    EXPECT_FALSE(policy.sketch_active());

    (void)policy.add(2);
    policy.reset_counts();  // window rollover: same, plus exact map
    EXPECT_EQ(policy.count(2), 0u);
    EXPECT_EQ(policy.sketched_adds(), 3u);

    (void)policy.add(3);
    policy.reset_all();  // recover: marker included
    EXPECT_EQ(policy.sketched_adds(), 0u);
    EXPECT_FALSE(policy.sketch_active());
    EXPECT_EQ(policy.count(3), 0u);
}

// ---------------------------------------------------------------------------
// Rotating halves: epoch rollover decays counts over two windows
// instead of cliffing to zero on clear_sketch().

TEST(CountingPolicyTest, RotationDecaysOverTwoWindowsInsteadOfCliffing) {
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    (void)policy.sketch_add(7, 5);
    EXPECT_EQ(policy.sketch_estimate(7), 5u);

    // One quiet rotation: the count moved to the previous half but is
    // still served (current 0 + previous 5).
    policy.rotate_sketch();
    EXPECT_EQ(policy.sketch_estimate(7), 5u);
    EXPECT_TRUE(policy.sketch_active());

    // A second quiet rotation fully forgets the key.
    policy.rotate_sketch();
    EXPECT_EQ(policy.sketch_estimate(7), 0u);
    EXPECT_TRUE(policy.sketch_active());  // lifetime marker survives

    // Adds land in the current half, so they outlive the next rotation.
    (void)policy.sketch_add(7, 2);
    policy.rotate_sketch();
    EXPECT_EQ(policy.sketch_estimate(7), 2u);
}

TEST(CountingPolicyTest, RotationDifferentialNeverUndercountsTheLastTwoWindows) {
    // Differential against exact per-window counts across four epochs:
    // at any point the estimate must cover everything added in the
    // current window plus everything from the window before — the
    // conservative (never-undercount) direction survives rotation.
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    std::unordered_map<std::uint64_t, std::uint64_t> previous_window;
    rng rand(77);
    for (int window = 0; window < 4; ++window) {
        std::unordered_map<std::uint64_t, std::uint64_t> this_window;
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t key = rand.uniform_int(0, 299);
            (void)policy.sketch_add(key);
            ++this_window[key];
        }
        for (const auto& [key, count] : this_window) {
            ASSERT_GE(policy.sketch_estimate(key), count + previous_window[key])
                << "window " << window << " key " << key;
        }
        policy.rotate_sketch();
        // After the rollover this window's adds are the previous half —
        // still fully covered.
        for (const auto& [key, count] : this_window) {
            ASSERT_GE(policy.sketch_estimate(key), count) << "window " << window;
        }
        previous_window = std::move(this_window);
    }
}

TEST(CountingPolicyTest, RotationKeepsFirstFlagReliable) {
    // `first` is "pre-add estimate was zero". A key from the previous
    // window is still visible (not first); a key quiet for two windows
    // has genuinely aged out and counts as new again.
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    EXPECT_TRUE(policy.sketch_add(1).first);
    policy.rotate_sketch();
    EXPECT_FALSE(policy.sketch_add(1).first);  // alive in the previous half
    EXPECT_TRUE(policy.sketch_add(2).first);   // genuinely new key
    policy.rotate_sketch();
    policy.rotate_sketch();
    EXPECT_TRUE(policy.sketch_add(1).first);  // two quiet windows: aged out
}

TEST(CountingPolicyTest, ClearSketchZeroesBothHalves) {
    sketch_config cfg;
    cfg.mode = counting_mode::always;
    counting_policy policy(cfg);
    (void)policy.sketch_add(5, 10);
    policy.rotate_sketch();
    (void)policy.sketch_add(5, 3);
    EXPECT_EQ(policy.sketch_estimate(5), 13u);

    policy.clear_sketch();  // hard reset must catch the previous half too
    EXPECT_EQ(policy.sketch_estimate(5), 0u);
    EXPECT_FALSE(policy.sketch_active());
    EXPECT_GT(policy.sketched_adds(), 0u);  // lifetime marker survives
}

// ---------------------------------------------------------------------------
// Differential harness: exact vs sketched preprocessor runs.

struct storm_fixture {
    topology topo;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    preprocessor make(preprocessor_config cfg = {}) const {
        return preprocessor(&topo, &registry, &syslog, cfg);
    }

    /// One storm alert keyed purely by location (SNMP "high cpu" needs
    /// no device reference, so cardinality is ours to choose).
    [[nodiscard]] static raw_alert storm_alert(int key, sim_time t) {
        raw_alert a;
        a.source = data_source::snmp;
        a.timestamp = t;
        a.kind = "high cpu";
        a.loc = location{"R", "B" + std::to_string(key)};
        return a;
    }
};

/// A seeded storm: `alerts` draws over `cardinality` distinct keys, hot
/// keys repeating (zipf-ish via two draws) the way real floods do.
std::vector<raw_alert> make_storm(std::uint64_t seed, int alerts, int cardinality) {
    rng rand(seed);
    std::vector<raw_alert> out;
    out.reserve(static_cast<std::size_t>(alerts));
    for (int i = 0; i < alerts; ++i) {
        int key = static_cast<int>(rand.uniform_int(0, cardinality - 1));
        if (rand.chance(0.5)) key = static_cast<int>(rand.uniform_int(0, 9));  // hot set
        out.push_back(storm_fixture::storm_alert(key, i * 50));
    }
    return out;
}

std::vector<preprocess_event> run_storm(preprocessor& pre, const std::vector<raw_alert>& storm) {
    std::vector<preprocess_event> events;
    for (const raw_alert& raw : storm) {
        for (auto& ev : pre.process(raw, raw.timestamp)) events.push_back(std::move(ev));
    }
    for (auto& ev : pre.flush(storm.back().timestamp + minutes(10))) {
        events.push_back(std::move(ev));
    }
    return events;
}

TEST(SketchDifferentialTest, BelowThresholdIsBitIdentical) {
    // Three seeded storms, each under the auto threshold: the sketched
    // preprocessor must emit the byte-identical event stream the exact
    // one does, and never touch the sketch.
    for (const std::uint64_t seed : {11ull, 17ull, 23ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const storm_fixture f;
        const std::vector<raw_alert> storm = make_storm(seed, 4000, 1500);

        preprocessor_config exact_cfg;
        exact_cfg.sketch.mode = counting_mode::off;
        preprocessor exact = f.make(exact_cfg);
        const auto exact_events = run_storm(exact, storm);

        preprocessor_config auto_cfg;  // defaults: auto, threshold 65536
        preprocessor sketched = f.make(auto_cfg);
        const auto sketched_events = run_storm(sketched, storm);

        ASSERT_EQ(exact_events.size(), sketched_events.size());
        for (std::size_t i = 0; i < exact_events.size(); ++i) {
            const auto& a = exact_events[i].alert;
            const auto& b = sketched_events[i].alert;
            ASSERT_EQ(exact_events[i].is_update, sketched_events[i].is_update) << "event " << i;
            ASSERT_EQ(a.type_name, b.type_name) << "event " << i;
            ASSERT_EQ(a.loc.to_string(), b.loc.to_string()) << "event " << i;
            ASSERT_EQ(a.count, b.count) << "event " << i;
            ASSERT_EQ(a.when.begin, b.when.begin) << "event " << i;
            ASSERT_EQ(a.when.end, b.when.end) << "event " << i;
        }
        EXPECT_EQ(exact.stats(), sketched.stats());
        EXPECT_EQ(sketched.sketched_counts(), 0u);
        EXPECT_FALSE(sketched.sketch_active());
    }
}

TEST(SketchDifferentialTest, AboveThresholdNeverUndercounts) {
    // Same storms forced fully into the sketched regime: every alert
    // still produces exactly one event, and each event's running count
    // is >= the exact run's — the one-sided error, observed end to end.
    for (const std::uint64_t seed : {11ull, 17ull, 23ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const storm_fixture f;
        const std::vector<raw_alert> storm = make_storm(seed, 4000, 1500);

        preprocessor_config exact_cfg;
        exact_cfg.sketch.mode = counting_mode::off;
        preprocessor exact = f.make(exact_cfg);
        const auto exact_events = run_storm(exact, storm);

        preprocessor_config sketch_cfg;
        sketch_cfg.sketch.mode = counting_mode::always;
        preprocessor sketched = f.make(sketch_cfg);
        const auto sketched_events = run_storm(sketched, storm);

        ASSERT_EQ(exact_events.size(), sketched_events.size());
        for (std::size_t i = 0; i < exact_events.size(); ++i) {
            const auto& a = exact_events[i].alert;
            const auto& b = sketched_events[i].alert;
            // The alert identity is input-driven, so the survivor stream
            // lines up 1:1; only the count may (one-sidedly) differ.
            ASSERT_EQ(a.type_name, b.type_name) << "event " << i;
            ASSERT_EQ(a.loc.to_string(), b.loc.to_string()) << "event " << i;
            ASSERT_GE(b.count, a.count) << "event " << i;
        }
        EXPECT_GT(sketched.sketched_counts(), 0u);
        EXPECT_TRUE(sketched.sketch_active());
        // Bounded memory is the point: no consolidation entries accrue.
        EXPECT_EQ(sketched.pending_count(), 0u);
    }
}

TEST(SketchDifferentialTest, RecoveryResetsSketchState) {
    const storm_fixture f;
    preprocessor_config cfg;
    cfg.sketch.mode = counting_mode::always;
    preprocessor pre = f.make(cfg);
    const std::vector<raw_alert> storm = make_storm(29, 500, 200);
    (void)run_storm(pre, storm);
    ASSERT_GT(pre.sketched_counts(), 0u);

    // Reset-on-recover: sketch state is not persisted, so a restored
    // preprocessor restarts in the exact regime with a clean marker.
    preprocessor::persist_state state = pre.export_state();
    pre.import_state(std::move(state));
    EXPECT_EQ(pre.sketched_counts(), 0u);
    EXPECT_FALSE(pre.sketch_active());
}

// ---------------------------------------------------------------------------
// Engine surface: the degraded.sketched marker.

TEST(SketchEngineTest, DegradedSketchedSurfacesInMetrics) {
    const storm_fixture f;
    customer_registry customers;
    const skynet_engine::deps deps{&f.topo, &customers, &f.registry, &f.syslog};
    skynet_config cfg;
    cfg.pre.sketch.mode = counting_mode::always;
    skynet_engine eng(deps, cfg);
    for (const raw_alert& raw : make_storm(31, 300, 100)) eng.ingest(raw, raw.timestamp);
    EXPECT_GT(eng.metrics().degraded.sketched, 0u);
    EXPECT_NE(eng.metrics().to_json().find("\"sketched\":"), std::string::npos);
    EXPECT_NE(eng.metrics().render().find("sketched"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Overload guard on the counting policy.

raw_alert guard_alert(int key, sim_time t) {
    raw_alert a = storm_fixture::storm_alert(key, t);
    return a;
}

TEST(SketchControllerTest, BelowThresholdMatchesExactGuard) {
    // Same flood through a sketch-off guard and an auto guard under the
    // threshold: every admission counter must agree.
    overload::controller_config exact_cfg;
    exact_cfg.admission.max_alerts = 50;
    overload::controller_config auto_cfg = exact_cfg;
    auto_cfg.sketch.mode = counting_mode::auto_switch;
    exact_cfg.sketch.mode = counting_mode::off;

    overload::controller exact(exact_cfg, nullptr, nullptr);
    overload::controller sketched(auto_cfg, nullptr, nullptr);
    for (int round = 0; round < 3; ++round) {
        std::vector<raw_alert> batch;
        for (int i = 0; i < 200; ++i) batch.push_back(guard_alert(i % 40, round * 100));
        auto batch2 = batch;
        const auto kept_a = exact.admit(std::move(batch), round * 100);
        const auto kept_b = sketched.admit(std::move(batch2), round * 100);
        ASSERT_EQ(kept_a.size(), kept_b.size());
        exact.on_tick((round + 1) * 100);
        sketched.on_tick((round + 1) * 100);
    }
    EXPECT_EQ(exact.metrics().admitted, sketched.metrics().admitted);
    EXPECT_EQ(exact.metrics().shed_duplicate, sketched.metrics().shed_duplicate);
    EXPECT_EQ(exact.metrics().shed_other, sketched.metrics().shed_other);
    EXPECT_EQ(sketched.sketched_decisions(), 0u);
}

TEST(SketchControllerTest, SketchedDedupStillShedsDuplicates) {
    overload::controller_config cfg;
    cfg.admission.max_alerts = 10;
    cfg.sketch.mode = counting_mode::always;
    overload::controller guard(cfg, nullptr, nullptr);

    std::vector<raw_alert> batch;
    for (int i = 0; i < 100; ++i) batch.push_back(guard_alert(i % 5, 0));  // 95 duplicates
    const auto kept = guard.admit(std::move(batch), 0);
    EXPECT_EQ(kept.size(), 10u);
    EXPECT_GT(guard.metrics().shed_duplicate, 0u);
    EXPECT_GT(guard.sketched_decisions(), 0u);
}

TEST(SketchControllerTest, PerSourceUsageIsTracked) {
    overload::controller_config cfg;
    cfg.admission.max_alerts = 1000;  // roomy: nothing shed
    overload::controller guard(cfg, nullptr, nullptr);

    std::vector<raw_alert> batch;
    for (int i = 0; i < 25; ++i) batch.push_back(guard_alert(i, 0));
    const auto kept = guard.admit(std::move(batch), 0);
    ASSERT_EQ(kept.size(), 25u);
    EXPECT_EQ(guard.source_window_alerts(data_source::snmp), 25u);
    EXPECT_GT(guard.source_window_bytes(data_source::snmp), 25u * 64u);
    EXPECT_EQ(guard.source_window_alerts(data_source::ping), 0u);

    guard.on_tick(100);  // window rollover clears the tallies
    EXPECT_EQ(guard.source_window_alerts(data_source::snmp), 0u);
}

TEST(SketchControllerTest, ImportStateResetsSketch) {
    overload::controller_config cfg;
    cfg.admission.max_alerts = 10;
    cfg.sketch.mode = counting_mode::always;
    overload::controller guard(cfg, nullptr, nullptr);
    std::vector<raw_alert> batch;
    for (int i = 0; i < 50; ++i) batch.push_back(guard_alert(i % 5, 0));
    (void)guard.admit(std::move(batch), 0);
    ASSERT_GT(guard.sketched_decisions(), 0u);

    const overload::controller::persist_state state = guard.export_state();
    guard.import_state(state);
    EXPECT_EQ(guard.sketched_decisions(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency (tsan label): concurrent updates and the stealing drill.

TEST(SketchConcurrencyTest, ConcurrentAddsNeverUndercount) {
    // 8 writers hammer overlapping keys through add_concurrent; after
    // the barrier every estimate must cover the true total.
    constexpr int kThreads = 8;
    constexpr int kAddsPerThread = 20000;
    constexpr std::uint64_t kKeys = 257;
    count_min_sketch cm(2048, 4);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cm, t] {
            for (int i = 0; i < kAddsPerThread; ++i) {
                cm.add_concurrent((static_cast<std::uint64_t>(t) * 131 + i) % kKeys);
            }
        });
    }
    for (std::thread& w : workers) w.join();

    std::vector<std::uint64_t> truth(kKeys, 0);
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kAddsPerThread; ++i) {
            ++truth[(static_cast<std::uint64_t>(t) * 131 + i) % kKeys];
        }
    }
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        ASSERT_GE(cm.estimate(key), truth[key]) << "key " << key;
    }
}

TEST(SketchConcurrencyTest, EstimateRacesSingleWriterCleanly) {
    // The documented contract: one conservative writer, any number of
    // readers. Run under tsan this validates the relaxed-atomic cells.
    count_min_sketch cm(1024, 4);
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    readers.reserve(7);
    for (int t = 0; t < 7; ++t) {
        readers.emplace_back([&] {
            std::uint64_t sink = 0;
            while (!stop.load(std::memory_order_acquire)) {
                for (std::uint64_t key = 0; key < 64; ++key) sink += cm.estimate(key);
            }
            (void)sink;
        });
    }
    for (int i = 0; i < 50000; ++i) (void)cm.add(static_cast<std::uint64_t>(i) % 64);
    stop.store(true, std::memory_order_release);
    for (std::thread& r : readers) r.join();
    for (std::uint64_t key = 0; key < 64; ++key) {
        EXPECT_GE(cm.estimate(key), 50000u / 64);
    }
}

struct engine_world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    engine_world() {
        generator_params p = generator_params::small();
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 300, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() { return {&topo, &customers, &registry, &syslog}; }
};

template <typename Engine>
void drive_episode(engine_world& w, Engine& eng, std::uint64_t seed) {
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    rng srand(84);
    sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(5));
    sim.run_until_batched(
        minutes(7), [&](std::span<const traced_alert> batch) { eng.ingest_batch(batch); },
        [&](sim_time now) { eng.tick(now, sim.state()); });
    eng.finish(sim.clock().now(), sim.state());
}

TEST(SketchConcurrencyTest, StealParityHoldsWithSketchAlways) {
    // The sketch is touched only on the apply side (prepare() stays
    // const), so work stealing — which moves *where* a batch is prepared,
    // never the order effects apply in — cannot change a sketched count.
    // Same episode, sketch forced on, steal on vs off: byte-identical
    // reports and identical merged degraded.sketched at the barrier.
    engine_world w;
    std::vector<std::vector<incident_report>> reports;
    std::vector<std::uint64_t> sketched;
    for (const bool steal : {true, false}) {
        SCOPED_TRACE(steal ? "steal on" : "steal off");
        sharded_config scfg;
        scfg.shards = 4;
        scfg.steal = steal;
        scfg.max_ingest_batch = 1;  // many small stealable jobs
        scfg.engine.pre.sketch.mode = counting_mode::always;
        sharded_engine par(w.deps(), scfg);
        drive_episode(w, par, 85);
        engine_metrics m = par.metrics();
        EXPECT_GT(m.degraded.sketched, 0u);
        sketched.push_back(m.degraded.sketched);
        reports.push_back(par.take_reports());
    }
    EXPECT_EQ(sketched[0], sketched[1]);
    ASSERT_EQ(reports[0].size(), reports[1].size());
    for (std::size_t i = 0; i < reports[0].size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        EXPECT_EQ(reports[0][i].inc.id, reports[1][i].inc.id);
        EXPECT_EQ(reports[0][i].severity.score, reports[1][i].severity.score);
        EXPECT_EQ(reports[0][i].render(), reports[1][i].render());
    }
}

}  // namespace
}  // namespace skynet
