// Cross-module property tests: algebraic laws that must hold for any
// input, checked over randomized samples (seed-parameterized).
#include <gtest/gtest.h>

#include "skynet/core/evaluator.h"
#include "skynet/core/preprocessor.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

class Properties : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, Properties, ::testing::Values(1u, 7u, 42u, 1337u));

location random_location(rng& rand) {
    std::vector<std::string> segments;
    const int depth = static_cast<int>(rand.uniform_int(0, 6));
    for (int i = 0; i < depth; ++i) {
        segments.push_back("s" + std::to_string(rand.uniform_int(0, 3)));
    }
    return location(std::move(segments));
}

TEST_P(Properties, LocationLaws) {
    rng rand(GetParam());
    for (int i = 0; i < 500; ++i) {
        const location a = random_location(rand);
        const location b = random_location(rand);

        // Reflexivity and parent containment.
        EXPECT_TRUE(a.contains(a));
        EXPECT_TRUE(a.parent().contains(a));
        EXPECT_FALSE(a.is_ancestor_of(a));

        // common_ancestor: symmetric, contains both operands.
        const location c = location::common_ancestor(a, b);
        EXPECT_EQ(c, location::common_ancestor(b, a));
        EXPECT_TRUE(c.contains(a));
        EXPECT_TRUE(c.contains(b));

        // ancestor_at is idempotent and level-consistent.
        const location site = a.ancestor_at(hierarchy_level::site);
        EXPECT_EQ(site.ancestor_at(hierarchy_level::site), site);
        EXPECT_LE(site.depth(), depth_of(hierarchy_level::site));

        // Round trip through text.
        if (!a.is_root()) EXPECT_EQ(location::parse(a.to_string()), a);

        // Hash consistency with equality.
        if (a == b) EXPECT_EQ(location_hash{}(a), location_hash{}(b));
    }
}

TEST_P(Properties, TimeRangeLaws) {
    rng rand(GetParam());
    for (int i = 0; i < 500; ++i) {
        const sim_time x = rand.uniform_int(0, 10000);
        const sim_time y = rand.uniform_int(0, 10000);
        time_range r{std::min(x, y), std::max(x, y)};
        const sim_time z = rand.uniform_int(0, 10000);
        r.extend(z);
        EXPECT_TRUE(r.contains(z));
        EXPECT_TRUE(r.contains(std::min(x, y)));
        EXPECT_TRUE(r.contains(std::max(x, y)));
        EXPECT_GE(r.length(), 0);
        EXPECT_TRUE(r.overlaps(r));

        const time_range other{z, z + 100};
        EXPECT_EQ(r.overlaps(other), other.overlaps(r));
    }
}

TEST_P(Properties, TopologyGraphLaws) {
    generator_params params = generator_params::tiny();
    params.seed = GetParam();
    const topology topo = generate_topology(params);
    rng rand(GetParam() + 1);

    for (int i = 0; i < 30; ++i) {
        const device_id a = static_cast<device_id>(rand.index(topo.devices().size()));
        const device_id b = static_cast<device_id>(rand.index(topo.devices().size()));
        // Hop distance is symmetric, zero iff same device.
        const auto d_ab = topo.hop_distance(a, b);
        const auto d_ba = topo.hop_distance(b, a);
        EXPECT_EQ(d_ab, d_ba);
        if (a == b) EXPECT_EQ(d_ab, 0);
        // Adjacency is symmetric and implies distance 1.
        EXPECT_EQ(topo.adjacent(a, b), topo.adjacent(b, a));
        if (a != b && topo.adjacent(a, b)) EXPECT_EQ(d_ab, 1);
    }

    // connected_components partitions its input: disjoint, complete.
    std::vector<device_id> members;
    for (int i = 0; i < 12; ++i) {
        members.push_back(static_cast<device_id>(rand.index(topo.devices().size())));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    const auto groups = topo.connected_components(members);
    std::vector<device_id> covered;
    for (const auto& group : groups) {
        for (device_id d : group) covered.push_back(d);
    }
    std::sort(covered.begin(), covered.end());
    EXPECT_EQ(covered, members);
}

TEST_P(Properties, CongestionLossMonotoneInLoad) {
    generator_params params = generator_params::tiny();
    params.seed = GetParam();
    const topology topo = generate_topology(params);
    customer_registry customers;
    network_state state(&topo, &customers);

    const circuit_set& cs = topo.circuit_sets().front();
    const double cap = state.live_capacity_gbps(cs.id);
    double last = -1.0;
    for (double frac = 0.0; frac <= 3.0; frac += 0.1) {
        state.set_offered_gbps(cs.id, cap * frac);
        const double loss = state.congestion_loss(cs.id);
        EXPECT_GE(loss, last - 1e-12) << "loss not monotone at " << frac;
        EXPECT_GE(loss, 0.0);
        EXPECT_LE(loss, 0.99);
        last = loss;
    }
}

TEST_P(Properties, BreakRatioBounds) {
    generator_params params = generator_params::tiny();
    params.seed = GetParam();
    const topology topo = generate_topology(params);
    customer_registry customers;
    network_state state(&topo, &customers);
    rng rand(GetParam() + 2);

    for (const link& l : topo.links()) {
        if (rand.chance(0.3)) state.link_state(l.id).up = false;
    }
    for (const circuit_set& cs : topo.circuit_sets()) {
        const double d = state.break_ratio(cs.id);
        EXPECT_GE(d, 0.0);
        EXPECT_LE(d, 1.0);
    }
}

TEST_P(Properties, SeverityMonotoneInBreakRatio) {
    generator_params params = generator_params::tiny();
    params.seed = GetParam();
    const topology topo = generate_topology(params);
    rng crand(GetParam() + 3);
    const customer_registry customers = customer_registry::generate(topo, 100, crand);
    network_state state(&topo, &customers);
    evaluator eval(&topo, &customers, evaluator_config{.score_cap = 1e12});

    incident inc;
    inc.root = location{};  // whole network: every set is related
    inc.when = time_range{0, minutes(10)};
    structured_alert a;
    a.category = alert_category::failure;
    a.metric = 0.2;
    a.loc = inc.root;
    inc.alerts.push_back(a);

    // Break circuits one by one: the impact factor never decreases.
    double last_impact = 0.0;
    int step = 0;
    for (const link& l : topo.links()) {
        state.link_state(l.id).up = false;
        if (++step % 10 != 0) continue;
        const severity_breakdown s = eval.evaluate(inc, state, minutes(10));
        EXPECT_GE(s.impact_factor, last_impact - 1e-9);
        last_impact = s.impact_factor;
    }
}

TEST_P(Properties, PreprocessorConservesOccurrences) {
    // Dedup never loses occurrences: the consolidated counts sum to the
    // number of classifiable raw alerts routed through emit().
    generator_params params = generator_params::tiny();
    params.seed = GetParam();
    const topology topo = generate_topology(params);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    preprocessor pre(&topo, &registry, &syslog, {});
    rng rand(GetParam() + 4);

    int fed = 0;
    int last_count = 0;
    const device& d = topo.devices().front();
    for (int i = 0; i < 200; ++i) {
        raw_alert a;
        a.source = data_source::snmp;
        a.kind = "high cpu";
        a.timestamp = seconds(i);
        a.loc = d.loc;
        a.device = d.id;
        ++fed;
        for (const preprocess_event& ev : pre.process(a, a.timestamp)) {
            last_count = ev.alert.count;
        }
    }
    // Everything within one dedup window: one open alert carrying all
    // occurrences.
    EXPECT_EQ(last_count, fed);
}

}  // namespace
}  // namespace skynet
