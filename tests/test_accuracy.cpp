// Tests for ground-truth scoring (incident_matches / score_incidents).
#include <gtest/gtest.h>

#include "skynet/core/accuracy.h"

namespace skynet {
namespace {

scenario_record record(location scope, time_range active, bool benign = false,
                       bool must_detect = true) {
    return scenario_record{.name = "r",
                           .cause = root_cause::link_error,
                           .scope = scope,
                           .scopes = {scope},
                           .active = active,
                           .severe = true,
                           .benign = benign,
                           .must_detect = must_detect,
                           .culprit = std::nullopt};
}

incident make_incident(location root, time_range when) {
    incident inc;
    inc.root = std::move(root);
    inc.when = when;
    return inc;
}

const location site{"R", "C", "LS", "S"};

TEST(MatchTest, ContainmentEitherWay) {
    const scenario_record r = record(site, {0, minutes(5)});
    EXPECT_TRUE(incident_matches(make_incident(site, {0, minutes(5)}), r));
    EXPECT_TRUE(incident_matches(make_incident(site.parent(), {0, minutes(5)}), r));
    EXPECT_TRUE(incident_matches(make_incident(site.child("CL"), {0, minutes(5)}), r));
    EXPECT_FALSE(
        incident_matches(make_incident(location{"R", "C", "LS", "S2"}, {0, minutes(5)}), r));
}

TEST(MatchTest, TimeWindowWithSlack) {
    const scenario_record r = record(site, {minutes(10), minutes(15)});
    EXPECT_TRUE(incident_matches(make_incident(site, {minutes(16), minutes(30)}), r));
    // Beyond the slack: no match.
    EXPECT_FALSE(
        incident_matches(make_incident(site, {minutes(40), minutes(50)}), r, minutes(5)));
    EXPECT_FALSE(incident_matches(make_incident(site, {hours(2), hours(3)}), r));
}

TEST(MatchTest, AnyScopeOfMultiSiteFailure) {
    scenario_record r = record(site, {0, minutes(5)});
    const location other{"R2", "C2", "LS2"};
    r.scopes.push_back(other);
    EXPECT_TRUE(incident_matches(make_incident(other.child("S"), {0, minutes(2)}), r));
}

TEST(ScoreTest, CoverageAndFalsePositives) {
    const std::vector<scenario_record> truth{
        record(site, {0, minutes(5)}),
        record(location{"R2", "C", "LS", "S"}, {0, minutes(5)}),
    };
    const std::vector<incident> incidents{
        make_incident(site, {0, minutes(4)}),                       // covers truth[0]
        make_incident(location{"Z", "Z"}, {0, minutes(4)}),         // matches nothing: FP
    };
    const accuracy_counts c = score_incidents(incidents, truth);
    EXPECT_EQ(c.true_positives, 1);
    EXPECT_EQ(c.false_negatives, 1);  // truth[1] uncovered
    EXPECT_EQ(c.false_positives, 1);
    EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.5);
    EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.5);
}

TEST(ScoreTest, BenignRecordsNeitherFnNorLegitimizeFp) {
    // An incident matching only a benign record is a false positive; a
    // missed benign record is not a false negative.
    const std::vector<scenario_record> truth{record(site, {0, minutes(5)}, /*benign=*/true)};
    {
        const std::vector<incident> incidents{make_incident(site, {0, minutes(4)})};
        const accuracy_counts c = score_incidents(incidents, truth);
        EXPECT_EQ(c.false_positives, 1);
        EXPECT_EQ(c.false_negatives, 0);
    }
    {
        const accuracy_counts c = score_incidents({}, truth);
        EXPECT_EQ(c.false_negatives, 0);
    }
}

TEST(ScoreTest, OptionalRecordsAreNotFnAndNotFp) {
    // must_detect=false (redundancy-absorbed tickets): missing them is
    // fine, and detecting them is not an FP either.
    const std::vector<scenario_record> truth{
        record(site, {0, minutes(5)}, /*benign=*/false, /*must_detect=*/false)};
    {
        const accuracy_counts c = score_incidents({}, truth);
        EXPECT_EQ(c.false_negatives, 0);
    }
    {
        const std::vector<incident> incidents{make_incident(site, {0, minutes(4)})};
        const accuracy_counts c = score_incidents(incidents, truth);
        EXPECT_EQ(c.false_positives, 0);
    }
}

TEST(ScoreTest, RatesWithEmptyDenominators) {
    const accuracy_counts none{};
    EXPECT_DOUBLE_EQ(none.false_positive_rate(), 0.0);
    EXPECT_DOUBLE_EQ(none.false_negative_rate(), 0.0);
}

TEST(ScoreTest, AccumulateOperator) {
    accuracy_counts a{.true_positives = 1, .false_positives = 2, .false_negatives = 3};
    const accuracy_counts b{.true_positives = 4, .false_positives = 5, .false_negatives = 6};
    a += b;
    EXPECT_EQ(a.true_positives, 5);
    EXPECT_EQ(a.false_positives, 7);
    EXPECT_EQ(a.false_negatives, 9);
}

}  // namespace
}  // namespace skynet
