// Tests for the failure scenario library: every scenario perturbs the
// state on start and restores it on end; class-specific effects hold.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>

#include "skynet/sim/scenario.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo = generate_topology(generator_params::small());
    customer_registry customers;
    rng rand{11};

    world() {
        rng crand(12);
        customers = customer_registry::generate(topo, 200, crand);
    }
};

/// Health snapshot equality over the whole network.
bool all_healthy(const network_state& state, const topology& topo) {
    for (const device& d : topo.devices()) {
        const device_health& h = state.device_state(d.id);
        const device_health fresh{};
        if (h.alive != fresh.alive || h.hardware_fault || h.software_fault ||
            h.silent_loss != 0.0 || !h.control_plane_ok || h.bgp_flapping || h.isolated) {
            return false;
        }
    }
    for (const link& l : topo.links()) {
        const link_health& h = state.link_state(l.id);
        if (!h.up || h.corruption_loss != 0.0 || h.flapping) return false;
    }
    return state.route_incidents().empty();
}

/// Full observable-state fingerprint (health + traffic + flows + route
/// incidents; the append-only modification log is excluded by design).
std::string fingerprint(const network_state& state, const topology& topo,
                        const customer_registry& customers) {
    std::string out;
    char buf[64];
    for (const device& d : topo.devices()) {
        const device_health& h = state.device_state(d.id);
        std::snprintf(buf, sizeof buf, "%d%d%d%d%d%d%.4f;", h.alive, h.control_plane_ok,
                      h.hardware_fault, h.software_fault, h.bgp_flapping, h.isolated,
                      h.silent_loss);
        out += buf;
    }
    for (const link& l : topo.links()) {
        const link_health& h = state.link_state(l.id);
        std::snprintf(buf, sizeof buf, "%d%.4f;", h.up, h.corruption_loss);
        out += buf;
    }
    for (const circuit_set& cs : topo.circuit_sets()) {
        std::snprintf(buf, sizeof buf, "%.3f;", state.offered_gbps(cs.id));
        out += buf;
    }
    for (const sla_flow& f : customers.sla_flows()) {
        std::snprintf(buf, sizeof buf, "%.3f;", state.flow_rate_gbps(f.id));
        out += buf;
    }
    out += std::to_string(state.route_incidents().size());
    return out;
}

TEST(RootCauseTest, SharesSumToOne) {
    double total = 0.0;
    for (root_cause c :
         {root_cause::device_hardware, root_cause::link_error, root_cause::modification_error,
          root_cause::device_software, root_cause::infrastructure, root_cause::route_error,
          root_cause::security, root_cause::configuration}) {
        total += root_cause_share(c);
    }
    // The paper's Figure 1 percentages sum to 102.1 % (rounding in the
    // published chart); sampling normalizes them.
    EXPECT_NEAR(total, 1.0, 0.03);
}

TEST(RootCauseTest, SamplingMatchesFigure1) {
    rng rand(42);
    std::array<int, root_cause_count> counts{};
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        counts[static_cast<std::size_t>(sample_root_cause(rand))]++;
    }
    EXPECT_NEAR(counts[static_cast<std::size_t>(root_cause::device_hardware)] / double(n), 0.426,
                0.02);
    EXPECT_NEAR(counts[static_cast<std::size_t>(root_cause::link_error)] / double(n), 0.185, 0.02);
    EXPECT_NEAR(counts[static_cast<std::size_t>(root_cause::route_error)] / double(n), 0.019,
                0.01);
}

class ScenarioRoundTrip : public ::testing::TestWithParam<root_cause> {};

TEST_P(ScenarioRoundTrip, StartPerturbsEndRestores) {
    for (const bool severe : {false, true}) {
        world w;
        network_state state(&w.topo, &w.customers);
        auto s = make_scenario(GetParam(), w.topo, w.rand, severe);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->cause(), GetParam());
        EXPECT_FALSE(s->scope().is_root());

        const std::string before = fingerprint(state, w.topo, w.customers);
        s->on_start(state, w.rand, 0);
        // Progress far enough for delayed effects (hardware report etc.).
        for (int t = 1; t <= 10; ++t) {
            s->on_tick(state, w.rand, minutes(t));
        }
        EXPECT_NE(fingerprint(state, w.topo, w.customers), before)
            << "scenario " << s->name() << " had no observable effect";
        s->on_end(state, w.rand, minutes(11));
        EXPECT_EQ(fingerprint(state, w.topo, w.customers), before)
            << "scenario " << s->name() << " did not restore state";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCauses, ScenarioRoundTrip,
    ::testing::Values(root_cause::device_hardware, root_cause::link_error,
                      root_cause::modification_error, root_cause::device_software,
                      root_cause::infrastructure, root_cause::route_error, root_cause::security,
                      root_cause::configuration),
    [](const ::testing::TestParamInfo<root_cause>& info) {
        std::string name(to_string(info.param));
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return name;
    });

TEST(ScenarioTest, HardwareFailureReportsLate) {
    // §7.3: behavioural symptoms precede the hardware-error syslog by
    // minutes.
    world w;
    network_state state(&w.topo, &w.customers);
    auto s = make_device_hardware_failure(w.topo, w.rand, false);
    const device_id victim = s->culprit().value();
    s->on_start(state, w.rand, 0);
    EXPECT_GT(state.device_state(victim).silent_loss, 0.0);
    EXPECT_TRUE(state.device_state(victim).bgp_flapping);
    EXPECT_FALSE(state.device_state(victim).hardware_fault);  // not yet noticed

    s->on_tick(state, w.rand, minutes(1));
    EXPECT_FALSE(state.device_state(victim).hardware_fault);
    s->on_tick(state, w.rand, minutes(6));
    EXPECT_TRUE(state.device_state(victim).hardware_fault);  // report delay <= 5 min
    s->on_end(state, w.rand, minutes(7));
}

TEST(ScenarioTest, InternetEntryCutBreaksEntriesAndCongests) {
    world w;
    network_state state(&w.topo, &w.customers);
    // Find a logic site with ISRs.
    location ls;
    for (const device& d : w.topo.devices()) {
        if (d.role == device_role::isr) {
            ls = d.loc.ancestor_at(hierarchy_level::logic_site);
            break;
        }
    }
    ASSERT_FALSE(ls.is_root());
    auto s = make_internet_entry_cut(w.topo, ls, 0.5);
    EXPECT_TRUE(s->severe());
    EXPECT_EQ(s->scope(), ls);
    s->on_start(state, w.rand, 0);
    state.apply_traffic_shift();

    int broken = 0;
    double max_util = 0.0;
    for (const link& l : w.topo.links()) {
        if (!l.internet_entry) continue;
        const device& isr = w.topo.device_at(l.a).role == device_role::isr
                                ? w.topo.device_at(l.a)
                                : w.topo.device_at(l.b);
        if (!ls.contains(isr.loc)) continue;
        if (!state.link_state(l.id).up) ++broken;
        max_util = std::max(max_util, state.utilization(l.cset));
    }
    EXPECT_GT(broken, 0);
    // Survivors run hot: half the capacity, 1.5x the load.
    EXPECT_GT(max_util, network_state::congestion_knee);
    s->on_end(state, w.rand, minutes(10));
    EXPECT_TRUE(all_healthy(state, w.topo));
}

TEST(ScenarioTest, DdosTargetsRequestedSiteCount) {
    world w;
    network_state state(&w.topo, &w.customers);
    auto s = make_security_ddos(w.topo, w.rand, 3);
    EXPECT_TRUE(s->severe());
    s->on_start(state, w.rand, 0);
    // At least one internet entry set is overloaded.
    double max_util = 0.0;
    for (const circuit_set& cs : w.topo.circuit_sets()) {
        const bool internet = w.topo.device_at(cs.a).role == device_role::isp ||
                              w.topo.device_at(cs.b).role == device_role::isp;
        if (internet) max_util = std::max(max_util, state.utilization(cs.id));
    }
    EXPECT_GT(max_util, 1.0);
    s->on_end(state, w.rand, minutes(5));
}

TEST(ScenarioTest, ModificationErrorRecordsEvents) {
    world w;
    network_state state(&w.topo, &w.customers);
    auto s = make_modification_error(w.topo, w.rand, true);
    s->on_start(state, w.rand, 1000);
    ASSERT_EQ(state.modifications().size(), 1u);
    EXPECT_TRUE(state.modifications()[0].failed);
    s->on_end(state, w.rand, 2000);
    ASSERT_EQ(state.modifications().size(), 2u);
    EXPECT_TRUE(state.modifications()[1].rolled_back);
}

TEST(ScenarioTest, MinorRouteErrorStaysInControlPlaneDomain) {
    world w;
    network_state state(&w.topo, &w.customers);
    auto s = make_route_error(w.topo, w.rand, false);
    s->on_start(state, w.rand, 0);
    // Control-plane records for route monitoring (leak/aggregate + churn).
    ASSERT_GE(state.route_incidents().size(), 2u);
    // No structural damage: links stay up, no device dies — the detour
    // footprint is only a faint border-leak on the DCBRs.
    for (const link& l : w.topo.links()) {
        EXPECT_TRUE(state.link_state(l.id).up);
    }
    for (const device& d : w.topo.devices()) {
        EXPECT_TRUE(state.device_state(d.id).alive);
        if (d.role != device_role::dcbr) {
            EXPECT_EQ(state.device_state(d.id).silent_loss, 0.0) << d.name;
        } else {
            EXPECT_LE(state.device_state(d.id).silent_loss, 0.05) << d.name;
        }
    }
    s->on_end(state, w.rand, minutes(5));
    EXPECT_TRUE(state.route_incidents().empty());
}

TEST(ScenarioTest, InfrastructureSevereTakesOutSite) {
    world w;
    network_state state(&w.topo, &w.customers);
    auto s = make_infrastructure_failure(w.topo, w.rand, true);
    EXPECT_EQ(s->scope().level(), hierarchy_level::site);
    s->on_start(state, w.rand, 0);
    int dead = 0;
    for (device_id d : w.topo.devices_under(s->scope())) {
        if (!state.device_state(d).alive) ++dead;
    }
    EXPECT_GT(dead, 3);  // most of the site is dark
    s->on_end(state, w.rand, minutes(5));
}

TEST(ScenarioTest, RandomScenarioAlwaysConstructible) {
    world w;
    for (int i = 0; i < 50; ++i) {
        auto s = make_random_scenario(w.topo, w.rand, i % 2 == 0);
        ASSERT_NE(s, nullptr);
        network_state state(&w.topo, &w.customers);
        s->on_start(state, w.rand, 0);
        s->on_end(state, w.rand, minutes(1));
    }
}

}  // namespace
}  // namespace skynet
