// Parameterized configuration sweeps: the pipeline's tunables must
// behave sanely across their whole ranges, not just at the paper
// defaults.
#include <gtest/gtest.h>

#include "skynet/core/evaluator.h"
#include "skynet/core/locator.h"
#include "skynet/core/preprocessor.h"
#include "skynet/syslog/classifier.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

// --- preprocessor dedup-window sweep -----------------------------------------

class DedupWindowSweep : public ::testing::TestWithParam<sim_duration> {};
INSTANTIATE_TEST_SUITE_P(Windows, DedupWindowSweep,
                         ::testing::Values(seconds(30), minutes(1), minutes(5), minutes(15)));

TEST_P(DedupWindowSweep, SlidingInactivityWindowSemantics) {
    // The consolidation window slides on activity: continuous repetition
    // keeps ONE open alert alive indefinitely; a quiet gap longer than
    // the window starts a fresh alert.
    const topology topo = generate_topology(generator_params::tiny());
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    preprocessor_config cfg;
    cfg.dedup_window = GetParam();
    preprocessor pre(&topo, &registry, &syslog, cfg);

    const device& d = topo.devices().front();
    auto feed = [&](sim_time t) {
        raw_alert a;
        a.source = data_source::snmp;
        a.kind = "high cpu";
        a.timestamp = t;
        a.loc = d.loc;
        a.device = d.id;
        int fresh = 0;
        for (const preprocess_event& ev : pre.process(a, t)) {
            if (!ev.is_update) ++fresh;
        }
        (void)pre.flush(t);
        return fresh;
    };

    // Continuous repetition well past the window: exactly one fresh alert.
    int emitted_new = 0;
    sim_time t = 0;
    for (; t < 3 * GetParam(); t += seconds(10)) emitted_new += feed(t);
    EXPECT_EQ(emitted_new, 1);

    // Three bursts separated by gaps longer than the window: one fresh
    // alert each.
    emitted_new = 0;
    for (int burst = 0; burst < 3; ++burst) {
        t += GetParam() + seconds(10);
        emitted_new += feed(t);
        emitted_new += feed(t + seconds(2));  // in-window repeat: an update
    }
    EXPECT_EQ(emitted_new, 3);
}

// --- persistence-threshold sweep -------------------------------------------------

class PersistenceSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Thresholds, PersistenceSweep, ::testing::Values(1, 2, 3, 5));

TEST_P(PersistenceSweep, ProbeLossReleasedAtExactlyNObservations) {
    const topology topo = generate_topology(generator_params::tiny());
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    preprocessor_config cfg;
    cfg.persistence_threshold = GetParam();
    cfg.persistence_window = minutes(2);
    preprocessor pre(&topo, &registry, &syslog, cfg);

    raw_alert a;
    a.source = data_source::ping;
    a.kind = "packet loss";
    a.metric = 0.1;
    a.loc = location{"R", "C", "LS", "S", "CL"};

    int released_at = -1;
    for (int observation = 1; observation <= 8; ++observation) {
        a.timestamp = seconds(observation * 2);
        const auto out = pre.process(a, a.timestamp);
        if (!out.empty() && released_at < 0) released_at = observation;
    }
    EXPECT_EQ(released_at, GetParam());
}

// --- locator timeout sweep --------------------------------------------------------

class NodeTimeoutSweep : public ::testing::TestWithParam<sim_duration> {};
INSTANTIATE_TEST_SUITE_P(Timeouts, NodeTimeoutSweep,
                         ::testing::Values(minutes(1), minutes(5), minutes(10)));

TEST_P(NodeTimeoutSweep, AlertsPairOnlyWithinTheTimeout) {
    const topology topo = generate_topology(generator_params::tiny());
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    locator_config cfg;
    cfg.node_timeout = GetParam();
    locator loc(&topo, cfg);

    const device& d = topo.devices().front();
    auto alert = [&](const char* type, data_source src, sim_time t) {
        structured_alert a;
        a.type = *registry.find(src, type);
        a.type_name = type;
        a.source = src;
        a.category = registry.at(a.type).category;
        a.when = time_range{t, t};
        a.loc = d.loc;
        a.device = d.id;
        a.metric = 0.1;
        return a;
    };

    // Two failure types separated by MORE than the timeout never pair...
    loc.insert(alert("packet loss", data_source::ping, 0), 0);
    (void)loc.check(GetParam() + seconds(10));  // first alert expired
    loc.insert(alert("sflow packet loss", data_source::traffic_stats, GetParam() + seconds(20)),
               GetParam() + seconds(20));
    (void)loc.check(GetParam() + seconds(30));
    EXPECT_TRUE(loc.open_incidents().empty());

    // ... while the same pair inside the window spawns an incident.
    locator fresh(&topo, cfg);
    fresh.insert(alert("packet loss", data_source::ping, 0), 0);
    fresh.insert(alert("sflow packet loss", data_source::traffic_stats, GetParam() / 2),
                 GetParam() / 2);
    (void)fresh.check(GetParam() / 2 + seconds(5));
    EXPECT_EQ(fresh.open_incidents().size(), 1u);
}

// --- evaluator severity-threshold sweep ------------------------------------------

class SeverityThresholdSweep : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Thresholds, SeverityThresholdSweep,
                         ::testing::Values(1.0, 10.0, 50.0, 100.0));

TEST_P(SeverityThresholdSweep, FilterIsAHardCutoff) {
    const topology topo = generate_topology(generator_params::tiny());
    customer_registry customers;
    evaluator eval(&topo, &customers, evaluator_config{.severity_threshold = GetParam()});
    severity_breakdown s;
    s.score = GetParam() - 0.01;
    EXPECT_FALSE(eval.passes_filter(s));
    s.score = GetParam();
    EXPECT_TRUE(eval.passes_filter(s));
    s.score = GetParam() + 0.01;
    EXPECT_TRUE(eval.passes_filter(s));
}

// --- incident timeout sweep ---------------------------------------------------------

class IncidentTimeoutSweep : public ::testing::TestWithParam<sim_duration> {};
INSTANTIATE_TEST_SUITE_P(Timeouts, IncidentTimeoutSweep,
                         ::testing::Values(minutes(5), minutes(15), minutes(30)));

TEST_P(IncidentTimeoutSweep, IncidentClosesExactlyAfterQuietPeriod) {
    const topology topo = generate_topology(generator_params::tiny());
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    locator_config cfg;
    cfg.incident_timeout = GetParam();
    locator loc(&topo, cfg);

    const device& d = topo.devices().front();
    for (const char* type : {"packet loss", "sflow packet loss"}) {
        structured_alert a;
        const data_source src =
            std::string(type) == "packet loss" ? data_source::ping : data_source::traffic_stats;
        a.type = *registry.find(src, type);
        a.type_name = type;
        a.source = src;
        a.category = alert_category::failure;
        a.when = time_range{0, 0};
        a.loc = d.loc;
        a.device = d.id;
        loc.insert(a, 0);
    }
    (void)loc.check(seconds(5));
    ASSERT_EQ(loc.open_incidents().size(), 1u);

    // Still open just before the timeout, closed just after.
    EXPECT_TRUE(loc.check(seconds(5) + GetParam() - seconds(1)).empty());
    EXPECT_EQ(loc.check(seconds(5) + GetParam() + seconds(1)).size(), 1u);
}

}  // namespace
}  // namespace skynet
