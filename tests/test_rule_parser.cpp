// Tests for the SOP rule text format.
#include <gtest/gtest.h>

#include "skynet/heuristics/rule_parser.h"

namespace skynet {
namespace {

TEST(RuleParserTest, ParsesFullRule) {
    const auto result = parse_sop_rules(R"(
rule "device packet loss isolation":
  require sflow packet loss
  forbid hardware error
  group quiet
  max group utilization 0.7
  action isolate device
)");
    ASSERT_TRUE(result.ok()) << (result.errors.empty() ? "" : result.errors[0].message);
    ASSERT_EQ(result.rules.size(), 1u);
    const sop_rule& r = result.rules[0];
    EXPECT_EQ(r.name, "device packet loss isolation");
    EXPECT_EQ(r.condition.required_types, (std::vector<std::string>{"sflow packet loss"}));
    EXPECT_EQ(r.condition.forbidden_types, (std::vector<std::string>{"hardware error"}));
    EXPECT_TRUE(r.condition.require_group_quiet);
    EXPECT_DOUBLE_EQ(r.condition.max_group_utilization, 0.7);
    EXPECT_EQ(r.action, sop_action_kind::isolate_device);
}

TEST(RuleParserTest, MultipleRulesAndComments) {
    const auto result = parse_sop_rules(R"(
# rulebook v2
rule "a":
  require link down   # syslog type
  action disable interface

rule "b":
  require modification failed
  action rollback modification
)");
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.rules.size(), 2u);
    EXPECT_EQ(result.rules[0].action, sop_action_kind::disable_interface);
    EXPECT_EQ(result.rules[1].action, sop_action_kind::rollback_modification);
    // Defaults: no group-quiet requirement unless stated.
    EXPECT_FALSE(result.rules[0].condition.require_group_quiet);
    EXPECT_DOUBLE_EQ(result.rules[0].condition.max_group_utilization, 1.0);
}

TEST(RuleParserTest, MissingActionIsError) {
    const auto result = parse_sop_rules(R"(
rule "incomplete":
  require link down
)");
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.rules.empty());
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].message.find("no action"), std::string::npos);
}

TEST(RuleParserTest, BadRuleSkippedGoodRuleKept) {
    const auto result = parse_sop_rules(R"(
rule "broken":
  frobnicate the widgets
  action isolate device

rule "fine":
  require crc error
  action disable interface
)");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.rules.size(), 1u);
    EXPECT_EQ(result.rules[0].name, "fine");
    ASSERT_FALSE(result.errors.empty());
    EXPECT_EQ(result.errors[0].line, 3);
}

TEST(RuleParserTest, BadUtilizationRejected) {
    for (const char* value : {"1.5", "-0.2", "fast", ""}) {
        const std::string text = std::string("rule \"x\":\n  max group utilization ") + value +
                                 "\n  action isolate device\n";
        const auto result = parse_sop_rules(text);
        EXPECT_FALSE(result.ok()) << value;
    }
}

TEST(RuleParserTest, DirectiveOutsideRuleIsError) {
    const auto result = parse_sop_rules("require link down\n");
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.errors[0].line, 1);
}

TEST(RuleParserTest, UnknownActionRejected) {
    const auto result = parse_sop_rules(R"(
rule "x":
  action reboot the internet
)");
    EXPECT_FALSE(result.ok());
}

TEST(RuleParserTest, RoundTripThroughRenderer) {
    sop_rule rule{.name = "round trip",
                  .condition = {.required_types = {"sflow packet loss", "hardware error"},
                                .forbidden_types = {"software error"},
                                .require_group_quiet = true,
                                .max_group_utilization = 0.65},
                  .action = sop_action_kind::isolate_device};
    const auto result = parse_sop_rules(render_sop_rule(rule));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.rules.size(), 1u);
    const sop_rule& r = result.rules[0];
    EXPECT_EQ(r.name, rule.name);
    EXPECT_EQ(r.condition.required_types, rule.condition.required_types);
    EXPECT_EQ(r.condition.forbidden_types, rule.condition.forbidden_types);
    EXPECT_EQ(r.condition.require_group_quiet, rule.condition.require_group_quiet);
    EXPECT_NEAR(r.condition.max_group_utilization, rule.condition.max_group_utilization, 1e-9);
    EXPECT_EQ(r.action, rule.action);
}

TEST(RuleParserTest, ParsedRulesDriveTheEngine) {
    // Rules loaded from text must behave exactly like built-ins.
    topology topo;
    const location cl{"R", "C", "LS", "S", "CL"};
    const device_id agg1 = topo.add_device("agg1", device_role::agg, cl.child("agg1"));
    const device_id agg2 = topo.add_device("agg2", device_role::agg, cl.child("agg2"));
    const group_id g = topo.add_group("CL-AGG");
    topo.add_to_group(g, agg1);
    topo.add_to_group(g, agg2);
    const circuit_set_id cs = topo.add_circuit_set("a1a2", agg1, agg2);
    (void)topo.add_link(agg1, agg2, cs, 100.0);
    customer_registry customers;
    network_state state(&topo, &customers);
    state.set_offered_gbps(cs, 10.0);

    const auto parsed = parse_sop_rules(R"(
rule "textual isolation":
  require rx errors
  group quiet
  max group utilization 0.9
  action isolate device
)");
    ASSERT_TRUE(parsed.ok());
    sop_engine engine(&topo);
    for (const sop_rule& r : parsed.rules) engine.add_rule(r);

    structured_alert a;
    a.type_name = "rx errors";
    a.loc = topo.device_at(agg1).loc;
    a.device = agg1;
    const auto matches = engine.match(std::vector<structured_alert>{a}, state);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].rule->name, "textual isolation");
}

}  // namespace
}  // namespace skynet
