# Partition drill (registered in tests/CMakeLists.txt). End-to-end proof
# that the federation layer survives the failures it monitors, over real
# process boundaries:
#
#   1. Baseline: an aggregator plus one region daemon stream a recorded
#      flood to completion; the aggregator's merged report must be
#      byte-identical to the daemon's own report.
#   2. Drill: a fresh pair runs the same trace, but the daemon is killed
#      at an exact journal-record boundary (--crash-after) mid-stream.
#      The aggregator must keep serving its last known view, and
#      /v1/regions must degrade the region to stale and then partitioned.
#   3. Recovery: the daemon restarts with --recover --resume-stream, the
#      feeder re-streams the whole trace from the top (with --retry),
#      and the aggregator's final merged report must be byte-identical
#      to the baseline — duplicates deduplicated, nothing lost.
#
# Expects -DSKYNET_CLI=<path> and -DDRILL_DIR=<scratch dir>.
file(REMOVE_RECURSE "${DRILL_DIR}")
file(MAKE_DIRECTORY "${DRILL_DIR}")

function(run_cli out_var expect_code)
  execute_process(COMMAND ${SKYNET_CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE code)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR "skynet_cli ${ARGN}: exit ${code} (wanted ${expect_code})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Unix socket paths must stay short (sun_path is ~108 bytes).
string(MD5 drill_key "${DRILL_DIR}")
string(SUBSTRING "${drill_key}" 0 8 drill_key)
set(fed_sock "/tmp/skynet_fed_${drill_key}_agg.sock")
set(agg_http "/tmp/skynet_fed_${drill_key}_ah.sock")
set(ingest_sock "/tmp/skynet_fed_${drill_key}_in.sock")
set(daemon_http "/tmp/skynet_fed_${drill_key}_dh.sock")

function(stop_process pid what)
  execute_process(COMMAND kill -TERM ${pid} RESULT_VARIABLE ignored)
  foreach(i RANGE 50)
    execute_process(COMMAND kill -0 ${pid} RESULT_VARIABLE alive
                    ERROR_QUIET OUTPUT_QUIET)
    if(NOT alive EQUAL 0)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  execute_process(COMMAND kill -KILL ${pid})
  message(FATAL_ERROR "${what} ${pid} did not exit within 10s of SIGTERM")
endfunction()

# Short staleness thresholds so the drill observes the live -> stale ->
# partitioned walk in seconds instead of the production defaults.
function(start_aggregator pid_var log)
  execute_process(COMMAND sh -c "${SKYNET_CLI} \
      --federate aggregate:unix:${fed_sock} --http unix:${agg_http} \
      --fed-lag-ms 300 --fed-stale-ms 800 --fed-partition-ms 2000 \
      > '${log}' 2>&1 & echo $!"
                  OUTPUT_VARIABLE pid OUTPUT_STRIP_TRAILING_WHITESPACE
                  RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "failed to launch aggregator")
  endif()
  foreach(i RANGE 50)
    execute_process(COMMAND ${SKYNET_CLI} --connect unix:${agg_http} --get /v1/health
                    RESULT_VARIABLE up OUTPUT_QUIET ERROR_QUIET)
    if(up EQUAL 0)
      set(${pid_var} ${pid} PARENT_SCOPE)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  execute_process(COMMAND kill -KILL ${pid} ERROR_QUIET OUTPUT_QUIET)
  file(READ "${log}" log_text)
  message(FATAL_ERROR "aggregator never answered /v1/health:\n${log_text}")
endfunction()

# A federated region daemon: durable, emitting digests for region
# "west" with its own digest journal, heartbeating fast.
function(start_daemon pid_var ckpt fedj log)
  string(JOIN " " extra_args ${ARGN})
  execute_process(COMMAND sh -c "${SKYNET_CLI} --topo tiny --seed 5 \
      --serve unix:${ingest_sock} --http unix:${daemon_http} \
      --checkpoint-dir '${ckpt}' --checkpoint-every 4 \
      --federate emit:west@unix:${fed_sock} --fed-journal '${fedj}' \
      --fed-heartbeat-ms 100 ${extra_args} \
      > '${log}' 2>&1 & echo $!"
                  OUTPUT_VARIABLE pid OUTPUT_STRIP_TRAILING_WHITESPACE
                  RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "failed to launch daemon")
  endif()
  foreach(i RANGE 50)
    execute_process(COMMAND ${SKYNET_CLI} --connect unix:${daemon_http} --get /v1/health
                    RESULT_VARIABLE up OUTPUT_QUIET ERROR_QUIET)
    if(up EQUAL 0)
      set(${pid_var} ${pid} PARENT_SCOPE)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  execute_process(COMMAND kill -KILL ${pid} ERROR_QUIET OUTPUT_QUIET)
  file(READ "${log}" log_text)
  message(FATAL_ERROR "daemon never answered /v1/health:\n${log_text}")
endfunction()

# Waits until the aggregator marks region "west" finished (the finish
# digest arrived and was applied) or fails after ~20s.
function(wait_region_finished)
  foreach(i RANGE 100)
    execute_process(COMMAND ${SKYNET_CLI} --connect unix:${agg_http} --get /v1/regions
                    OUTPUT_VARIABLE regions RESULT_VARIABLE code ERROR_QUIET)
    if(code EQUAL 0 AND regions MATCHES "\"finished\":true")
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  message(FATAL_ERROR "region never reached finished on the aggregator:\n${regions}")
endfunction()

# 1. Record the flood once.
set(trace "${DRILL_DIR}/trace.txt")
run_cli(record_out 0 --topo tiny --seed 5 --record ${trace})

# ---------------------------------------------------------------------------
# Phase A: baseline — everything stays connected.

start_aggregator(agg_pid "${DRILL_DIR}/agg_a.log")
start_daemon(daemon_pid "${DRILL_DIR}/ckpt_a" "${DRILL_DIR}/fedj_a" "${DRILL_DIR}/serve_a.log")

run_cli(stream_out 0 --connect unix:${ingest_sock} --stream-trace ${trace})
if(NOT stream_out MATCHES "streamed [0-9]+ records .*: OK")
  message(FATAL_ERROR "stream client did not report a clean OK:\n${stream_out}")
endif()
wait_region_finished()

# Single region: the merged cross-region report must be byte-identical
# to the daemon's own report (same ranking, same rendering).
run_cli(daemon_report 0 --connect unix:${daemon_http} --get /v1/report?json=1)
run_cli(baseline 0 --connect unix:${agg_http} --get /v1/report?json=1)
if(NOT baseline STREQUAL daemon_report)
  message(FATAL_ERROR "aggregator merged report differs from the region daemon's:\n"
                      "--- daemon\n${daemon_report}\n--- aggregator\n${baseline}")
endif()
if(NOT baseline MATCHES "incidents: [1-9]")
  message(FATAL_ERROR "baseline run produced no incidents:\n${baseline}")
endif()

stop_process(${daemon_pid} "daemon")
stop_process(${agg_pid} "aggregator")

# ---------------------------------------------------------------------------
# Phase B: the drill — kill the region daemon mid-stream.

start_aggregator(agg_pid "${DRILL_DIR}/agg_b.log")
start_daemon(daemon_pid "${DRILL_DIR}/ckpt_b" "${DRILL_DIR}/fedj_b" "${DRILL_DIR}/serve_b.log"
             --crash-after 30)

# The feeder hits the crash and fails; the daemon must die with the
# drill exit code, exactly like the batch crash drill.
execute_process(COMMAND ${SKYNET_CLI} --connect unix:${ingest_sock} --stream-trace ${trace}
                OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE feeder_code)
if(feeder_code EQUAL 0)
  message(FATAL_ERROR "feeder reported success although the daemon crashed mid-stream")
endif()
foreach(i RANGE 50)
  execute_process(COMMAND kill -0 ${daemon_pid} RESULT_VARIABLE alive
                  ERROR_QUIET OUTPUT_QUIET)
  if(NOT alive EQUAL 0)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
endforeach()
if(NOT EXISTS "${DRILL_DIR}/ckpt_b/journal.skywal")
  message(FATAL_ERROR "crashed daemon left no journal behind")
endif()

# Graceful degradation: the aggregator keeps answering queries from the
# region's last known digests while the region is gone...
run_cli(during 0 --connect unix:${agg_http} --get /v1/report?json=1)
if(NOT during MATCHES "incidents: [0-9]")
  message(FATAL_ERROR "aggregator stopped serving during the partition:\n${during}")
endif()

# ...and the staleness walk shows up: past stale_ms the region is no
# longer live, past partition_ms it must be partitioned.
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 1.0)
run_cli(regions_stale 0 --connect unix:${agg_http} --get /v1/regions)
if(NOT regions_stale MATCHES "\"state\":\"(stale|partitioned)\"")
  message(FATAL_ERROR "region not degraded after stale_ms:\n${regions_stale}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 1.5)
run_cli(regions_gone 0 --connect unix:${agg_http} --get /v1/regions)
if(NOT regions_gone MATCHES "\"state\":\"partitioned\"")
  message(FATAL_ERROR "region not partitioned after partition_ms:\n${regions_gone}")
endif()
run_cli(health_gone 0 --connect unix:${agg_http} --get /v1/health)
if(NOT health_gone MATCHES "\"regions_partitioned\":1")
  message(FATAL_ERROR "health does not count the partitioned region:\n${health_gone}")
endif()

# ---------------------------------------------------------------------------
# Phase C: recovery — restart, re-stream from the top, converge.

start_daemon(daemon_pid "${DRILL_DIR}/ckpt_b" "${DRILL_DIR}/fedj_b" "${DRILL_DIR}/serve_c.log"
             --recover --resume-stream)
run_cli(restream_out 0 --connect unix:${ingest_sock} --stream-trace ${trace}
        --retry 5 --retry-base-ms 100)
if(NOT restream_out MATCHES "streamed [0-9]+ records .*: OK")
  message(FATAL_ERROR "re-stream did not complete cleanly:\n${restream_out}")
endif()
wait_region_finished()

# Partition parity: the recovered region's merged report is byte-
# identical to the never-partitioned baseline.
run_cli(final 0 --connect unix:${agg_http} --get /v1/report?json=1)
if(NOT final STREQUAL baseline)
  message(FATAL_ERROR "post-recovery merged report diverged from the baseline:\n"
                      "--- baseline\n${baseline}\n--- recovered\n${final}")
endif()

# The region must be live again with exactly-once accounting intact.
run_cli(regions_back 0 --connect unix:${agg_http} --get /v1/regions)
if(NOT regions_back MATCHES "\"state\":\"live\"")
  message(FATAL_ERROR "recovered region is not live:\n${regions_back}")
endif()

stop_process(${daemon_pid} "daemon")
stop_process(${agg_pid} "aggregator")
file(READ "${DRILL_DIR}/agg_b.log" agg_log)
if(NOT agg_log MATCHES "federate: shutdown clean")
  message(FATAL_ERROR "aggregator did not log a clean shutdown:\n${agg_log}")
endif()

file(REMOVE "${fed_sock}" "${agg_http}" "${ingest_sock}" "${daemon_http}")
message(STATUS "partition drill passed: baseline parity, graceful degradation, "
               "staleness walk, recovery convergence")
