// Randomized property tests: arbitrary alert streams through the full
// preprocessor + locator must preserve structural invariants — no
// crashes, well-formed incidents, conserved alert identity, disjoint
// incident roots.
#include <gtest/gtest.h>

#include <unordered_set>

#include "skynet/core/pipeline.h"
#include "skynet/syslog/message_catalog.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo = generate_topology(generator_params::tiny());
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();
    network_state state{&topo, &customers};
};

raw_alert random_alert(world& w, rng& rand, sim_time now) {
    raw_alert a;
    a.timestamp = now;
    const auto& types = w.registry.types();
    const alert_type& t = types[rand.index(types.size())];
    a.source = t.source;
    a.kind = t.name;
    if (t.source == data_source::syslog) {
        a.kind.clear();
        // Half classifiable, half junk.
        if (rand.chance(0.5)) {
            const auto& catalog = syslog_message_catalog();
            a.message = render_syslog(catalog[rand.index(catalog.size())].pattern, rand);
        } else {
            a.message = "noise token " + std::to_string(rand.uniform_int(0, 1 << 20));
        }
    }
    const device& d = w.topo.devices()[rand.index(w.topo.devices().size())];
    a.loc = d.loc;
    a.device = d.id;
    // Occasionally aggregate-level / pair-style alerts.
    if (rand.chance(0.2)) {
        a.loc = d.loc.ancestor_at(hierarchy_level::site);
        a.device.reset();
    }
    if (rand.chance(0.1)) {
        a.src_loc = d.loc.ancestor_at(hierarchy_level::cluster);
        a.dst_loc = w.topo.devices()[rand.index(w.topo.devices().size())].loc.ancestor_at(
            hierarchy_level::cluster);
    }
    a.metric = rand.uniform_real(0.0, 1.0);
    if (rand.chance(0.1)) a.link = w.topo.links()[rand.index(w.topo.links().size())].id;
    return a;
}

class RandomStream : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStream, InvariantsHold) {
    world w;
    rng rand(GetParam());
    skynet_engine engine(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});

    sim_time now = 0;
    std::vector<incident_report> closed;
    for (int tick = 0; tick < 300; ++tick) {
        const int burst = static_cast<int>(rand.uniform_int(0, 12));
        for (int i = 0; i < burst; ++i) {
            engine.ingest(random_alert(w, rand, now), now);
        }
        now += seconds(2);
        engine.tick(now, w.state);
        for (auto& r : engine.take_reports()) closed.push_back(std::move(r));
    }
    engine.finish(now + minutes(30), w.state);
    for (auto& r : engine.take_reports()) closed.push_back(std::move(r));

    // Invariant 1: every incident is well-formed.
    std::unordered_set<std::uint64_t> ids;
    for (const incident_report& r : closed) {
        EXPECT_TRUE(ids.insert(r.inc.id).second) << "duplicate incident id";
        EXPECT_FALSE(r.inc.alerts.empty());
        EXPECT_LE(r.inc.when.begin, r.inc.when.end);
        EXPECT_GE(r.severity.score, 0.0);
        EXPECT_LE(r.severity.score, engine.scorer().config().score_cap);
        for (const structured_alert& a : r.inc.alerts) {
            // Every alert sits under the incident root.
            EXPECT_TRUE(r.inc.root.contains(a.loc))
                << a.loc.to_string() << " outside " << r.inc.root.to_string();
            EXPECT_NE(a.type, invalid_alert_type);
            EXPECT_FALSE(a.type_name.empty());
        }
        // Zoomed location, when present, refines the root.
        if (r.zoomed) {
            EXPECT_TRUE(r.inc.root.contains(*r.zoomed));
        }
    }

    // Invariant 2: open incidents at any instant have non-nested roots
    // (absorption replaces inner trees).
    const auto open = engine.open_reports(now, w.state);
    for (std::size_t i = 0; i < open.size(); ++i) {
        for (std::size_t j = i + 1; j < open.size(); ++j) {
            EXPECT_FALSE(open[i].inc.root.is_ancestor_of(open[j].inc.root) ||
                         open[j].inc.root.is_ancestor_of(open[i].inc.root))
                << open[i].inc.root.to_string() << " nests " << open[j].inc.root.to_string();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStream,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(RandomStreamTest, DeterministicAcrossRuns) {
    auto run = [](std::uint64_t seed) {
        world w;
        rng rand(seed);
        skynet_engine engine(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
        sim_time now = 0;
        for (int tick = 0; tick < 100; ++tick) {
            for (int i = 0; i < 5; ++i) engine.ingest(random_alert(w, rand, now), now);
            now += seconds(2);
            engine.tick(now, w.state);
        }
        std::string fingerprint;
        for (const incident_report& r : engine.open_reports(now, w.state)) {
            fingerprint += r.inc.root.to_string() + "#" +
                           std::to_string(r.inc.alerts.size()) + ";";
        }
        return fingerprint;
    };
    EXPECT_EQ(run(99), run(99));
    EXPECT_NE(run(99), run(100));  // and seeds actually matter
}

}  // namespace
}  // namespace skynet
