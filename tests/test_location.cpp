// Unit tests for the location hierarchy.
#include <gtest/gtest.h>

#include <unordered_set>

#include "skynet/topology/location.h"

namespace skynet {
namespace {

location site() { return location{"Region A", "City a", "LS 2", "Site I"}; }

TEST(LocationTest, RoundTripParse) {
    const location loc = site();
    EXPECT_EQ(loc.to_string(), "Region A|City a|LS 2|Site I");
    EXPECT_EQ(location::parse(loc.to_string()), loc);
    EXPECT_EQ(location::parse(""), location{});
}

TEST(LocationTest, Levels) {
    EXPECT_EQ(location{}.level(), hierarchy_level::root);
    EXPECT_EQ((location{"R"}).level(), hierarchy_level::region);
    EXPECT_EQ((location{"R", "C"}).level(), hierarchy_level::city);
    EXPECT_EQ((location{"R", "C", "L"}).level(), hierarchy_level::logic_site);
    EXPECT_EQ(site().level(), hierarchy_level::site);
    EXPECT_EQ(site().child("Cl").level(), hierarchy_level::cluster);
    EXPECT_EQ(site().child("Cl").child("dev").level(), hierarchy_level::device);
    // Deeper than device clamps.
    EXPECT_EQ(site().child("Cl").child("dev").child("x").level(), hierarchy_level::device);
}

TEST(LocationTest, ParentAndLeaf) {
    const location loc = site();
    EXPECT_EQ(loc.leaf(), "Site I");
    EXPECT_EQ(loc.parent(), (location{"Region A", "City a", "LS 2"}));
    EXPECT_EQ(location{}.parent(), location{});
    EXPECT_EQ(location{}.leaf(), "");
}

TEST(LocationTest, AncestorAt) {
    const location dev = site().child("Cluster i").child("dev-1");
    EXPECT_EQ(dev.ancestor_at(hierarchy_level::region), (location{"Region A"}));
    EXPECT_EQ(dev.ancestor_at(hierarchy_level::cluster), site().child("Cluster i"));
    // At-or-above depth: no-op.
    EXPECT_EQ(site().ancestor_at(hierarchy_level::device), site());
}

TEST(LocationTest, ContainsIsReflexiveAndHierarchical) {
    const location a = site();
    EXPECT_TRUE(a.contains(a));
    EXPECT_TRUE(a.parent().contains(a));
    EXPECT_TRUE(location{}.contains(a));
    EXPECT_FALSE(a.contains(a.parent()));
    EXPECT_FALSE(a.contains(location{"Region B"}));
    // Sibling with shared prefix is not contained.
    EXPECT_FALSE(a.contains(location{"Region A", "City a", "LS 2", "Site II"}));
}

TEST(LocationTest, IsAncestorOfIsStrict) {
    const location a = site();
    EXPECT_FALSE(a.is_ancestor_of(a));
    EXPECT_TRUE(a.parent().is_ancestor_of(a));
}

TEST(LocationTest, CommonAncestor) {
    const location a = site().child("Cluster i");
    const location b = site().child("Cluster ii");
    EXPECT_EQ(location::common_ancestor(a, b), site());
    EXPECT_EQ(location::common_ancestor(a, a), a);
    EXPECT_TRUE(
        location::common_ancestor(location{"Region A"}, location{"Region B"}).is_root());
}

TEST(LocationTest, OrderingIsLexicographicBySegments) {
    EXPECT_LT((location{"A"}), (location{"A", "B"}));
    EXPECT_LT((location{"A", "B"}), (location{"B"}));
}

TEST(LocationTest, HashDistinguishesSegmentBoundaries) {
    const location_hash h;
    // "ab|c" vs "a|bc" must differ.
    EXPECT_NE(h(location{"ab", "c"}), h(location{"a", "bc"}));
    EXPECT_EQ(h(site()), h(site()));
}

TEST(LocationTest, WorksAsUnorderedKey) {
    std::unordered_set<location, location_hash> set;
    set.insert(site());
    set.insert(site());
    set.insert(site().parent());
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(site()));
}

TEST(LocationTest, LevelNames) {
    EXPECT_EQ(to_string(hierarchy_level::logic_site), "logic site");
    EXPECT_EQ(to_string(hierarchy_level::device), "device");
}

}  // namespace
}  // namespace skynet
