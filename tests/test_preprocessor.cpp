// Tests for the preprocessor (§4.1): uniform format conversion, syslog
// classification, link/pair splitting, and the three consolidation
// methods.
#include <gtest/gtest.h>

#include "skynet/core/preprocessor.h"
#include "skynet/syslog/message_catalog.h"

namespace skynet {
namespace {

struct fixture {
    topology topo;
    device_id tor1, agg1;
    link_id link1;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();
    rng rand{31};

    fixture() {
        const location cl{"R", "C", "LS", "S", "CL"};
        tor1 = topo.add_device("tor1", device_role::tor, cl.child("tor1"));
        agg1 = topo.add_device("agg1", device_role::agg, cl.child("agg1"));
        const circuit_set_id cs = topo.add_circuit_set("t1a1", tor1, agg1);
        link1 = topo.add_link(tor1, agg1, cs, 100.0);
    }

    preprocessor make(preprocessor_config cfg = {}) const {
        return preprocessor(&topo, &registry, &syslog, cfg);
    }

    raw_alert snmp_alert(std::string kind, device_id dev, sim_time t) const {
        raw_alert a;
        a.source = data_source::snmp;
        a.timestamp = t;
        a.kind = std::move(kind);
        a.loc = topo.device_at(dev).loc;
        a.device = dev;
        return a;
    }
};

TEST(PreprocessorTest, ConvertsKindToTypeAndCategory) {
    fixture f;
    preprocessor pre = f.make();
    const auto out = pre.process(f.snmp_alert("link down", f.tor1, 1000), 1000);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].is_update);
    EXPECT_EQ(out[0].alert.type_name, "link down");
    EXPECT_EQ(out[0].alert.category, alert_category::root_cause);
    EXPECT_EQ(out[0].alert.source, data_source::snmp);
    EXPECT_EQ(out[0].alert.when, (time_range{1000, 1000}));
}

TEST(PreprocessorTest, UnknownKindDropped) {
    fixture f;
    preprocessor pre = f.make();
    EXPECT_TRUE(pre.process(f.snmp_alert("martian kind", f.tor1, 0), 0).empty());
    EXPECT_EQ(pre.stats().dropped_unclassified, 1);
}

TEST(PreprocessorTest, SyslogClassifiedViaTemplates) {
    fixture f;
    preprocessor pre = f.make();
    raw_alert a;
    a.source = data_source::syslog;
    a.timestamp = 500;
    a.message = render_syslog("%PLATFORM-2-HW_ERROR: ASIC {num} parity error detected slot "
                              "{num} requires reset",
                              f.rand);
    a.loc = f.topo.device_at(f.tor1).loc;
    a.device = f.tor1;
    const auto out = pre.process(a, 500);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].alert.type_name, "hardware error");
    EXPECT_EQ(out[0].alert.category, alert_category::root_cause);
}

TEST(PreprocessorTest, BenignSyslogDropped) {
    fixture f;
    preprocessor pre = f.make();
    raw_alert a;
    a.source = data_source::syslog;
    a.message = "%SYS-6-INFO: periodic housekeeping task completed id 12345";
    a.loc = f.topo.device_at(f.tor1).loc;
    EXPECT_TRUE(pre.process(a, 0).empty());
    EXPECT_EQ(pre.stats().dropped_unclassified, 1);
}

TEST(PreprocessorTest, IdenticalAlertsConsolidated) {
    // §4.1 method 1: SNMP repeats the same alert; SkyNet updates the
    // first alert instead of duplicating it.
    fixture f;
    preprocessor pre = f.make();
    const auto first = pre.process(f.snmp_alert("high cpu", f.tor1, 1000), 1000);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_FALSE(first[0].is_update);

    const auto second = pre.process(f.snmp_alert("high cpu", f.tor1, seconds(30)), seconds(30));
    ASSERT_EQ(second.size(), 1u);
    EXPECT_TRUE(second[0].is_update);
    EXPECT_EQ(second[0].alert.count, 2);
    EXPECT_EQ(second[0].alert.when.begin, 1000);
    EXPECT_EQ(second[0].alert.when.end, seconds(30));
    EXPECT_EQ(pre.stats().emitted_new, 1);
    EXPECT_EQ(pre.stats().merged_identical, 1);
}

TEST(PreprocessorTest, ConsolidationWindowExpires) {
    fixture f;
    preprocessor pre = f.make(preprocessor_config{.dedup_window = minutes(5)});
    (void)pre.process(f.snmp_alert("high cpu", f.tor1, 0), 0);
    const auto later = pre.process(f.snmp_alert("high cpu", f.tor1, minutes(6)), minutes(6));
    ASSERT_EQ(later.size(), 1u);
    EXPECT_FALSE(later[0].is_update);  // a fresh alert after the window
}

TEST(PreprocessorTest, LinkAlertSplitsToBothEndpoints) {
    fixture f;
    preprocessor pre = f.make();
    raw_alert a;
    a.source = data_source::traffic_stats;
    a.timestamp = 100;
    a.kind = "sflow packet loss";
    a.loc = location{"R", "C", "LS", "S", "CL"};
    a.link = f.link1;
    a.metric = 0.1;
    const auto out = pre.process(a, 100);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].alert.loc.leaf(), "tor1");
    EXPECT_EQ(out[1].alert.loc.leaf(), "agg1");
    EXPECT_EQ(out[0].alert.device, f.tor1);
    EXPECT_EQ(out[1].alert.device, f.agg1);
}

TEST(PreprocessorTest, PairAlertSplitsToBothClusters) {
    fixture f;
    preprocessor pre = f.make(preprocessor_config{.persistence_threshold = 1});
    raw_alert a;
    a.source = data_source::ping;
    a.timestamp = 100;
    a.kind = "packet loss";
    a.metric = 0.2;
    a.src_loc = location{"R", "C", "LS", "S", "CL1"};
    a.dst_loc = location{"R", "C", "LS", "S2", "CL9"};
    a.loc = location{"R", "C", "LS"};
    const auto out = pre.process(a, 100);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].alert.loc, *a.src_loc);
    EXPECT_EQ(out[1].alert.loc, *a.dst_loc);
    // Endpoints preserved for the reachability matrix.
    EXPECT_EQ(out[0].alert.src_loc, a.src_loc);
    EXPECT_EQ(out[0].alert.dst_loc, a.dst_loc);
}

TEST(PreprocessorTest, SporadicProbeLossHeld) {
    // §4.1 method 2: sporadic packet loss is ignored, persistent loss
    // recorded.
    fixture f;
    preprocessor pre = f.make(preprocessor_config{.persistence_threshold = 2,
                                                  .persistence_window = seconds(45)});
    raw_alert a;
    a.source = data_source::ping;
    a.timestamp = 0;
    a.kind = "packet loss";
    a.metric = 0.1;
    a.loc = location{"R", "C", "LS", "S", "CL"};

    EXPECT_TRUE(pre.process(a, 0).empty());  // first occurrence held
    a.timestamp = seconds(2);
    const auto out = pre.process(a, seconds(2));  // persists -> released
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].alert.when.begin, 0);  // time range covers the hold
    EXPECT_EQ(out[0].alert.when.end, seconds(2));
}

TEST(PreprocessorTest, SporadicBlipExpiresSilently) {
    fixture f;
    preprocessor pre = f.make(preprocessor_config{.persistence_threshold = 2,
                                                  .persistence_window = seconds(45)});
    raw_alert a;
    a.source = data_source::ping;
    a.kind = "packet loss";
    a.metric = 0.05;
    a.loc = location{"R", "C", "LS", "S", "CL"};
    EXPECT_TRUE(pre.process(a, 0).empty());
    EXPECT_TRUE(pre.flush(minutes(2)).empty());
    EXPECT_EQ(pre.stats().dropped_sporadic, 1);
    // A later blip starts a fresh observation window, it does not
    // combine with the stale one.
    a.timestamp = minutes(3);
    EXPECT_TRUE(pre.process(a, minutes(3)).empty());
}

TEST(PreprocessorTest, TrafficDropNeedsCorroboration) {
    // §4.1 method 3: a traffic drop alone is expected; with a failure
    // alert nearby it becomes an abnormal decline.
    fixture f;
    preprocessor pre = f.make();

    raw_alert drop;
    drop.source = data_source::traffic_stats;
    drop.timestamp = 0;
    drop.kind = "traffic drop";
    drop.loc = f.topo.device_at(f.tor1).loc;
    drop.device = f.tor1;
    EXPECT_TRUE(pre.process(drop, 0).empty());  // waits

    // Uncorroborated: discarded at flush.
    EXPECT_TRUE(pre.flush(minutes(2)).empty());
    EXPECT_EQ(pre.stats().dropped_uncorroborated, 1);
}

TEST(PreprocessorTest, CorroboratedDropBecomesAbnormalDecline) {
    fixture f;
    preprocessor pre = f.make();

    // Failure sighting first (sflow loss on the device)...
    raw_alert loss = f.snmp_alert("rx errors", f.tor1, 0);
    ASSERT_FALSE(pre.process(loss, 0).empty());

    // ...then the drop at the same device: upgraded immediately.
    raw_alert drop;
    drop.source = data_source::traffic_stats;
    drop.timestamp = seconds(5);
    drop.kind = "traffic drop";
    drop.loc = f.topo.device_at(f.tor1).loc;
    drop.device = f.tor1;
    const auto out = pre.process(drop, seconds(5));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].alert.type_name, "abnormal traffic decline");
}

TEST(PreprocessorTest, DropThenFailureReleasedAtFlush) {
    fixture f;
    preprocessor pre = f.make();

    raw_alert drop;
    drop.source = data_source::traffic_stats;
    drop.timestamp = 0;
    drop.kind = "traffic drop";
    drop.loc = f.topo.device_at(f.tor1).loc;
    EXPECT_TRUE(pre.process(drop, 0).empty());

    // Corroboration arrives 10 s later.
    (void)pre.process(f.snmp_alert("rx errors", f.tor1, seconds(10)), seconds(10));
    const auto released = pre.flush(seconds(12));
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].alert.type_name, "abnormal traffic decline");
}

TEST(PreprocessorTest, RelatedSurgesMerged) {
    fixture f;
    preprocessor pre = f.make();
    raw_alert surge1;
    surge1.source = data_source::snmp;
    surge1.timestamp = 0;
    surge1.kind = "traffic surge";
    surge1.loc = f.topo.device_at(f.tor1).loc;
    surge1.device = f.tor1;
    ASSERT_EQ(pre.process(surge1, 0).size(), 1u);

    // A sibling device's surge merges into the open one.
    raw_alert surge2 = surge1;
    surge2.loc = f.topo.device_at(f.agg1).loc;
    surge2.device = f.agg1;
    surge2.timestamp = seconds(5);
    EXPECT_TRUE(pre.process(surge2, seconds(5)).empty());
    EXPECT_EQ(pre.stats().merged_related, 1);
}

TEST(PreprocessorTest, VolumeReductionUnderRepetition) {
    // The headline effect: a repetitive stream collapses to a handful of
    // structured alerts.
    fixture f;
    preprocessor pre = f.make();
    int emitted_new = 0;
    for (int i = 0; i < 1000; ++i) {
        const sim_time t = i * seconds(1);
        for (const auto& ev : pre.process(f.snmp_alert("high cpu", f.tor1, t), t)) {
            if (!ev.is_update) ++emitted_new;
        }
    }
    EXPECT_LE(emitted_new, 4);  // one per 5-minute window
    EXPECT_EQ(pre.stats().raw_in, 1000);
}

TEST(PreprocessorEvictionTest, CapEvictsOldestFirst) {
    // max_pending_alerts eviction order: the entry with the oldest
    // last_seen leaves first, so a storm forgets stale keys, not hot ones.
    fixture f;
    preprocessor pre = f.make(preprocessor_config{.max_pending_alerts = 2});
    const auto at = [&](const std::string& leaf, sim_time t) {
        raw_alert a;
        a.source = data_source::snmp;
        a.timestamp = t;
        a.kind = "high cpu";
        a.loc = location{"R", leaf};
        return a;
    };
    (void)pre.process(at("k0", 0), 0);
    (void)pre.process(at("k1", 1000), 1000);
    (void)pre.process(at("k2", 2000), 2000);  // cap hit: k0 (oldest) evicted
    EXPECT_EQ(pre.evicted_pending(), 1u);

    // k0 is gone, so its repeat opens a fresh alert (count 1, not an
    // update) — and its insert in turn evicts k1, now the oldest.
    const auto again = pre.process(at("k0", 3000), 3000);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_FALSE(again[0].is_update);
    EXPECT_EQ(again[0].alert.count, 1);
    EXPECT_EQ(pre.evicted_pending(), 2u);

    const auto k1_again = pre.process(at("k1", 4000), 4000);
    ASSERT_EQ(k1_again.size(), 1u);
    EXPECT_FALSE(k1_again[0].is_update);
}

TEST(PreprocessorEvictionTest, EvictionIsDeterministicAcrossRuns) {
    // Three seeded storms over the cap: two preprocessors fed the same
    // stream must emit byte-identical events and evict identically —
    // hash-map iteration order must never leak into which entry dies.
    for (const std::uint64_t seed : {std::uint64_t{11}, std::uint64_t{17}, std::uint64_t{23}}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        fixture f;
        rng rand(seed);
        std::vector<raw_alert> storm;
        for (int i = 0; i < 600; ++i) {
            raw_alert a;
            a.source = data_source::snmp;
            a.timestamp = i * 250;
            a.kind = "high cpu";
            a.loc = location{"R", "B" + std::to_string(rand.uniform_int(0, 63))};
            storm.push_back(std::move(a));
        }

        const preprocessor_config cfg{.max_pending_alerts = 8};
        preprocessor lhs = f.make(cfg);
        preprocessor rhs = f.make(cfg);
        for (const raw_alert& raw : storm) {
            const auto a = lhs.process(raw, raw.timestamp);
            const auto b = rhs.process(raw, raw.timestamp);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                ASSERT_EQ(a[i].is_update, b[i].is_update);
                ASSERT_EQ(a[i].alert.loc.to_string(), b[i].alert.loc.to_string());
                ASSERT_EQ(a[i].alert.count, b[i].alert.count);
            }
        }
        EXPECT_EQ(lhs.stats(), rhs.stats());
        EXPECT_EQ(lhs.evicted_pending(), rhs.evicted_pending());
        EXPECT_GT(lhs.evicted_pending(), 0u);  // the cap actually bit
    }
}

TEST(PreprocessorTest, MetricKeepsMaximum) {
    fixture f;
    preprocessor pre = f.make();
    raw_alert a = f.snmp_alert("traffic congestion", f.tor1, 0);
    a.metric = 0.5;
    (void)pre.process(a, 0);
    a.metric = 0.9;
    a.timestamp = seconds(10);
    const auto out = pre.process(a, seconds(10));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0].alert.metric, 0.9);
}

}  // namespace
}  // namespace skynet
