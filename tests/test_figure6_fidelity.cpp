// Fidelity test for the Figure 6 running example: the scripted alert
// flood must reproduce the paper's walk-through — two incidents, the big
// one at the logic site with alerts in all three categories, the small
// one isolated at the far device, and the big one ranked first.
#include <gtest/gtest.h>

#include "skynet/core/digest.h"
#include "skynet/core/pipeline.h"
#include "skynet/syslog/message_catalog.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

class Figure6 : public ::testing::Test {
protected:
    void SetUp() override {
        topo_ = generate_topology(generator_params::small());
        rng crand(2024);
        customers_ = customer_registry::generate(topo_, 400, crand);
        registry_ = alert_type_registry::with_builtin_catalog();
        syslog_ = syslog_classifier::train_from_catalog();
        engine_ = std::make_unique<skynet_engine>(
            skynet_engine::deps{&topo_, &customers_, &registry_, &syslog_});
        state_ = std::make_unique<network_state>(&topo_, &customers_);

        // Stage: devices i, ii in logic site 2; device n far away.
        for (const device& d : topo_.devices()) {
            if (d.role == device_role::csr && ls2_.is_root()) {
                ls2_ = d.loc.ancestor_at(hierarchy_level::logic_site);
            }
        }
        // Device ii: a CSR of logic site 2; device i: an AGG in the same
        // site (directly linked, so their alerts share one root cause).
        for (const device& d : topo_.devices()) {
            if (dev_ii_ == nullptr && ls2_.contains(d.loc) && d.role == device_role::csr) {
                dev_ii_ = &d;
            }
        }
        ASSERT_NE(dev_ii_, nullptr);
        const location site = dev_ii_->loc.ancestor_at(hierarchy_level::site);
        for (const device& d : topo_.devices()) {
            if (dev_i_ == nullptr && site.contains(d.loc) && d.role == device_role::agg) {
                dev_i_ = &d;
            }
        }
        ASSERT_NE(dev_i_, nullptr);
        for (const device& d : topo_.devices()) {
            if (!ls2_.contains(d.loc) && d.role == device_role::tor) {
                dev_n_ = &d;
                break;
            }
        }
        run_flood();
    }

    void raw(data_source src, std::string kind, const device& d, double metric) {
        raw_alert a;
        a.source = src;
        a.timestamp = now_;
        a.kind = std::move(kind);
        a.loc = d.loc;
        a.device = d.id;
        a.metric = metric;
        engine_->ingest(a, now_);
    }

    void syslog_raw(const char* pattern, const device& d) {
        raw_alert a;
        a.source = data_source::syslog;
        a.timestamp = now_;
        a.message = render_syslog(pattern, rand_);
        a.loc = d.loc;
        a.device = d.id;
        engine_->ingest(a, now_);
    }

    void run_flood() {
        for (int tick = 0; tick < 8; ++tick) {
            raw(data_source::ping, "packet loss", *dev_i_, 0.31);
            raw(data_source::ping, "packet loss", *dev_ii_, 0.28);
            raw(data_source::out_of_band, "device inaccessible", *dev_i_, 1.0);
            raw(data_source::snmp, "traffic congestion", *dev_ii_, 0.97);
            if (tick == 2) {
                syslog_raw("%LINK-3-UPDOWN: Interface {intf} changed state to down", *dev_i_);
                syslog_raw("%BGP-5-ADJCHANGE: neighbor {ip} Down BGP Notification sent "
                           "holdtimer expired",
                           *dev_ii_);
            }
            if (tick == 4) {
                syslog_raw("%PLATFORM-2-HW_ERROR: ASIC {num} parity error detected slot {num} "
                           "requires reset",
                           *dev_i_);
            }
            now_ += seconds(2);
            engine_->tick(now_, *state_);
        }
        for (int tick = 0; tick < 4; ++tick) {
            raw(data_source::internet_telemetry, "internet packet loss", *dev_n_, 0.12);
            if (tick == 1) {
                syslog_raw("%PORT-5-IF_DOWN: port {intf} is down transceiver signal lost",
                           *dev_n_);
                syslog_raw("%SYS-2-CRASH: process {proc} terminated unexpectedly core dumped "
                           "signal {num}",
                           *dev_n_);
            }
            now_ += seconds(2);
            engine_->tick(now_, *state_);
        }
        reports_ = engine_->open_reports(now_, *state_);
    }

    topology topo_;
    customer_registry customers_;
    alert_type_registry registry_;
    syslog_classifier syslog_ = syslog_classifier::train_from_catalog();
    std::unique_ptr<skynet_engine> engine_;
    std::unique_ptr<network_state> state_;
    rng rand_{2024};
    location ls2_;
    const device* dev_i_{nullptr};
    const device* dev_ii_{nullptr};
    const device* dev_n_{nullptr};
    sim_time now_{0};
    std::vector<incident_report> reports_;
};

TEST_F(Figure6, TwoIncidentsEmerge) {
    ASSERT_EQ(reports_.size(), 2u);
}

TEST_F(Figure6, BigIncidentCoversLogicSite2) {
    ASSERT_FALSE(reports_.empty());
    // The ranked-first incident is the logic-site failure.
    const incident& big = reports_.front().inc;
    EXPECT_TRUE(ls2_.contains(big.root) || big.root.contains(ls2_));
    // All three categories present, like the paper's incident 1 panel.
    EXPECT_GE(big.type_count(alert_category::failure), 1);
    EXPECT_GE(big.type_count(alert_category::abnormal), 2);
    EXPECT_GE(big.type_count(alert_category::root_cause), 2);
}

TEST_F(Figure6, SmallIncidentIsolatedAtDeviceN) {
    ASSERT_EQ(reports_.size(), 2u);
    const incident& small = reports_.back().inc;
    EXPECT_TRUE(small.root.contains(dev_n_->loc) || dev_n_->loc.contains(small.root));
    EXPECT_FALSE(ls2_.contains(small.root));
    // Its panel: 1 failure type (internet loss) + port down + software
    // error, matching the paper's incident 2.
    EXPECT_EQ(small.type_count(alert_category::failure), 1);
    EXPECT_GE(small.type_count(alert_category::root_cause), 2);
}

TEST_F(Figure6, RankingPutsTheBigIncidentFirst) {
    ASSERT_EQ(reports_.size(), 2u);
    EXPECT_GE(reports_[0].severity.score, reports_[1].severity.score);
}

TEST_F(Figure6, RenderMatchesFigureStructure) {
    ASSERT_FALSE(reports_.empty());
    const std::string text = reports_.front().render();
    EXPECT_NE(text.find("Failure alerts"), std::string::npos);
    EXPECT_NE(text.find("Abnormal alerts"), std::string::npos);
    EXPECT_NE(text.find("Root cause alerts"), std::string::npos);
    EXPECT_NE(text.find("packet loss"), std::string::npos);
    EXPECT_NE(text.find("Risk score:"), std::string::npos);
}

TEST_F(Figure6, DigestBoundedAndOrdered) {
    ASSERT_FALSE(reports_.empty());
    digest_options opts;
    opts.max_chars = 800;
    const std::string digest = incident_digest(reports_.front(), opts);
    EXPECT_LE(digest.size(), 800u);
    EXPECT_LT(digest.find("root cause alerts:"), digest.find("failure alerts:"));
}

}  // namespace
}  // namespace skynet
