// Fault-injection tests: the DSL parser, scripted and random dropout,
// same-seed determinism, and the headline property from ISSUE 3 — for
// any fault seed, a faulted replay never crashes, never emits an
// incident with an inverted time window, and (under the lossless
// `block` overflow policy) the sequential and region-sharded engines
// still produce bit-identical ranked reports, because the injector
// degrades the single ordered stream *before* ingest. Overflow
// shedding — the one parity-breaking fault — is exercised separately:
// the run must complete and count every drop in
// engine_metrics::degraded.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <span>

#include "skynet/core/pipeline.h"
#include "skynet/overload/controller.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/faults.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::small()) {
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 300, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() {
        return {&topo, &customers, &registry, &syslog};
    }
};

using scenario_factory = std::function<std::unique_ptr<scenario>()>;

/// Replays one deterministic simulated episode through `eng`, degrading
/// the stream through a fresh fault_injector built from `spec`. Because
/// the injector is seeded and consumes its rng in stream order, two
/// calls with the same (spec, scenario, seed) feed two engines the
/// *identical* faulted stream.
template <typename Engine>
fault_stats drive_faulted(world& w, Engine& eng, const fault_spec& spec,
                          const scenario_factory& make, sim_duration duration,
                          std::uint64_t seed) {
    fault_injector faults(spec);
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    sim.inject(make(), minutes(1), duration);
    sim.run_until_batched(
        minutes(1) + duration + minutes(1),
        [&](std::span<const traced_alert> batch) {
            const std::vector<traced_alert> degraded = faults.apply(batch);
            eng.ingest_batch(std::span<const traced_alert>(degraded));
        },
        [&](sim_time now) {
            const std::vector<traced_alert> due = faults.release(now);
            if (!due.empty()) eng.ingest_batch(std::span<const traced_alert>(due));
            eng.tick(now, sim.state());
        });
    const std::vector<traced_alert> held = faults.drain();
    if (!held.empty()) eng.ingest_batch(std::span<const traced_alert>(held));
    eng.finish(sim.clock().now(), sim.state());
    return faults.stats();
}

void expect_identical_reports(const std::vector<incident_report>& seq,
                              const std::vector<incident_report>& sharded) {
    ASSERT_EQ(seq.size(), sharded.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        EXPECT_EQ(seq[i].inc.id, sharded[i].inc.id);
        EXPECT_EQ(seq[i].inc.root.to_string(), sharded[i].inc.root.to_string());
        EXPECT_EQ(seq[i].inc.alerts.size(), sharded[i].inc.alerts.size());
        EXPECT_EQ(seq[i].severity.score, sharded[i].severity.score);
        EXPECT_EQ(seq[i].render(), sharded[i].render());
    }
}

void expect_no_inverted_windows(const std::vector<incident_report>& reports) {
    for (const incident_report& r : reports) {
        EXPECT_LE(r.inc.when.begin, r.inc.when.end)
            << "inverted incident window in " << r.inc.root.to_string();
    }
}

// ---------------------------------------------------------------- DSL

TEST(FaultSpecParseTest, FullSpecRoundTrips) {
    const fault_parse_result r = parse_fault_spec(
        "seed=3;dropout=0.2;drop:ping@60s+120s;dup=0.05;reorder=0.1;"
        "reorder_max=10s;skew=5s;skew_rate=0.3;corrupt=0.02;pressure=0.5");
    ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors.front().message);
    EXPECT_EQ(r.spec.seed, 3u);
    EXPECT_DOUBLE_EQ(r.spec.dropout_rate, 0.2);
    EXPECT_DOUBLE_EQ(r.spec.duplicate_rate, 0.05);
    EXPECT_DOUBLE_EQ(r.spec.reorder_rate, 0.1);
    EXPECT_EQ(r.spec.reorder_max_delay, seconds(10));
    EXPECT_EQ(r.spec.max_skew, seconds(5));
    EXPECT_DOUBLE_EQ(r.spec.skew_rate, 0.3);
    EXPECT_DOUBLE_EQ(r.spec.corrupt_rate, 0.02);
    EXPECT_DOUBLE_EQ(r.spec.pressure_rate, 0.5);
    ASSERT_EQ(r.spec.dropouts.size(), 1u);
    EXPECT_EQ(r.spec.dropouts[0].source, data_source::ping);
    EXPECT_EQ(r.spec.dropouts[0].from, seconds(60));
    EXPECT_EQ(r.spec.dropouts[0].duration, seconds(120));
    EXPECT_TRUE(r.spec.any());
}

TEST(FaultSpecParseTest, CommaSeparatorAndDurationSuffixes) {
    const fault_parse_result r = parse_fault_spec("skew=1500ms, reorder_max=2m, dup=0.5");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.spec.max_skew, 1500);
    EXPECT_EQ(r.spec.reorder_max_delay, minutes(2));
    EXPECT_DOUBLE_EQ(r.spec.duplicate_rate, 0.5);
}

TEST(FaultSpecParseTest, CollectsEveryBadClause) {
    const fault_parse_result r =
        parse_fault_spec("dropout=1.5;bogus=1;drop:nosuch@0s+1s;dup=0.1");
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.errors.size(), 3u);
    // Valid clauses still land so the caller can report-and-refuse.
    EXPECT_DOUBLE_EQ(r.spec.duplicate_rate, 0.1);
}

TEST(FaultSpecParseTest, EmptySpecIsValidAndInert) {
    const fault_parse_result r = parse_fault_spec("");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.spec.any());
}

TEST(FaultSpecTest, ValidateRejectsOutOfRangeRate) {
    fault_spec spec;
    spec.dropout_rate = 1.5;
    EXPECT_TRUE(spec.validate());
    EXPECT_THROW(fault_injector{spec}, skynet_error);
}

// ----------------------------------------------------------- injector

traced_alert probe(data_source source, sim_time at) {
    traced_alert t;
    t.alert.source = source;
    t.alert.kind = "packet loss";
    t.alert.timestamp = at;
    t.arrival = at;
    return t;
}

TEST(FaultInjectorTest, ScriptedDropoutWindowIsExact) {
    fault_spec spec;
    spec.dropouts.push_back(dropout_window{
        .source = data_source::ping, .from = seconds(60), .duration = seconds(120)});
    fault_injector faults(spec);

    std::vector<traced_alert> out;
    faults.feed(probe(data_source::ping, seconds(59)), out);    // before: passes
    faults.feed(probe(data_source::ping, seconds(60)), out);    // first dark instant
    faults.feed(probe(data_source::ping, seconds(179)), out);   // last dark instant
    faults.feed(probe(data_source::snmp, seconds(100)), out);   // other source: passes
    faults.feed(probe(data_source::ping, seconds(180)), out);   // window closed
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].arrival, seconds(59));
    EXPECT_EQ(out[1].alert.source, data_source::snmp);
    EXPECT_EQ(out[2].arrival, seconds(180));
    EXPECT_EQ(faults.stats().dropped_dropout, 2u);
    EXPECT_EQ(faults.stats().sources_in_dropout, 1u);
}

TEST(FaultInjectorTest, RandomDropoutIsOrderIndependent) {
    // The per-(source, window) coin is a stateless hash, so consuming
    // extra rng draws (here: the skew path on other alerts) must not
    // change which windows are dark.
    fault_spec spec;
    spec.seed = 11;
    spec.dropout_rate = 0.5;
    const auto dark_windows = [&](bool with_skew) {
        fault_spec s = spec;
        if (with_skew) {
            s.skew_rate = 1.0;
            s.max_skew = seconds(1);
        }
        fault_injector faults(s);
        std::vector<bool> dark;
        for (int w = 0; w < 32; ++w) {
            std::vector<traced_alert> out;
            faults.feed(probe(data_source::snmp, minutes(w)), out);
            dark.push_back(out.empty());
        }
        return dark;
    };
    EXPECT_EQ(dark_windows(false), dark_windows(true));
}

TEST(FaultInjectorTest, SameSeedSameStream) {
    fault_spec spec;
    spec.seed = 5;
    spec.duplicate_rate = 0.3;
    spec.reorder_rate = 0.3;
    spec.reorder_max_delay = seconds(4);
    spec.skew_rate = 0.5;
    spec.max_skew = seconds(2);
    spec.corrupt_rate = 0.2;

    const auto run = [&] {
        fault_injector faults(spec);
        std::vector<traced_alert> out;
        for (int i = 0; i < 200; ++i) {
            faults.feed(probe(data_source::snmp, seconds(i)), out);
        }
        for (const traced_alert& t : faults.drain()) out.push_back(t);
        return out;
    };
    const std::vector<traced_alert> a = run();
    const std::vector<traced_alert> b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].alert.timestamp, b[i].alert.timestamp);
        EXPECT_EQ(a[i].alert.kind, b[i].alert.kind);
    }
}

TEST(FaultInjectorTest, ReorderHoldsThenReleasesEverything) {
    // Every alert is held for 1..30s; feed() re-emits held alerts whose
    // delay elapsed before the current delivery, release() flushes the
    // rest. Nothing is lost and the combined output stays monotone.
    fault_spec spec;
    spec.reorder_rate = 1.0;
    spec.reorder_max_delay = seconds(30);
    fault_injector faults(spec);

    std::vector<traced_alert> out;
    for (int i = 0; i < 10; ++i) faults.feed(probe(data_source::snmp, seconds(i)), out);
    EXPECT_EQ(faults.stats().reordered, 10u);
    EXPECT_LT(out.size(), 10u);  // at least the last alert is still held

    for (const traced_alert& t : faults.release(minutes(5))) out.push_back(t);
    EXPECT_EQ(out.size(), 10u);
    // Re-delivered in due order: arrivals must be monotone.
    for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_LE(out[i - 1].arrival, out[i].arrival);
    }
    EXPECT_TRUE(faults.drain().empty());
}

TEST(FaultInjectorTest, PressureHookIsIndependentOfStream) {
    fault_spec spec;
    spec.seed = 9;
    spec.pressure_rate = 0.5;
    spec.duplicate_rate = 0.5;

    fault_injector a(spec);
    fault_injector b(spec);
    auto hook_a = a.queue_pressure_hook();
    auto hook_b = b.queue_pressure_hook();
    ASSERT_TRUE(hook_a && hook_b);
    // Draining stream rng draws on `a` only must not desync the hooks.
    std::vector<traced_alert> sink;
    for (int i = 0; i < 50; ++i) a.feed(probe(data_source::snmp, seconds(i)), sink);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(hook_a(), hook_b());

    fault_spec inert;
    fault_injector c(inert);
    EXPECT_FALSE(c.queue_pressure_hook());  // no pressure clause, no hook
}

// ----------------------------------------------------- e2e properties

/// ISSUE 3 headline property: under the lossless `block` policy the
/// faulted stream reaches both engines identically, so sequential and
/// 4-shard runs must agree bit-for-bit — for every fault seed.
TEST(FaultedParityTest, SequentialMatchesShardedForThreeSeeds) {
    world w;
    fault_spec spec;
    spec.dropout_rate = 0.2;
    spec.duplicate_rate = 0.05;
    spec.reorder_rate = 0.1;
    spec.reorder_max_delay = seconds(10);
    spec.skew_rate = 0.3;
    spec.max_skew = seconds(5);
    spec.corrupt_rate = 0.02;

    for (const std::uint64_t fault_seed : {3u, 17u, 4242u}) {
        SCOPED_TRACE("fault seed " + std::to_string(fault_seed));
        spec.seed = fault_seed;
        const scenario_factory make = [&] {
            rng srand(82);
            return make_security_ddos(w.topo, srand, 3);
        };

        skynet_config cfg;
        cfg.loc.deterministic_ids = true;
        skynet_engine seq(w.deps(), cfg);
        const fault_stats seq_faults = drive_faulted(w, seq, spec, make, minutes(5), 83);
        const std::vector<incident_report> seq_reports = seq.take_reports();

        sharded_config scfg;
        scfg.shards = 4;
        sharded_engine par(w.deps(), scfg);
        const fault_stats par_faults = drive_faulted(w, par, spec, make, minutes(5), 83);
        const std::vector<incident_report> par_reports = par.take_reports();

        // The two injectors saw the same stream and made the same calls.
        EXPECT_EQ(seq_faults.alerts_in, par_faults.alerts_in);
        EXPECT_EQ(seq_faults.dropped_dropout, par_faults.dropped_dropout);
        EXPECT_EQ(seq_faults.corrupted, par_faults.corrupted);

        expect_no_inverted_windows(seq_reports);
        expect_no_inverted_windows(par_reports);
        expect_identical_reports(seq_reports, par_reports);
        EXPECT_EQ(seq.preprocessing_stats(), par.preprocessing_stats());
        // Corruption exercised the reject path on both engines equally.
        EXPECT_EQ(seq.metrics().degraded.alerts_rejected,
                  par.metrics().degraded.alerts_rejected);
    }
}

TEST(FaultedParityTest, HeavyCorruptionNeverCrashesOrInvertsWindows) {
    world w(generator_params::tiny());
    fault_spec spec;
    spec.seed = 99;
    spec.corrupt_rate = 0.5;
    spec.skew_rate = 1.0;
    spec.max_skew = minutes(2);
    spec.reorder_rate = 0.3;

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine eng(w.deps(), cfg);
    const scenario_factory make = [&] {
        rng srand(7);
        return make_security_ddos(w.topo, srand, 1);
    };
    const fault_stats fs = drive_faulted(w, eng, spec, make, minutes(4), 31);
    EXPECT_GT(fs.corrupted, 0u);
    expect_no_inverted_windows(eng.take_reports());
    EXPECT_GT(eng.metrics().degraded.alerts_rejected, 0u);
}

/// The acceptance scenario: dropout + reorder + forced queue pressure on
/// a multi-region flood, with a shedding overflow policy. The run must
/// complete, count every shed alert, and render the degradation.
TEST(FaultedOverflowTest, MultiRegionFloodUnderPressureCompletes) {
    world w;
    fault_spec spec;
    spec.seed = 13;
    spec.dropout_rate = 0.15;
    spec.reorder_rate = 0.1;
    spec.pressure_rate = 0.6;

    for (const overflow_policy policy :
         {overflow_policy::reject, overflow_policy::drop_oldest}) {
        SCOPED_TRACE(std::string(to_string(policy)));
        fault_injector pressure(spec);
        sharded_config scfg;
        scfg.shards = 4;
        scfg.overflow = policy;
        scfg.backlog_batches = 2;
        scfg.max_ingest_batch = 4;
        scfg.force_full = pressure.queue_pressure_hook();
        sharded_engine eng(w.deps(), scfg);

        const scenario_factory make = [&] {
            rng srand(82);
            return make_security_ddos(w.topo, srand, 3);
        };
        drive_faulted(w, eng, spec, make, minutes(5), 83);
        const std::vector<incident_report> reports = eng.take_reports();
        expect_no_inverted_windows(reports);

        const engine_metrics m = eng.metrics();
        EXPECT_GT(m.degraded.alerts_dropped_overflow, 0u);
        EXPECT_GT(m.enqueue_full_waits, 0u);
        EXPECT_NE(m.render().find("degraded"), std::string::npos);
    }
}

/// Exception-safety at every stage boundary: malformed alerts that slip
/// past an admission guard (closed breakers deliberately pass them — the
/// engine owns rejection) must be rejected with a counted reason by both
/// engine shapes, never abort, and never skew the parity invariant.
TEST(MalformedAlertTest, GarbageIsRejectedWithReasonNeverAborts) {
    world w;
    overload::controller_config ccfg;
    ccfg.admission.max_alerts = 100;  // generous: nothing shed, all garbage reaches the engine
    ccfg.breaker.enabled = true;      // default min_samples: stays closed for one batch

    const location good_loc = w.topo.device_at(0).loc;
    const auto base = [&](data_source src, std::string kind) {
        raw_alert a;
        a.source = src;
        a.kind = std::move(kind);
        a.timestamp = seconds(1);
        a.loc = good_loc;
        a.device = static_cast<device_id>(0);
        return a;
    };
    std::vector<raw_alert> batch;
    batch.push_back(base(data_source::snmp, "no such kind"));  // unknown type id
    raw_alert dangling_loc = base(data_source::snmp, "link down");
    dangling_loc.loc_id = static_cast<location_id>(1u << 30);  // garbled interned id
    batch.push_back(dangling_loc);
    raw_alert dangling_dev = base(data_source::snmp, "link down");
    dangling_dev.device = static_cast<device_id>(999999);
    batch.push_back(dangling_dev);
    raw_alert nan_metric = base(data_source::ping, "packet loss");
    nan_metric.metric = std::nan("");
    batch.push_back(nan_metric);
    raw_alert pre_epoch = base(data_source::ping, "packet loss");
    pre_epoch.timestamp = -5;
    batch.push_back(pre_epoch);
    batch.push_back(base(data_source::snmp, "link down"));  // control: one clean alert

    const auto run = [&](auto& eng) {
        overload::controller guard(ccfg, &w.topo, &w.registry);
        network_state idle(&w.topo, &w.customers);
        const std::vector<raw_alert> admitted = guard.admit(batch, seconds(1));
        EXPECT_EQ(admitted.size(), batch.size()) << "closed breakers must pass everything";
        eng.ingest_batch(std::span<const raw_alert>(admitted), seconds(1));
        eng.tick(seconds(2), idle);
        guard.on_tick(seconds(2));
        eng.finish(seconds(4), idle);
    };

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine seq(w.deps(), cfg);
    run(seq);

    sharded_config scfg;
    scfg.shards = 4;
    sharded_engine par(w.deps(), scfg);
    run(par);

    // 4 structurally malformed + 1 unclassifiable, counted identically.
    EXPECT_EQ(seq.metrics().degraded.alerts_rejected, 4u);
    EXPECT_EQ(par.metrics().degraded.alerts_rejected, 4u);
    EXPECT_EQ(seq.preprocessing_stats().dropped_unclassified, 1);
    EXPECT_EQ(seq.preprocessing_stats(), par.preprocessing_stats());
    expect_identical_reports(seq.take_reports(), par.take_reports());
}

TEST(DegradedMetricsTest, RenderOmitsBlockWhenClean) {
    engine_metrics m;
    EXPECT_EQ(m.render().find("degraded"), std::string::npos);
    m.degraded.alerts_rejected = 3;
    EXPECT_NE(m.render().find("degraded"), std::string::npos);
}

}  // namespace
}  // namespace skynet
