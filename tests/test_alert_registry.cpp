// Unit tests for the alert type registry and built-in catalog.
#include <gtest/gtest.h>

#include "skynet/alert/type_registry.h"
#include "skynet/common/error.h"

namespace skynet {
namespace {

TEST(TypeRegistryTest, RegisterAndFind) {
    alert_type_registry reg;
    const alert_type_id id =
        reg.register_type(data_source::ping, "packet loss", alert_category::failure);
    EXPECT_EQ(reg.find(data_source::ping, "packet loss"), id);
    EXPECT_EQ(reg.at(id).name, "packet loss");
    EXPECT_EQ(reg.at(id).category, alert_category::failure);
    EXPECT_EQ(reg.find(data_source::snmp, "packet loss"), std::nullopt);
}

TEST(TypeRegistryTest, ReRegisterSameCategoryIsIdempotent) {
    alert_type_registry reg;
    const auto a = reg.register_type(data_source::ping, "packet loss", alert_category::failure);
    const auto b = reg.register_type(data_source::ping, "packet loss", alert_category::failure);
    EXPECT_EQ(a, b);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(TypeRegistryTest, ConflictingCategoryThrows) {
    alert_type_registry reg;
    (void)reg.register_type(data_source::ping, "packet loss", alert_category::failure);
    EXPECT_THROW(
        (void)reg.register_type(data_source::ping, "packet loss", alert_category::abnormal),
        skynet_error);
}

TEST(TypeRegistryTest, SameNameDifferentSourcesAreDistinct) {
    alert_type_registry reg;
    const auto a = reg.register_type(data_source::snmp, "link down", alert_category::root_cause);
    const auto b = reg.register_type(data_source::syslog, "link down", alert_category::root_cause);
    EXPECT_NE(a, b);
}

TEST(TypeRegistryTest, BadIdThrows) {
    alert_type_registry reg;
    EXPECT_THROW((void)reg.at(0), skynet_error);
}

TEST(BuiltinCatalogTest, CoversEverySource) {
    const alert_type_registry reg = alert_type_registry::with_builtin_catalog();
    for (data_source src : all_data_sources()) {
        bool any = false;
        for (const alert_type& t : reg.types()) {
            if (t.source == src) any = true;
        }
        EXPECT_TRUE(any) << "no types for " << to_string(src);
    }
}

TEST(BuiltinCatalogTest, Figure6TypesPresent) {
    const alert_type_registry reg = alert_type_registry::with_builtin_catalog();
    // The running example's types with their categories.
    struct expected {
        data_source src;
        const char* name;
        alert_category cat;
    };
    const expected cases[] = {
        {data_source::ping, "packet loss", alert_category::failure},
        {data_source::out_of_band, "device inaccessible", alert_category::abnormal},
        {data_source::syslog, "traffic blackhole", alert_category::abnormal},
        {data_source::syslog, "link flapping", alert_category::abnormal},
        {data_source::syslog, "bgp peer down", alert_category::abnormal},
        {data_source::syslog, "bgp link jitter", alert_category::root_cause},
        {data_source::syslog, "hardware error", alert_category::root_cause},
        {data_source::syslog, "out of memory", alert_category::root_cause},
        {data_source::snmp, "traffic congestion", alert_category::root_cause},
        {data_source::snmp, "link down", alert_category::root_cause},
        {data_source::syslog, "port down", alert_category::root_cause},
        {data_source::syslog, "software error", alert_category::root_cause},
    };
    for (const expected& e : cases) {
        const auto id = reg.find(e.src, e.name);
        ASSERT_TRUE(id.has_value()) << e.name;
        EXPECT_EQ(reg.at(*id).category, e.cat) << e.name;
    }
}

TEST(BuiltinCatalogTest, FailureTypesAreBehavioral) {
    // Failure alerts are about packet behaviour (loss, latency, bit
    // flips), never about entities — a structural property of the
    // categorization (§4.2).
    const alert_type_registry reg = alert_type_registry::with_builtin_catalog();
    for (const alert_type& t : reg.types()) {
        if (t.category != alert_category::failure) continue;
        const bool behavioural = t.name.find("loss") != std::string::npos ||
                                 t.name.find("latency") != std::string::npos ||
                                 t.name.find("unreachable") != std::string::npos ||
                                 t.name.find("bit flip") != std::string::npos ||
                                 t.name.find("discrepancy") != std::string::npos;
        EXPECT_TRUE(behavioural) << t.name;
    }
}

TEST(DataSourceTest, Names) {
    EXPECT_EQ(to_string(data_source::ping), "Ping");
    EXPECT_EQ(to_string(data_source::out_of_band), "Out-of-band");
    EXPECT_EQ(all_data_sources().size(), data_source_count);
}

TEST(AlertCategoryTest, Names) {
    EXPECT_EQ(to_string(alert_category::failure), "failure");
    EXPECT_EQ(to_string(alert_category::abnormal), "abnormal");
    EXPECT_EQ(to_string(alert_category::root_cause), "root cause");
}

}  // namespace
}  // namespace skynet
