// Unit tests for dynamic network state: health, circuit sets, traffic,
// probing and traffic shift.
#include <gtest/gtest.h>

#include "skynet/common/error.h"
#include "skynet/sim/network_state.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

/// Two ToRs, two AGGs forming a group, one CSR; tor1 reaches csr via
/// either agg.
struct fabric {
    topology topo;
    customer_registry customers;
    device_id tor1, tor2, agg1, agg2, csr;
    circuit_set_id t1a1, t1a2, t2a1, a1c, a2c;

    fabric() {
        const location cl{"R", "C", "LS", "S", "CL"};
        const location site{"R", "C", "LS", "S"};
        tor1 = topo.add_device("tor1", device_role::tor, cl.child("tor1"));
        tor2 = topo.add_device("tor2", device_role::tor, cl.child("tor2"));
        agg1 = topo.add_device("agg1", device_role::agg, cl.child("agg1"));
        agg2 = topo.add_device("agg2", device_role::agg, cl.child("agg2"));
        csr = topo.add_device("csr1", device_role::csr, site.child("csr1"));
        const group_id aggs = topo.add_group("CL-AGG");
        topo.add_to_group(aggs, agg1);
        topo.add_to_group(aggs, agg2);

        t1a1 = topo.add_circuit_set("t1a1", tor1, agg1);
        t1a2 = topo.add_circuit_set("t1a2", tor1, agg2);
        t2a1 = topo.add_circuit_set("t2a1", tor2, agg1);
        a1c = topo.add_circuit_set("a1c", agg1, csr);
        a2c = topo.add_circuit_set("a2c", agg2, csr);
        (void)topo.add_link(tor1, agg1, t1a1, 100.0);
        (void)topo.add_link(tor1, agg2, t1a2, 100.0);
        (void)topo.add_link(tor2, agg1, t2a1, 100.0);
        (void)topo.add_link(agg1, csr, a1c, 100.0);
        (void)topo.add_link(agg1, csr, a1c, 100.0);
        (void)topo.add_link(agg2, csr, a2c, 100.0);
        (void)topo.add_link(agg2, csr, a2c, 100.0);
    }
};

TEST(NetworkStateTest, InitialStateHealthy) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    for (const device& d : f.topo.devices()) {
        EXPECT_TRUE(state.device_state(d.id).alive);
    }
    for (const link& l : f.topo.links()) {
        EXPECT_TRUE(state.link_usable(l.id));
    }
    EXPECT_DOUBLE_EQ(state.break_ratio(f.a1c), 0.0);
}

TEST(NetworkStateTest, NullPointersRejected) {
    fabric f;
    EXPECT_THROW(network_state(nullptr, &f.customers), skynet_error);
    EXPECT_THROW(network_state(&f.topo, nullptr), skynet_error);
}

TEST(NetworkStateTest, LinkUsableRespectsEndpointHealth) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    const link_id lid = f.topo.circuit_set_at(f.t1a1).circuits.front();
    EXPECT_TRUE(state.link_usable(lid));
    state.device_state(f.agg1).alive = false;
    EXPECT_FALSE(state.link_usable(lid));
    state.device_state(f.agg1).alive = true;
    state.device_state(f.agg1).isolated = true;
    EXPECT_FALSE(state.link_usable(lid));
}

TEST(NetworkStateTest, BreakRatioCountsDownCircuits) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    const circuit_set& cs = f.topo.circuit_set_at(f.a1c);
    ASSERT_EQ(cs.circuits.size(), 2u);
    state.link_state(cs.circuits[0]).up = false;
    EXPECT_DOUBLE_EQ(state.break_ratio(f.a1c), 0.5);
    EXPECT_DOUBLE_EQ(state.live_capacity_gbps(f.a1c), 100.0);
}

TEST(NetworkStateTest, UtilizationAndCongestion) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.set_offered_gbps(f.a1c, 100.0);  // capacity 200 -> util 0.5
    EXPECT_DOUBLE_EQ(state.utilization(f.a1c), 0.5);
    EXPECT_DOUBLE_EQ(state.congestion_loss(f.a1c), 0.0);

    state.set_offered_gbps(f.a1c, 190.0);  // util 0.95, past the knee
    EXPECT_GT(state.congestion_loss(f.a1c), 0.0);
    EXPECT_LT(state.congestion_loss(f.a1c), 0.05);

    state.set_offered_gbps(f.a1c, 400.0);  // util 2.0, heavy drops
    EXPECT_GT(state.congestion_loss(f.a1c), 0.4);
    EXPECT_LE(state.congestion_loss(f.a1c), 0.99);
}

TEST(NetworkStateTest, UtilizationWithZeroCapacity) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    for (link_id lid : f.topo.circuit_set_at(f.a1c).circuits) {
        state.link_state(lid).up = false;
    }
    state.set_offered_gbps(f.a1c, 10.0);
    EXPECT_GT(state.utilization(f.a1c), 10.0);  // sentinel: everything drops
    EXPECT_GT(state.congestion_loss(f.a1c), 0.9);
}

TEST(NetworkStateTest, TraversalLossCombinesCauses) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.set_offered_gbps(f.a1c, 0.0);
    EXPECT_DOUBLE_EQ(state.traversal_loss(f.a1c), 0.0);
    state.link_state(f.topo.circuit_set_at(f.a1c).circuits[0]).corruption_loss = 0.1;
    EXPECT_NEAR(state.traversal_loss(f.a1c), 0.05, 1e-9);  // mean over 2 circuits
    state.device_state(f.agg1).silent_loss = 0.2;
    EXPECT_NEAR(state.traversal_loss(f.a1c), 0.25, 1e-9);
}

TEST(NetworkStateTest, ProbeFindsPathAndAccumulatesLoss) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.1);
    const auto r = state.probe(f.tor1, f.csr);
    ASSERT_TRUE(r.reachable);
    EXPECT_EQ(r.hops.size(), 3u);  // tor -> agg -> csr
    EXPECT_NEAR(r.loss, 0.0, 1e-9);

    // Gray failure on the first-hop agg shows up in the path loss.
    state.device_state(f.agg1).silent_loss = 0.3;
    state.device_state(f.agg2).silent_loss = 0.3;
    const auto r2 = state.probe(f.tor1, f.csr);
    ASSERT_TRUE(r2.reachable);
    EXPECT_GT(r2.loss, 0.2);
}

TEST(NetworkStateTest, ProbeReroutesAroundDeadDevices) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.device_state(f.agg1).alive = false;
    const auto r = state.probe(f.tor1, f.csr);
    ASSERT_TRUE(r.reachable);  // via agg2
    EXPECT_EQ(r.hops[1], f.agg2);
}

TEST(NetworkStateTest, ProbeUnreachableWhenCut) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.device_state(f.agg1).alive = false;
    state.device_state(f.agg2).alive = false;
    EXPECT_FALSE(state.probe(f.tor1, f.csr).reachable);
    // Dead endpoints are unreachable by definition.
    state.device_state(f.agg1).alive = true;
    state.device_state(f.csr).alive = false;
    EXPECT_FALSE(state.probe(f.tor1, f.csr).reachable);
}

TEST(NetworkStateTest, ProbeSelfIsTrivial) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    const auto r = state.probe(f.tor1, f.tor1);
    EXPECT_TRUE(r.reachable);
    EXPECT_DOUBLE_EQ(r.loss, 0.0);
}

TEST(NetworkStateTest, RepresentativePrefersAliveTor) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    const location cluster{"R", "C", "LS", "S", "CL"};
    EXPECT_EQ(state.representative(cluster), f.tor1);
    state.device_state(f.tor1).alive = false;
    EXPECT_EQ(state.representative(cluster), f.tor2);
    EXPECT_EQ(state.representative(location{"Nowhere"}), std::nullopt);
}

TEST(NetworkStateTest, ResetTrafficLoadsBaseline) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.45);
    EXPECT_NEAR(state.utilization(f.a1c), 0.45, 1e-9);
}

TEST(NetworkStateTest, TrafficShiftSpillsToGroupSibling) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.reset_traffic(0.45);
    const double before = state.offered_gbps(f.t1a2);

    // Kill tor1<->agg1 entirely: its load must move to tor1<->agg2
    // (agg1 and agg2 are interchangeable group peers).
    for (link_id lid : f.topo.circuit_set_at(f.t1a1).circuits) {
        state.link_state(lid).up = false;
    }
    state.apply_traffic_shift();
    EXPECT_GT(state.offered_gbps(f.t1a2), before);

    // Healing restores baseline.
    for (link_id lid : f.topo.circuit_set_at(f.t1a1).circuits) {
        state.link_state(lid).up = true;
    }
    state.apply_traffic_shift();
    EXPECT_NEAR(state.offered_gbps(f.t1a2), before, 1e-9);
}

TEST(NetworkStateTest, SlaOverloadRatio) {
    fabric f;
    customer_registry customers;
    const customer_id c = customers.add_customer("acme", customer_tier::premium);
    customers.attach(c, f.a1c);
    const sla_flow_id f1 = customers.add_sla_flow(c, f.a1c, 2.0);
    const sla_flow_id f2 = customers.add_sla_flow(c, f.a1c, 2.0);
    network_state state(&f.topo, &customers);

    EXPECT_DOUBLE_EQ(state.sla_overload_ratio(f.a1c), 0.0);
    state.set_flow_rate_gbps(f1, 3.0);
    EXPECT_DOUBLE_EQ(state.sla_overload_ratio(f.a1c), 0.5);
    state.set_flow_rate_gbps(f2, 2.5);
    EXPECT_DOUBLE_EQ(state.sla_overload_ratio(f.a1c), 1.0);

    const std::vector<circuit_set_id> sets{f.a1c};
    EXPECT_NEAR(state.max_sla_overload(sets), 0.5, 1e-9);  // 3.0/2.0 - 1
}

TEST(NetworkStateTest, RouteIncidentsScopedClear) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    state.route_incidents().push_back(
        route_incident{.what = route_incident::kind::leak, .where = location{"R", "C"}, .since = 0});
    state.route_incidents().push_back(
        route_incident{.what = route_incident::kind::churn, .where = location{"X"}, .since = 0});
    state.clear_route_incidents(location{"R"});
    ASSERT_EQ(state.route_incidents().size(), 1u);
    EXPECT_EQ(state.route_incidents()[0].where, location{"X"});
}

TEST(NetworkStateTest, CopyIsIndependentSnapshot) {
    fabric f;
    network_state state(&f.topo, &f.customers);
    network_state snapshot = state;
    state.device_state(f.tor1).alive = false;
    EXPECT_TRUE(snapshot.device_state(f.tor1).alive);
}

}  // namespace
}  // namespace skynet
