// Bounded MPSC batch-handoff queue: the thief-to-owner return channel.
//
// Correctness bar: per-producer FIFO (a producer's pushes are popped in
// push order), nothing lost, nothing duplicated, and a popped value
// happens-after everything its producer wrote before pushing — the
// property the stealing protocol leans on when an owner receives a
// thief-prepared batch. Run under the tsan preset these tests are the
// data-race proof for the Vyukov slot-sequence protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "skynet/common/mpsc_queue.h"

namespace skynet {
namespace {

TEST(MpscQueueTest, SingleThreadFifoRoundTrip) {
    mpsc_queue<int> q(4);
    EXPECT_EQ(q.capacity(), 4u);
    for (int i = 0; i < 4; ++i) {
        int v = i;
        EXPECT_TRUE(q.try_push(v));
    }
    int overflow = 99;
    EXPECT_FALSE(q.try_push(overflow));  // full
    for (int i = 0; i < 4; ++i) {
        int out = -1;
        ASSERT_TRUE(q.try_pop(out));
        EXPECT_EQ(out, i);
    }
    int empty = -1;
    EXPECT_FALSE(q.try_pop(empty));
}

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(mpsc_queue<int>(1).capacity(), 1u);
    EXPECT_EQ(mpsc_queue<int>(3).capacity(), 4u);
    EXPECT_EQ(mpsc_queue<int>(9).capacity(), 16u);
}

TEST(MpscQueueTest, ManyProducersNothingLostPerProducerFifo) {
    constexpr std::uint64_t kProducers = 6;
    constexpr std::uint64_t kPerProducer = 2000;
    // Tight ring: producers hit the full-queue park path constantly.
    mpsc_queue<std::uint64_t> q(8);

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::uint64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                q.push(p * kPerProducer + i);  // blocking push
            }
        });
    }

    std::vector<std::uint64_t> next(kProducers, 0);
    for (std::uint64_t received = 0; received < kProducers * kPerProducer; ++received) {
        std::uint64_t v = 0;
        q.pop_blocking(v);
        const std::uint64_t p = v / kPerProducer;
        const std::uint64_t seq = v % kPerProducer;
        ASSERT_LT(p, kProducers);
        // Per-producer FIFO and exactly-once delivery in one check.
        ASSERT_EQ(seq, next[p]) << "producer " << p;
        next[p] = seq + 1;
    }
    for (std::uint64_t p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
    for (std::thread& t : producers) t.join();

    std::uint64_t leftover = 0;
    EXPECT_FALSE(q.try_pop(leftover));
}

TEST(MpscQueueTest, PushHappensBeforePop) {
    // The handoff guarantee: every write the producer made before push()
    // is visible to the consumer after pop. A vector payload makes tsan
    // check the non-atomic bytes, not just the slot sequence word.
    struct payload {
        std::vector<std::uint64_t> data;
    };
    constexpr std::uint64_t kItems = 500;
    mpsc_queue<payload> q(4);
    std::thread producer([&q] {
        for (std::uint64_t i = 0; i < kItems; ++i) {
            payload p;
            p.data.assign(8, i);
            q.push(std::move(p));
        }
    });
    for (std::uint64_t i = 0; i < kItems; ++i) {
        payload out;
        q.pop_blocking(out);
        ASSERT_EQ(out.data.size(), 8u);
        for (const std::uint64_t v : out.data) ASSERT_EQ(v, i);
    }
    producer.join();
}

}  // namespace
}  // namespace skynet
