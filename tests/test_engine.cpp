// Tests for the discrete-event simulation engine: scheduling, alert
// delivery ordering, legacy SNMP delays, ground-truth records.
#include <gtest/gtest.h>

#include "skynet/common/error.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo;
    customer_registry customers;

    world() {
        generator_params p = generator_params::tiny();
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(3);
        customers = customer_registry::generate(topo, 50, crand);
    }
};

TEST(EngineTest, HealthyNetworkIsQuiet) {
    world w;
    simulation_engine engine(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 5});
    engine.add_default_monitors();
    EXPECT_EQ(engine.monitor_count(), data_source_count);

    int alerts = 0;
    engine.run_until(minutes(2), [&alerts](const raw_alert&, sim_time) { ++alerts; });
    EXPECT_EQ(alerts, 0);
    EXPECT_EQ(engine.clock().now(), minutes(2));
}

TEST(EngineTest, ScenarioProducesAlertFlood) {
    world w;
    simulation_engine engine(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 6});
    engine.add_default_monitors();
    rng srand(7);
    engine.inject(make_infrastructure_failure(w.topo, srand, true), minutes(1), minutes(5));

    int alerts = 0;
    engine.run_until(minutes(8), [&alerts](const raw_alert&, sim_time) { ++alerts; });
    EXPECT_GT(alerts, 50) << "a severe failure must flood alerts";
    ASSERT_EQ(engine.ground_truth().size(), 1u);
    EXPECT_TRUE(engine.ground_truth()[0].severe);
    EXPECT_EQ(engine.ground_truth()[0].active.begin, minutes(1));
}

TEST(EngineTest, AlertsArriveInOrder) {
    world w;
    simulation_engine engine(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 8});
    engine.add_default_monitors();
    rng srand(9);
    engine.inject(make_random_scenario(w.topo, srand, true), seconds(30), minutes(3));

    sim_time last = 0;
    engine.run_until(minutes(6), [&last](const raw_alert&, sim_time arrival) {
        EXPECT_GE(arrival, last);
        last = arrival;
    });
}

TEST(EngineTest, ArrivalNeverBeforeGeneration) {
    world w;
    simulation_engine engine(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 10});
    engine.add_default_monitors();
    rng srand(11);
    engine.inject(make_link_failure(w.topo, srand, true), seconds(10), minutes(2));
    engine.run_until(minutes(4), [](const raw_alert& a, sim_time arrival) {
        EXPECT_GE(arrival, a.timestamp);
        EXPECT_LE(arrival - a.timestamp, minutes(2) + seconds(2));
    });
}

TEST(EngineTest, LegacySnmpDelaysDelivery) {
    // All devices legacy: SNMP alerts must show a substantial
    // generation-to-arrival delay (the §4.2 motivation for 5-minute node
    // timeouts).
    generator_params p = generator_params::tiny();
    p.legacy_snmp_fraction = 1.0;
    topology topo = generate_topology(p);
    rng crand(3);
    customer_registry customers = customer_registry::generate(topo, 20, crand);

    simulation_engine engine(&topo, &customers, engine_params{.tick = seconds(2), .seed = 12});
    engine.add_default_monitors();
    rng srand(13);
    engine.inject(make_link_failure(topo, srand, true), seconds(10), minutes(3));

    sim_duration max_snmp_delay = 0;
    engine.run_until(minutes(6), [&max_snmp_delay](const raw_alert& a, sim_time arrival) {
        if (a.source == data_source::snmp) {
            max_snmp_delay = std::max(max_snmp_delay, arrival - a.timestamp);
        }
    });
    EXPECT_GT(max_snmp_delay, seconds(19));
    EXPECT_LE(max_snmp_delay, minutes(2));
}

TEST(EngineTest, TickHookRunsEveryTick) {
    world w;
    simulation_engine engine(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 14});
    int ticks = 0;
    engine.run_until(seconds(20), nullptr, [&ticks](sim_time) { ++ticks; });
    EXPECT_EQ(ticks, 10);
}

TEST(EngineTest, StateHealsAfterScenarioEnds) {
    world w;
    simulation_engine engine(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 15});
    engine.add_default_monitors();
    rng srand(16);
    engine.inject(make_infrastructure_failure(w.topo, srand, false), seconds(10), minutes(1));
    engine.run_until(minutes(3), nullptr);
    for (const device& d : w.topo.devices()) {
        EXPECT_TRUE(engine.state().device_state(d.id).alive) << d.name;
    }
}

TEST(EngineTest, NullScenarioRejected) {
    world w;
    simulation_engine engine(&w.topo, &w.customers);
    EXPECT_THROW(engine.inject(nullptr, 0, minutes(1)), skynet_error);
}

TEST(EngineTest, DeterministicReplay) {
    auto run = [] {
        world w;
        simulation_engine engine(&w.topo, &w.customers,
                                 engine_params{.tick = seconds(2), .seed = 99});
        engine.add_default_monitors();
        rng srand(100);
        engine.inject(make_random_scenario(w.topo, srand, true), seconds(20), minutes(2));
        std::vector<std::string> log;
        engine.run_until(minutes(4), [&log](const raw_alert& a, sim_time arrival) {
            log.push_back(std::to_string(arrival) + "|" + std::string(to_string(a.source)) + "|" +
                          a.kind + "|" + a.loc.to_string());
        });
        return log;
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace skynet
