// Tests for the twelve simulated monitoring tools, including the §2.1
// per-tool blind spots that make multi-source integration necessary.
#include <gtest/gtest.h>

#include <algorithm>

#include "skynet/monitors/device_monitors.h"
#include "skynet/monitors/plane_monitors.h"
#include "skynet/monitors/probing.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo = generate_topology(generator_params::tiny());
    customer_registry customers;
    network_state state{&topo, &customers};
    rng rand{21};

    std::vector<raw_alert> poll(monitor_tool& tool, sim_time now = seconds(10)) {
        std::vector<raw_alert> out;
        tool.poll(state, now, rand, out);
        return out;
    }

    device_id any(device_role role) {
        for (const device& d : topo.devices()) {
            if (d.role == role) return d.id;
        }
        throw std::runtime_error("role not found");
    }

    bool has_kind(const std::vector<raw_alert>& alerts, std::string_view kind) {
        return std::any_of(alerts.begin(), alerts.end(),
                           [kind](const raw_alert& a) { return a.kind == kind; });
    }
};

TEST(MonitorFactoryTest, BuildsAllTwelveSources) {
    world w;
    const auto tools = make_all_monitors(w.topo);
    ASSERT_EQ(tools.size(), data_source_count);
    std::set<data_source> sources;
    for (const auto& t : tools) {
        sources.insert(t->source());
        EXPECT_GT(t->period(), 0);
    }
    EXPECT_EQ(sources.size(), data_source_count);
}

TEST(OobMonitorTest, ReportsDeadAndHotDevices) {
    world w;
    oob_monitor oob(w.topo, {});
    EXPECT_TRUE(w.poll(oob).empty());

    const device_id victim = w.any(device_role::tor);
    w.state.device_state(victim).alive = false;
    const device_id hot = w.any(device_role::csr);
    w.state.device_state(hot).cpu = 0.95;

    const auto alerts = w.poll(oob);
    EXPECT_TRUE(w.has_kind(alerts, "device inaccessible"));
    EXPECT_TRUE(w.has_kind(alerts, "high cpu"));
    for (const raw_alert& a : alerts) {
        EXPECT_EQ(a.source, data_source::out_of_band);
        EXPECT_TRUE(a.device.has_value());
    }
}

TEST(OobMonitorTest, ProbeGlitchFloodsIdenticalAlerts) {
    world w;
    oob_monitor oob(w.topo, monitor_options{.noise_rate = 1.0});
    const auto alerts = w.poll(oob);
    // A glitch burst: >= 20 identical device-down alerts for one device.
    int inaccessible = 0;
    for (const raw_alert& a : alerts) {
        if (a.kind == "device inaccessible") ++inaccessible;
    }
    EXPECT_GE(inaccessible, 20);
}

TEST(SnmpMonitorTest, ReportsDownLinksEveryPoll) {
    world w;
    snmp_monitor snmp(w.topo, {});
    const link& l = w.topo.links().front();
    w.state.link_state(l.id).up = false;
    const auto first = w.poll(snmp);
    const auto second = w.poll(snmp, seconds(40));
    EXPECT_TRUE(w.has_kind(first, "link down"));
    EXPECT_TRUE(w.has_kind(second, "link down"));  // level-triggered
}

TEST(SnmpMonitorTest, SilentOnDeadDevice) {
    // §2.1: the SNMP agent dies with the device; only OOB still sees it.
    world w;
    snmp_monitor snmp(w.topo, {});
    const device_id victim = w.any(device_role::tor);
    w.state.device_state(victim).alive = false;
    for (const raw_alert& a : w.poll(snmp)) {
        EXPECT_NE(a.device, victim);
    }
}

TEST(SnmpMonitorTest, CongestionAlert) {
    world w;
    snmp_monitor snmp(w.topo, {});
    const circuit_set& cs = w.topo.circuit_sets().front();
    w.state.set_offered_gbps(cs.id, w.state.live_capacity_gbps(cs.id) * 0.95);
    EXPECT_TRUE(w.has_kind(w.poll(snmp), "traffic congestion"));
}

TEST(SyslogSourceTest, EdgeTriggeredLinkDown) {
    world w;
    syslog_source syslog(w.topo, {});
    (void)w.poll(syslog, seconds(2));  // prime the edge detector

    const link& l = w.topo.links().front();
    w.state.link_state(l.id).up = false;
    const auto alerts = w.poll(syslog, seconds(4));
    ASSERT_FALSE(alerts.empty());
    for (const raw_alert& a : alerts) {
        EXPECT_EQ(a.source, data_source::syslog);
        EXPECT_FALSE(a.message.empty());
        EXPECT_TRUE(a.kind.empty());  // type recovered by classification
    }
    // Edge-triggered: no repeat on the next poll.
    EXPECT_TRUE(w.poll(syslog, seconds(6)).empty());
}

TEST(SyslogSourceTest, DeadDeviceCannotLog) {
    world w;
    syslog_source syslog(w.topo, {});
    (void)w.poll(syslog, seconds(2));

    const device_id victim = w.any(device_role::csr);
    w.state.device_state(victim).alive = false;
    w.state.device_state(victim).hardware_fault = true;  // would normally log
    for (const raw_alert& a : w.poll(syslog, seconds(4))) {
        EXPECT_NE(a.device, victim);
    }
}

TEST(SyslogSourceTest, SilentLossInvisible) {
    // §2.1: syslog cannot detect silent packet loss.
    world w;
    syslog_source syslog(w.topo, {});
    (void)w.poll(syslog, seconds(2));
    w.state.device_state(w.any(device_role::agg)).silent_loss = 0.5;
    EXPECT_TRUE(w.poll(syslog, seconds(4)).empty());
}

TEST(SyslogSourceTest, HardwareFaultLogsOnce) {
    world w;
    syslog_source syslog(w.topo, {});
    (void)w.poll(syslog, seconds(2));
    const device_id victim = w.any(device_role::csr);
    w.state.device_state(victim).hardware_fault = true;
    const auto alerts = w.poll(syslog, seconds(4));
    ASSERT_FALSE(alerts.empty());
    EXPECT_TRUE(std::any_of(alerts.begin(), alerts.end(), [](const raw_alert& a) {
        return a.message.find("HW_ERROR") != std::string::npos ||
               a.message.find("LC_FAILURE") != std::string::npos;
    }));
}

TEST(PingMeshTest, DetectsUnreachableCluster) {
    world w;
    ping_mesh ping(w.topo, ping_mesh::config{.pairs_per_poll = 200}, {});
    EXPECT_TRUE(w.poll(ping).empty());

    // Kill every AGG of one cluster: its ToRs become unreachable.
    const location cluster =
        w.topo.device_at(w.any(device_role::agg)).loc.ancestor_at(hierarchy_level::cluster);
    for (device_id d : w.topo.devices_under(cluster)) {
        if (w.topo.device_at(d).role == device_role::agg) {
            w.state.device_state(d).alive = false;
        }
    }
    const auto alerts = w.poll(ping);
    EXPECT_TRUE(w.has_kind(alerts, "unreachable pair"));
    for (const raw_alert& a : alerts) {
        EXPECT_TRUE(a.src_loc.has_value());
        EXPECT_TRUE(a.dst_loc.has_value());
    }
}

TEST(PingMeshTest, BlindToRedundantCircuitBreak) {
    // §2.1: a broken circuit inside a redundant bundle that reroutes
    // cleanly is invisible to ping.
    world w;
    ping_mesh ping(w.topo, ping_mesh::config{.pairs_per_poll = 200}, {});
    // Break one of the two circuits of an AGG<->CSR set.
    for (const circuit_set& cs : w.topo.circuit_sets()) {
        if (cs.circuits.size() >= 2) {
            w.state.link_state(cs.circuits.front()).up = false;
            break;
        }
    }
    EXPECT_TRUE(w.poll(ping).empty());
}

TEST(InternetTelemetryTest, DetectsEntryCut) {
    world w;
    internet_telemetry_monitor inet(w.topo, {}, {});
    EXPECT_TRUE(w.poll(inet).empty());
    // Sever every internet entry.
    for (const link& l : w.topo.links()) {
        if (l.internet_entry) w.state.link_state(l.id).up = false;
    }
    const auto alerts = w.poll(inet);
    EXPECT_TRUE(w.has_kind(alerts, "internet unreachable"));
}

TEST(TrafficMonitorTest, SflowLossCarriesLink) {
    world w;
    traffic_monitor traffic(w.topo, {});
    const circuit_set& cs = w.topo.circuit_sets().front();
    w.state.device_state(cs.a).silent_loss = 0.2;
    const auto alerts = w.poll(traffic);
    ASSERT_TRUE(w.has_kind(alerts, "sflow packet loss"));
    for (const raw_alert& a : alerts) {
        if (a.kind == "sflow packet loss") {
            EXPECT_TRUE(a.link.has_value());
        }
    }
}

TEST(TrafficMonitorTest, SlaOverloadAlert) {
    world w;
    customer_registry customers;
    const customer_id c = customers.add_customer("acme", customer_tier::critical);
    const circuit_set& cs = w.topo.circuit_sets().front();
    customers.attach(c, cs.id);
    const sla_flow_id flow = customers.add_sla_flow(c, cs.id, 1.0);
    network_state state(&w.topo, &customers);
    state.set_flow_rate_gbps(flow, 2.0);

    traffic_monitor traffic(w.topo, {});
    std::vector<raw_alert> alerts;
    traffic.poll(state, seconds(10), w.rand, alerts);
    EXPECT_TRUE(std::any_of(alerts.begin(), alerts.end(), [](const raw_alert& a) {
        return a.kind == "sla flow beyond limit";
    }));
}

TEST(IntMonitorTest, OnlyCoversSupportingDevices) {
    world w;
    // Grant INT support to exactly one circuit set's endpoints.
    for (const device& d : w.topo.devices()) w.topo.set_supports_int(d.id, false);
    const circuit_set& covered = w.topo.circuit_sets().front();
    w.topo.set_supports_int(covered.a, true);
    w.topo.set_supports_int(covered.b, true);

    int_monitor intm(w.topo, {});
    // Loss on the covered set is seen...
    w.state.device_state(covered.a).silent_loss = 0.2;
    EXPECT_TRUE(w.has_kind(w.poll(intm), "int packet loss"));

    // ...loss elsewhere is the blind spot.
    w.state.device_state(covered.a).silent_loss = 0.0;
    const circuit_set& other = w.topo.circuit_sets().back();
    w.state.device_state(other.b).silent_loss = 0.2;
    EXPECT_FALSE(w.has_kind(w.poll(intm), "int packet loss"));
}

TEST(PtpMonitorTest, ReportsDesyncedClocks) {
    world w;
    ptp_monitor ptp(w.topo, {});
    EXPECT_TRUE(w.poll(ptp).empty());
    w.state.device_state(w.any(device_role::tor)).clock_synced = false;
    EXPECT_TRUE(w.has_kind(w.poll(ptp), "clock desync"));
}

TEST(RouteMonitorTest, ReportsIncidentsOnly) {
    world w;
    route_monitor route(w.topo, {});
    EXPECT_TRUE(w.poll(route).empty());

    // Data-plane damage: invisible to route monitoring (§2.1).
    w.state.link_state(w.topo.links().front().id).up = false;
    w.state.device_state(w.any(device_role::tor)).silent_loss = 0.5;
    EXPECT_TRUE(w.poll(route).empty());

    w.state.route_incidents().push_back(route_incident{
        .what = route_incident::kind::hijack, .where = location{"R", "C"}, .since = 0});
    EXPECT_TRUE(w.has_kind(w.poll(route), "route hijack"));
}

TEST(ModificationMonitorTest, ReportsEachEventOnce) {
    world w;
    modification_monitor mod(w.topo, {});
    w.state.modifications().push_back(
        modification_event{.where = location{"R"}, .failed = true, .rolled_back = false, .at = 5});
    const auto first = w.poll(mod);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].kind, "modification failed");
    EXPECT_TRUE(w.poll(mod).empty());  // consumed

    w.state.modifications().push_back(
        modification_event{.where = location{"R"}, .failed = false, .rolled_back = true, .at = 9});
    const auto second = w.poll(mod);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].kind, "rollback executed");
}

TEST(PatrolMonitorTest, CatchesSilentFaults) {
    world w;
    patrol_monitor patrol(w.topo, {});
    const device_id victim = w.any(device_role::agg);
    w.state.device_state(victim).hardware_fault = true;
    EXPECT_TRUE(w.has_kind(w.poll(patrol), "patrol command error"));
    EXPECT_EQ(patrol.period(), minutes(5));  // slow sweep
}

}  // namespace
}  // namespace skynet
