// Tests for alert trace serialization and replay.
#include <gtest/gtest.h>

#include "skynet/core/pipeline.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/trace.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

TEST(SourceTokenTest, RoundTripsAllSources) {
    for (const data_source source : all_data_sources()) {
        EXPECT_EQ(parse_source(source_token(source)), source);
    }
    EXPECT_EQ(parse_source("carrier-pigeon"), std::nullopt);
}

TEST(TraceTest, RecordRoundTrips) {
    raw_alert a;
    a.source = data_source::ping;
    a.timestamp = seconds(42);
    a.kind = "packet loss";
    a.metric = 0.125;
    a.loc = location{"R", "C", "LS", "S", "CL"};
    a.device = 7;
    a.link = 13;
    a.src_loc = location{"R", "C", "LS", "S", "CL1"};
    a.dst_loc = location{"R", "C", "LS", "S", "CL2"};
    a.message = "ping: loss 12.5%";

    const std::string line = serialize_alert_record(a, seconds(43));
    const trace_parse_result parsed = parse_trace(line + "\n");
    ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0].message);
    ASSERT_EQ(parsed.alerts.size(), 1u);

    const traced_alert& t = parsed.alerts[0];
    EXPECT_EQ(t.arrival, seconds(43));
    EXPECT_EQ(t.alert.source, a.source);
    EXPECT_EQ(t.alert.timestamp, a.timestamp);
    EXPECT_EQ(t.alert.kind, a.kind);
    EXPECT_DOUBLE_EQ(t.alert.metric, a.metric);
    EXPECT_EQ(t.alert.loc, a.loc);
    EXPECT_EQ(t.alert.device, a.device);
    EXPECT_EQ(t.alert.link, a.link);
    EXPECT_EQ(t.alert.src_loc, a.src_loc);
    EXPECT_EQ(t.alert.dst_loc, a.dst_loc);
    EXPECT_EQ(t.alert.message, a.message);
}

TEST(TraceTest, OptionalFieldsAsDashes) {
    raw_alert a;
    a.source = data_source::syslog;
    a.timestamp = 0;
    a.message = "%SYS-6-INFO: hello";
    const std::string line = serialize_alert_record(a, 5);
    const trace_parse_result parsed = parse_trace(line);
    ASSERT_TRUE(parsed.ok());
    const traced_alert& t = parsed.alerts[0];
    EXPECT_TRUE(t.alert.kind.empty());
    EXPECT_TRUE(t.alert.loc.is_root());
    EXPECT_EQ(t.alert.device, std::nullopt);
    EXPECT_EQ(t.alert.link, std::nullopt);
    EXPECT_EQ(t.alert.src_loc, std::nullopt);
}

TEST(TraceTest, TabsInMessageSanitized) {
    raw_alert a;
    a.source = data_source::syslog;
    a.message = "evil\tmessage\nwith breaks";
    const trace_parse_result parsed = parse_trace(serialize_alert_record(a, 0));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.alerts[0].alert.message, "evil message with breaks");
}

TEST(TraceTest, BadLinesReportedAndSkipped) {
    const trace_parse_result parsed = parse_trace(
        "# header comment\n"
        "not enough fields\n"
        "abc\tping\t0\t-\t0\t-\t-\t-\t-\t-\tmsg\n"   // bad arrival
        "0\twarp\t0\t-\t0\t-\t-\t-\t-\t-\tmsg\n"     // bad source
        "0\tping\t0\t-\tx\t-\t-\t-\t-\t-\tmsg\n"     // bad metric
        "0\tping\t0\t-\t0\t-\t-9\t-\t-\t-\tmsg\n"    // bad device id
        "0\tping\t0\tpacket loss\t0.5\tR|C\t-\t-\t-\t-\tok\n");
    EXPECT_EQ(parsed.errors.size(), 5u);
    ASSERT_EQ(parsed.alerts.size(), 1u);
    EXPECT_EQ(parsed.alerts[0].alert.kind, "packet loss");
    EXPECT_EQ(parsed.errors[0].line, 2);
    EXPECT_EQ(parsed.errors[1].line, 3);
}

TEST(TraceTest, RecordedEpisodeReplaysToSameIncidents) {
    // Record a simulated flood, replay it through a fresh engine: the
    // incident set must match what the live run produced.
    const topology topo = generate_topology(generator_params::tiny());
    rng crand(5);
    const customer_registry customers = customer_registry::generate(topo, 50, crand);
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();

    simulation_engine sim(&topo, &customers, engine_params{.tick = seconds(2), .seed = 31});
    sim.add_default_monitors();
    rng srand(32);
    sim.inject(make_infrastructure_failure(topo, srand, true), minutes(1), minutes(3));

    skynet_engine live(skynet_engine::deps{&topo, &customers, &registry, &syslog});
    std::vector<traced_alert> recorded;
    sim.run_until(minutes(5),
                  [&](const raw_alert& a, sim_time arrival) {
                      live.ingest(a, arrival);
                      recorded.push_back(traced_alert{.alert = a, .arrival = arrival});
                  },
                  [&](sim_time now) { live.tick(now, sim.state()); });
    live.finish(sim.clock().now(), sim.state());
    const auto live_reports = live.take_reports();
    ASSERT_FALSE(recorded.empty());
    ASSERT_FALSE(live_reports.empty());

    // Round-trip through the text format.
    const trace_parse_result parsed = parse_trace(serialize_trace(recorded));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.alerts.size(), recorded.size());

    skynet_engine replayed(skynet_engine::deps{&topo, &customers, &registry, &syslog});
    network_state idle(&topo, &customers);
    sim_time last_tick = 0;
    for (const traced_alert& t : parsed.alerts) {
        replayed.ingest(t.alert, t.arrival);
        if (t.arrival - last_tick >= seconds(2)) {
            replayed.tick(t.arrival, idle);
            last_tick = t.arrival;
        }
    }
    replayed.finish(parsed.alerts.back().arrival + minutes(20), idle);
    const auto replay_reports = replayed.take_reports();

    ASSERT_EQ(replay_reports.size(), live_reports.size());
    for (std::size_t i = 0; i < live_reports.size(); ++i) {
        EXPECT_EQ(replay_reports[i].inc.root, live_reports[i].inc.root);
        EXPECT_EQ(replay_reports[i].inc.alerts.size(), live_reports[i].inc.alerts.size());
    }
}

}  // namespace
}  // namespace skynet
