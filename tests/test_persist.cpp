// Tests for the persist subsystem: CRC-32C, the write-ahead alert
// journal, barrier-consistent snapshots, and the recovery coordinator.
// The centerpiece is the crash-at-every-record-boundary harness: for a
// journaled episode, truncate the journal after each record in turn,
// recover a fresh engine, resume, and require reports bit-identical to
// an uninterrupted run — for the sequential and the sharded engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "skynet/core/incident_log.h"
#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/persist/crc32c.h"
#include "skynet/persist/durable.h"
#include "skynet/persist/journal.h"
#include "skynet/persist/recovery.h"
#include "skynet/persist/snapshot.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/trace.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

namespace fs = std::filesystem;
using persist::record_type;

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::tiny()) {
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 120, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() {
        return {&topo, &customers, &registry, &syslog};
    }
};

/// A clean per-test scratch directory under the gtest temp root.
fs::path fresh_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / ("skynet_persist_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

fs::path copy_dir(const fs::path& from, const std::string& name) {
    const fs::path to = fresh_dir(name);
    for (const auto& entry : fs::directory_iterator(from)) {
        fs::copy(entry.path(), to / entry.path().filename());
    }
    return to;
}

/// One engine-facing command, in stream order — the unit the journal
/// records and the crash harness truncates between.
struct command {
    record_type kind{record_type::batch};
    std::vector<traced_alert> batch;
    sim_time now{0};
};

/// Simulates one deterministic failure episode and returns it as a
/// command list. Batches are normalized through the trace text format
/// once, so journaling them round-trips every double exactly (the same
/// reason CLI replay runs are journal-exact).
std::vector<command> record_episode(world& w, sim_duration duration, std::uint64_t seed) {
    std::vector<command> commands;
    simulation_engine sim(&w.topo, &w.customers,
                          engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    rng srand(seed + 2);
    sim.inject(make_random_scenario(w.topo, srand, true), minutes(1), duration);
    sim.run_until_batched(
        minutes(1) + duration + minutes(1),
        [&](std::span<const traced_alert> batch) {
            if (batch.empty()) return;
            trace_parse_result normalized = parse_trace(serialize_trace(batch));
            commands.push_back(command{.kind = record_type::batch,
                                       .batch = std::move(normalized.alerts)});
        },
        [&](sim_time now) {
            commands.push_back(command{.kind = record_type::tick, .batch = {}, .now = now});
        });
    commands.push_back(
        command{.kind = record_type::finish, .batch = {}, .now = sim.clock().now()});
    return commands;
}

/// Streams commands into anything with the engine ingest/tick/finish
/// surface (an engine or a durable_session), starting at `from`.
template <typename Sink>
void apply(Sink& sink, std::span<const command> commands, const network_state& idle,
           std::size_t from = 0) {
    for (std::size_t i = from; i < commands.size(); ++i) {
        const command& c = commands[i];
        switch (c.kind) {
            case record_type::batch:
                sink.ingest_batch(std::span<const traced_alert>(c.batch));
                break;
            case record_type::tick:
                sink.tick(c.now, idle);
                break;
            case record_type::finish:
                sink.finish(c.now, idle);
                break;
        }
    }
}

template <typename Engine>
std::string report_digest(Engine& eng) {
    std::string out;
    for (const incident_report& r : eng.take_reports()) out += r.render() + "\n";
    return out;
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Walks the journal's frame headers and returns the absolute offset
/// one past each record — every legal crash point.
std::vector<std::uint64_t> record_boundaries(const fs::path& journal) {
    const std::string bytes = read_file(journal);
    std::vector<std::uint64_t> offsets;
    std::size_t pos = persist::journal_magic.size();
    while (pos + 9 <= bytes.size()) {
        std::uint32_t len = 0;
        for (int i = 0; i < 4; ++i) {
            len |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + 1 + i]))
                   << (8 * i);
        }
        pos += 9 + len;
        offsets.push_back(pos);
    }
    return offsets;
}

/// Runs the full episode through a durable session into `dir`,
/// checkpointing every `checkpoint_every` barriers, and returns the
/// run's report digest.
template <typename Engine>
std::string durable_run(Engine& eng, world& w, std::span<const command> commands,
                        const network_state& idle, const fs::path& dir,
                        std::uint64_t checkpoint_every = 3) {
    persist::durable_options opts;
    opts.dir = dir.string();
    opts.checkpoint_every = checkpoint_every;
    opts.flush_every = 1;
    opts.locations = &w.topo.locations();
    persist::durable_session<Engine> session(eng, opts);
    apply(session, commands, idle);
    EXPECT_TRUE(session.last_error().empty()) << session.last_error();
    return report_digest(eng);
}

// ---------------------------------------------------------------- crc32c

TEST(Crc32cTest, MatchesKnownVector) {
    // The canonical CRC-32C check value (RFC 3720 appendix B.4).
    EXPECT_EQ(persist::crc32c("123456789"), 0xE3069283u);
    EXPECT_EQ(persist::crc32c(""), 0u);
}

TEST(Crc32cTest, SeedChainsAcrossChunks) {
    const std::string data = "the quick brown fox jumps over the lazy dog";
    const std::uint32_t whole = persist::crc32c(data);
    std::uint32_t chained = 0;
    for (const char c : data) chained = persist::crc32c(&c, 1, chained);
    EXPECT_EQ(chained, whole);
}

// --------------------------------------------------------------- journal

TEST(JournalTest, RoundTripsBatchesAndBarriers) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 5);
    const fs::path dir = fresh_dir("journal_roundtrip");
    const fs::path path = dir / persist::journal_filename;
    {
        persist::journal_writer writer(path.string(), 4);
        for (const command& c : commands) {
            if (c.kind == record_type::batch) {
                writer.append_batch(std::span<const traced_alert>(c.batch));
            } else {
                writer.append_barrier(c.kind, c.now);
            }
        }
        writer.flush();
        EXPECT_EQ(writer.records_written(), commands.size());
        EXPECT_EQ(writer.bytes_written(), fs::file_size(path));
    }

    const persist::journal_read_result read = persist::read_journal(path.string());
    EXPECT_FALSE(read.missing);
    EXPECT_EQ(read.truncated_tail_bytes, 0u);
    EXPECT_EQ(read.valid_bytes, fs::file_size(path));
    ASSERT_EQ(read.records.size(), commands.size());
    for (std::size_t i = 0; i < commands.size(); ++i) {
        SCOPED_TRACE("record " + std::to_string(i));
        EXPECT_EQ(read.records[i].type, commands[i].kind);
        if (commands[i].kind == record_type::batch) {
            EXPECT_EQ(serialize_trace(read.records[i].batch),
                      serialize_trace(commands[i].batch));
        } else {
            EXPECT_EQ(read.records[i].now, commands[i].now);
        }
    }
}

TEST(JournalTest, TornTailIsCountedAndTrimmed) {
    const fs::path dir = fresh_dir("journal_torn");
    const fs::path path = dir / persist::journal_filename;
    {
        persist::journal_writer writer(path.string(), 1);
        writer.append_barrier(record_type::tick, seconds(2));
        writer.append_barrier(record_type::tick, seconds(4));
    }
    const std::uint64_t clean_size = fs::file_size(path);
    // A torn write: half a header.
    std::ofstream(path, std::ios::binary | std::ios::app) << "\x02\x08\x7f";

    persist::journal_read_result read = persist::read_journal(path.string());
    EXPECT_EQ(read.records.size(), 2u);
    EXPECT_EQ(read.valid_bytes, clean_size);
    EXPECT_EQ(read.truncated_tail_bytes, 3u);
    EXPECT_FALSE(read.truncation_reason.empty());

    ASSERT_TRUE(persist::truncate_journal(path.string(), read.valid_bytes));
    read = persist::read_journal(path.string());
    EXPECT_EQ(read.truncated_tail_bytes, 0u);
    EXPECT_EQ(read.records.size(), 2u);
}

TEST(JournalTest, BitFlipEndsTheValidPrefix) {
    const fs::path dir = fresh_dir("journal_bitflip");
    const fs::path path = dir / persist::journal_filename;
    std::vector<std::uint64_t> offsets;
    {
        persist::journal_writer writer(path.string(), 1);
        for (int i = 1; i <= 4; ++i) {
            writer.append_barrier(record_type::tick, seconds(2 * i));
            offsets.push_back(writer.bytes_written());
        }
    }
    // Flip one payload byte inside the third record: records 3 and 4
    // both drop (a CRC mismatch ends the prefix; nothing past it is
    // trusted), records 1 and 2 survive.
    std::string bytes = read_file(path);
    bytes[static_cast<std::size_t>(offsets[2]) - 1] ^= 0x40;
    write_file(path, bytes);

    const persist::journal_read_result read = persist::read_journal(path.string());
    EXPECT_EQ(read.records.size(), 2u);
    EXPECT_EQ(read.valid_bytes, offsets[1]);
    EXPECT_EQ(read.truncated_tail_bytes, bytes.size() - offsets[1]);
    EXPECT_NE(read.truncation_reason.find("checksum"), std::string::npos);
}

TEST(JournalTest, BadMagicMakesTheWholeFileATail) {
    const fs::path dir = fresh_dir("journal_magic");
    const fs::path path = dir / "journal.skywal";
    write_file(path, "NOTMAGIC and then some garbage");
    const persist::journal_read_result read = persist::read_journal(path.string());
    EXPECT_TRUE(read.records.empty());
    EXPECT_EQ(read.valid_bytes, 0u);
    EXPECT_EQ(read.truncated_tail_bytes, fs::file_size(path));
}

TEST(JournalTest, MissingFileIsAValidEmptyJournal) {
    const persist::journal_read_result read =
        persist::read_journal((fresh_dir("journal_missing") / "nope.skywal").string());
    EXPECT_TRUE(read.missing);
    EXPECT_TRUE(read.records.empty());
    EXPECT_EQ(read.truncated_tail_bytes, 0u);
}

// -------------------------------------------------------------- snapshot

TEST(SnapshotTest, RenderParseRoundTripIsCanonical) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 7);
    network_state idle(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine eng(w.deps(), cfg);
    // Snapshot mid-run (before finish) so open incidents are exercised.
    apply(eng, std::span<const command>(commands).first(commands.size() - 1), idle);

    persist::snapshot_data data;
    data.seq = 9;
    data.journal_bytes = 1234;
    data.journal_records = 56;
    data.barrier_time = minutes(3);
    const location_table& table = w.topo.locations();
    for (std::size_t id = 1; id < table.size(); ++id) {
        data.locations.push_back(table.path_of(static_cast<location_id>(id)).to_string());
    }
    data.engines.shards.push_back(eng.export_state());
    data.log.push_back(incident_log::entry{
        .report = incident_report{}, .closed_at = minutes(2), .attributed_to_failure = true});

    const std::string text = persist::render_snapshot(data);
    const persist::snapshot_parse_result parsed = persist::parse_snapshot(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.data->seq, 9u);
    EXPECT_EQ(parsed.data->journal_bytes, 1234u);
    EXPECT_EQ(parsed.data->journal_records, 56u);
    EXPECT_EQ(parsed.data->barrier_time, minutes(3));
    EXPECT_EQ(parsed.data->locations, data.locations);
    ASSERT_EQ(parsed.data->log.size(), 1u);
    EXPECT_EQ(parsed.data->log[0].closed_at, minutes(2));
    EXPECT_EQ(parsed.data->log[0].attributed_to_failure, true);
    // Canonical: re-rendering the parse is byte-identical.
    EXPECT_EQ(persist::render_snapshot(*parsed.data), text);
}

TEST(SnapshotTest, CorruptionFailsTheCrcBeforeParsing) {
    persist::snapshot_data data;
    data.seq = 1;
    data.engines.shards.emplace_back();
    std::string text = persist::render_snapshot(data);
    ASSERT_TRUE(persist::parse_snapshot(text).ok());
    text[text.size() / 2] ^= 0x01;
    const persist::snapshot_parse_result parsed = persist::parse_snapshot(text);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("checksum"), std::string::npos) << parsed.error;
}

TEST(SnapshotTest, NewestCorruptSnapshotFallsBackToOlder) {
    const fs::path dir = fresh_dir("snapshot_fallback");
    for (std::uint64_t seq : {1u, 2u}) {
        persist::snapshot_data data;
        data.seq = seq;
        data.journal_bytes = 100 * seq;
        data.engines.shards.emplace_back();
        ASSERT_FALSE(persist::write_snapshot(dir.string(), data));
    }
    // Corrupt the newest file in place.
    const fs::path newest = dir / persist::snapshot_filename(2);
    std::string bytes = read_file(newest);
    bytes[bytes.size() / 2] ^= 0x01;
    write_file(newest, bytes);

    const persist::snapshot_pick pick = persist::load_newest_snapshot(dir.string(), 100000);
    ASSERT_TRUE(pick.data.has_value());
    EXPECT_EQ(pick.data->seq, 1u);
    ASSERT_EQ(pick.skipped.size(), 1u);
    EXPECT_NE(pick.skipped[0].file.find("snap-"), std::string::npos);
    EXPECT_FALSE(pick.skipped[0].reason.empty());
}

TEST(SnapshotTest, SnapshotPastDurablePrefixIsSkipped) {
    const fs::path dir = fresh_dir("snapshot_past_prefix");
    for (std::uint64_t seq : {1u, 2u}) {
        persist::snapshot_data data;
        data.seq = seq;
        data.journal_bytes = 100 * seq;
        data.engines.shards.emplace_back();
        ASSERT_FALSE(persist::write_snapshot(dir.string(), data));
    }
    // Only 150 journal bytes became durable: snapshot 2 references a
    // write that never hit the disk and must be passed over.
    const persist::snapshot_pick pick = persist::load_newest_snapshot(dir.string(), 150);
    ASSERT_TRUE(pick.data.has_value());
    EXPECT_EQ(pick.data->seq, 1u);
    ASSERT_EQ(pick.skipped.size(), 1u);
    EXPECT_NE(pick.skipped[0].reason.find("durable"), std::string::npos)
        << pick.skipped[0].reason;
}

// -------------------------------------------------------------- recovery

TEST(RecoveryTest, CrashAtEveryRecordBoundarySequential) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 11);
    network_state idle(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;

    skynet_engine base(w.deps(), cfg);
    apply(base, commands, idle);
    const std::string want = report_digest(base);
    EXPECT_FALSE(want.empty()) << "episode produced no incidents";

    const fs::path dir = fresh_dir("seq_full");
    {
        skynet_engine eng(w.deps(), cfg);
        EXPECT_EQ(durable_run(eng, w, commands, idle, dir), want);
    }
    const std::vector<std::uint64_t> offsets =
        record_boundaries(dir / persist::journal_filename);
    ASSERT_EQ(offsets.size(), commands.size());

    for (std::size_t k = 0; k < offsets.size(); ++k) {
        SCOPED_TRACE("crash after record " + std::to_string(k + 1));
        // The crash image: every checkpoint file, journal cut at the
        // record boundary. Snapshots referencing later journal bytes are
        // present and must be skipped.
        const fs::path crash = copy_dir(dir, "seq_crash_point");
        fs::resize_file(crash / persist::journal_filename, offsets[k]);

        skynet_engine eng(w.deps(), cfg);
        persist::recovery_options ropts;
        ropts.dir = crash.string();
        ropts.tick_state = &idle;
        const persist::recovery_result rec =
            persist::recover(eng, w.topo.locations(), nullptr, ropts);
        EXPECT_EQ(rec.journal_records, k + 1);
        EXPECT_EQ(rec.journal_valid_bytes, offsets[k]);
        EXPECT_EQ(rec.saw_finish, k + 1 == commands.size());

        // Resume: re-stream the same episode; the durable session skips
        // the records recovery already accounted for.
        persist::durable_options dopts;
        dopts.dir = crash.string();
        dopts.checkpoint_every = 3;
        dopts.flush_every = 1;
        dopts.resume_records = rec.journal_records;
        dopts.next_snapshot_seq = rec.next_snapshot_seq;
        dopts.base = rec.metrics;
        dopts.locations = &w.topo.locations();
        persist::durable_session<skynet_engine> session(eng, dopts);
        apply(session, commands, idle);
        EXPECT_EQ(report_digest(eng), want);
    }
}

TEST(RecoveryTest, CrashAtRecordBoundariesSharded) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 13);
    network_state idle(&w.topo, &w.customers);

    sharded_config scfg;
    scfg.shards = 4;
    std::string want;
    {
        sharded_engine base(w.deps(), scfg);
        apply(base, commands, idle);
        want = report_digest(base);
    }

    const fs::path dir = fresh_dir("shard_full");
    {
        sharded_engine eng(w.deps(), scfg);
        EXPECT_EQ(durable_run(eng, w, commands, idle, dir), want);
    }
    const std::vector<std::uint64_t> offsets =
        record_boundaries(dir / persist::journal_filename);
    ASSERT_EQ(offsets.size(), commands.size());

    // Every 5th boundary (plus the last) keeps the 4-thread engine spin
    // count sane while still crossing several checkpoints.
    for (std::size_t k = 0; k < offsets.size(); k += 5) {
        SCOPED_TRACE("crash after record " + std::to_string(k + 1));
        const fs::path crash = copy_dir(dir, "shard_crash_point");
        fs::resize_file(crash / persist::journal_filename, offsets[k]);

        sharded_engine eng(w.deps(), scfg);
        persist::recovery_options ropts;
        ropts.dir = crash.string();
        ropts.tick_state = &idle;
        const persist::recovery_result rec =
            persist::recover(eng, w.topo.locations(), nullptr, ropts);
        EXPECT_EQ(rec.journal_records, k + 1);

        persist::durable_options dopts;
        dopts.dir = crash.string();
        dopts.checkpoint_every = 3;
        dopts.flush_every = 1;
        dopts.resume_records = rec.journal_records;
        dopts.next_snapshot_seq = rec.next_snapshot_seq;
        dopts.locations = &w.topo.locations();
        persist::durable_session<sharded_engine> session(eng, dopts);
        apply(session, commands, idle);
        EXPECT_EQ(report_digest(eng), want);
    }
}

TEST(RecoveryTest, TornTailIsRepairedOnDisk) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 17);
    network_state idle(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;

    const fs::path dir = fresh_dir("torn_repair");
    std::string want;
    {
        skynet_engine eng(w.deps(), cfg);
        want = durable_run(eng, w, commands, idle, dir);
    }
    const fs::path journal = dir / persist::journal_filename;
    const std::uint64_t clean_size = fs::file_size(journal);
    std::ofstream(journal, std::ios::binary | std::ios::app) << "\x01\xff\xff";

    skynet_engine eng(w.deps(), cfg);
    persist::recovery_options ropts;
    ropts.dir = dir.string();
    ropts.tick_state = &idle;
    const persist::recovery_result rec =
        persist::recover(eng, w.topo.locations(), nullptr, ropts);
    EXPECT_EQ(rec.metrics.truncated_tail_bytes, 3u);
    EXPECT_TRUE(rec.saw_finish);
    EXPECT_EQ(fs::file_size(journal), clean_size);  // tail trimmed on disk
    EXPECT_EQ(report_digest(eng), want);
}

TEST(RecoveryTest, NoSnapshotReplaysTheWholeJournal) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 19);
    network_state idle(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;

    const fs::path dir = fresh_dir("no_snapshot");
    std::string want;
    {
        skynet_engine eng(w.deps(), cfg);
        want = durable_run(eng, w, commands, idle, dir);
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".skysnap") fs::remove(entry.path());
    }

    skynet_engine eng(w.deps(), cfg);
    persist::recovery_options ropts;
    ropts.dir = dir.string();
    ropts.tick_state = &idle;
    const persist::recovery_result rec =
        persist::recover(eng, w.topo.locations(), nullptr, ropts);
    EXPECT_EQ(rec.metrics.records_replayed, commands.size());
    EXPECT_EQ(rec.journal_records, commands.size());
    EXPECT_EQ(report_digest(eng), want);
}

TEST(RecoveryTest, ShardCountMismatchThrows) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 23);
    network_state idle(&w.topo, &w.customers);

    const fs::path dir = fresh_dir("shard_mismatch");
    {
        sharded_config scfg;
        scfg.shards = 4;
        sharded_engine eng(w.deps(), scfg);
        (void)durable_run(eng, w, commands, idle, dir);
    }
    sharded_config two;
    two.shards = 2;
    sharded_engine eng(w.deps(), two);
    persist::recovery_options ropts;
    ropts.dir = dir.string();
    ropts.tick_state = &idle;
    EXPECT_THROW((void)persist::recover(eng, w.topo.locations(), nullptr, ropts),
                 skynet_error);
}

TEST(RecoveryTest, IncidentLogRoundTripsThroughCheckpoints) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 29);
    network_state idle(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;

    incident_log log;
    log.append(incident_report{}, seconds(30));
    log.append(incident_report{}, minutes(2));
    const fs::path dir = fresh_dir("log_roundtrip");
    {
        skynet_engine eng(w.deps(), cfg);
        persist::durable_options opts;
        opts.dir = dir.string();
        opts.checkpoint_every = 2;
        opts.flush_every = 1;
        opts.locations = &w.topo.locations();
        opts.log = &log;
        persist::durable_session<skynet_engine> session(eng, opts);
        apply(session, commands, idle);
        (void)eng.take_reports();
    }
    skynet_engine eng(w.deps(), cfg);
    incident_log restored;
    persist::recovery_options ropts;
    ropts.dir = dir.string();
    ropts.tick_state = &idle;
    (void)persist::recover(eng, w.topo.locations(), &restored, ropts);
    ASSERT_EQ(restored.size(), 2u);
    EXPECT_EQ(restored.entries()[0].closed_at, seconds(30));
    EXPECT_EQ(restored.entries()[1].closed_at, minutes(2));
}

TEST(DurableSessionTest, MetricsCountRecordsFlushesAndCheckpoints) {
    world w;
    const std::vector<command> commands = record_episode(w, minutes(1), 31);
    network_state idle(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine eng(w.deps(), cfg);

    persist::durable_options opts;
    opts.dir = fresh_dir("metrics").string();
    opts.checkpoint_every = 4;
    opts.flush_every = 8;
    opts.locations = &w.topo.locations();
    persist::durable_session<skynet_engine> session(eng, opts);
    apply(session, commands, idle);

    const recovery_metrics m = session.metrics();
    EXPECT_EQ(m.journal_records_written, commands.size());
    EXPECT_GT(m.journal_flushes, 0u);
    EXPECT_GT(m.checkpoints_written, 0u);
    EXPECT_TRUE(m.any());
    const engine_metrics em = [&] {
        engine_metrics base = eng.metrics();
        base.recovery += m;
        return base;
    }();
    EXPECT_NE(em.render().find("recovery:"), std::string::npos);
}

}  // namespace
}  // namespace skynet
