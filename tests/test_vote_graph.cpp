// Tests for the §7.1 alert-voting visualization.
#include <gtest/gtest.h>

#include "skynet/viz/vote_graph.h"

namespace skynet {
namespace {

/// Star fabric: a reflector linked to three DCBRs (the §7.1 case where
/// the reflector collected the highest votes).
struct fixture {
    topology topo;
    device_id rr, d1, d2, d3;

    fixture() {
        const location ls{"R", "C", "LS"};
        rr = topo.add_device("rr", device_role::reflector, ls.child("rr"));
        d1 = topo.add_device("d1", device_role::dcbr, ls.child("d1"));
        d2 = topo.add_device("d2", device_role::dcbr, ls.child("d2"));
        d3 = topo.add_device("d3", device_role::dcbr, ls.child("d3"));
        for (device_id d : {d1, d2, d3}) {
            const circuit_set_id cs = topo.add_circuit_set("rr<->" + topo.device_at(d).name, rr, d);
            (void)topo.add_link(rr, d, cs, 10.0);
        }
    }

    incident make_incident() const {
        incident inc;
        inc.root = location{"R", "C", "LS"};
        // Every DCBR alerts once (they all see the reflector misbehaving);
        // the reflector itself alerts once too.
        for (device_id d : {d1, d2, d3, rr}) {
            structured_alert a;
            a.type_name = "bgp peer down";
            a.category = alert_category::abnormal;
            a.loc = topo.device_at(d).loc;
            a.device = d;
            inc.alerts.push_back(a);
        }
        return inc;
    }
};

TEST(VoteGraphTest, ReflectorWinsTheVote) {
    fixture f;
    vote_graph graph(&f.topo);
    graph.add_incident(f.make_incident());

    // rr: 1 self + 3 links x 0.5 (far-endpoint votes from d1..d3) = 2.5
    // each dcbr: 1 self + 0.5 (from rr's own alert) = 1.5
    const auto ranking = graph.ranking();
    ASSERT_FALSE(ranking.empty());
    EXPECT_EQ(ranking.front().id, f.rr);
    EXPECT_GT(graph.device_votes(f.rr), graph.device_votes(f.d1));
}

TEST(VoteGraphTest, VotesAccumulateAcrossAlerts) {
    fixture f;
    vote_graph graph(&f.topo);
    graph.add_incident(f.make_incident());
    const double once = graph.device_votes(f.rr);
    graph.add_incident(f.make_incident());
    EXPECT_DOUBLE_EQ(graph.device_votes(f.rr), 2 * once);
}

TEST(VoteGraphTest, AlertsWithoutDeviceIgnored) {
    fixture f;
    vote_graph graph(&f.topo);
    incident inc;
    structured_alert a;
    a.type_name = "internet unreachable";
    a.loc = location{"R", "C", "LS"};
    inc.alerts.push_back(a);
    graph.add_incident(inc);
    EXPECT_TRUE(graph.ranking().empty());
}

TEST(VoteGraphTest, LinkVotesTracked) {
    fixture f;
    vote_graph graph(&f.topo);
    graph.add_incident(f.make_incident());
    // Each rr<->dcbr link gets: 1 from rr's alert + 1 from its dcbr = 2.
    for (const link& l : f.topo.links()) {
        EXPECT_DOUBLE_EQ(graph.link_votes(l.id), 2.0);
    }
}

TEST(VoteGraphTest, DotOutputHighlightsLeader) {
    fixture f;
    vote_graph graph(&f.topo);
    graph.add_incident(f.make_incident());
    const std::string dot = graph.to_dot();
    EXPECT_NE(dot.find("graph skynet_votes"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor=salmon"), std::string::npos);
    EXPECT_NE(dot.find("\"rr\""), std::string::npos);
    EXPECT_NE(dot.find("--"), std::string::npos);
}

TEST(VoteGraphTest, AsciiRankingLimited) {
    fixture f;
    vote_graph graph(&f.topo);
    graph.add_incident(f.make_incident());
    const std::string table = graph.to_ascii(2);
    // Header + 2 rows.
    EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
    EXPECT_NE(table.find("rr"), std::string::npos);
}

}  // namespace
}  // namespace skynet
