// Round-trip and invariant properties of the location interner.
//
// Two families of identities hold across the whole pipeline:
//   * string round trip:  location::parse(loc.to_string()) == loc;
//   * interner round trip: table.find(table.path_of(id)) == id and
//     table.intern(table.path_of(id)) == id for every live id,
// including the degenerate root (empty path) and the deepest
// device-level paths. The id-keyed tree operations must also agree
// with the segment-walking ones on skynet::location.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "skynet/common/error.h"
#include "skynet/topology/location_table.h"

namespace skynet {
namespace {

/// Deterministic pseudo-random path at exactly `depth` segments.
location random_path(std::mt19937& gen, std::size_t depth) {
    static const char* kNames[] = {"Region", "City", "LS", "Site", "Cluster", "dev"};
    std::uniform_int_distribution<int> pick(0, 3);
    std::vector<std::string> segs;
    segs.reserve(depth);
    for (std::size_t d = 0; d < depth; ++d) {
        segs.push_back(std::string(kNames[d % 6]) + " " + std::to_string(pick(gen)));
    }
    return location{std::move(segs)};
}

TEST(LocationTableTest, ParseToStringRoundTripAtEveryDepth) {
    std::mt19937 gen(42);
    for (std::size_t depth = 0; depth <= depth_of(hierarchy_level::device); ++depth) {
        for (int i = 0; i < 32; ++i) {
            const location loc = random_path(gen, depth);
            EXPECT_EQ(location::parse(loc.to_string()), loc)
                << "depth " << depth << " path '" << loc.to_string() << "'";
        }
    }
}

TEST(LocationTableTest, InternFindPathOfRoundTrip) {
    location_table table;
    std::mt19937 gen(7);
    std::vector<location_id> ids{root_location_id};
    for (std::size_t depth = 1; depth <= depth_of(hierarchy_level::device); ++depth) {
        for (int i = 0; i < 16; ++i) ids.push_back(table.intern(random_path(gen, depth)));
    }
    for (const location_id id : ids) {
        const location& path = table.path_of(id);
        // find() on the cached path returns the same id...
        ASSERT_TRUE(table.find(path).has_value());
        EXPECT_EQ(*table.find(path), id);
        // ...and re-interning is the identity, not a duplicate entry.
        EXPECT_EQ(table.intern(path), id);
        // The string round trip composes with the interner round trip.
        EXPECT_EQ(table.intern(location::parse(path.to_string())), id);
    }
}

TEST(LocationTableTest, RootIsEntryZero) {
    location_table table;
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.intern(location{}), root_location_id);
    EXPECT_TRUE(table.path_of(root_location_id).is_root());
    EXPECT_EQ(table.parent_of(root_location_id), root_location_id);
    EXPECT_EQ(table.depth(root_location_id), 0u);
    EXPECT_EQ(table.segment_of(root_location_id), "");
    EXPECT_EQ(table.level_of(root_location_id), hierarchy_level::root);
}

TEST(LocationTableTest, IdsAreDenseAndParentsComeFirst) {
    location_table table;
    std::mt19937 gen(99);
    for (int i = 0; i < 64; ++i) {
        (void)table.intern(random_path(gen, 1 + static_cast<std::size_t>(i % 6)));
    }
    // Dense: every id below size() resolves; parent ids strictly smaller.
    for (location_id id = 0; id < static_cast<location_id>(table.size()); ++id) {
        const location& path = table.path_of(id);
        EXPECT_EQ(path.depth(), table.depth(id));
        if (id != root_location_id) {
            EXPECT_LT(table.parent_of(id), id);
            EXPECT_EQ(table.path_of(table.parent_of(id)), path.parent());
        }
    }
}

TEST(LocationTableTest, TreeOpsAgreeWithSegmentWalks) {
    location_table table;
    std::mt19937 gen(1234);
    std::vector<location_id> ids;
    for (int i = 0; i < 48; ++i) {
        ids.push_back(table.intern(random_path(gen, 1 + static_cast<std::size_t>(i % 6))));
    }
    for (const location_id a : ids) {
        const location& pa = table.path_of(a);
        for (hierarchy_level lvl : {hierarchy_level::region, hierarchy_level::city,
                                    hierarchy_level::site, hierarchy_level::device}) {
            EXPECT_EQ(table.path_of(table.ancestor_at(a, lvl)), pa.ancestor_at(lvl));
        }
        for (const location_id b : ids) {
            const location& pb = table.path_of(b);
            EXPECT_EQ(table.contains(a, b), pa.contains(pb));
            EXPECT_EQ(table.is_ancestor_of(a, b), pa.is_ancestor_of(pb));
            EXPECT_EQ(table.path_of(table.common_ancestor(a, b)),
                      location::common_ancestor(pa, pb));
        }
    }
}

TEST(LocationTableTest, InternChildMatchesFullIntern) {
    location_table table;
    const location site{"Region A", "City a", "LS 1", "Site I"};
    const location_id sid = table.intern(site);
    const location_id cid = table.intern_child(sid, "Cluster 3");
    EXPECT_EQ(cid, table.intern(site.child("Cluster 3")));
    EXPECT_EQ(table.parent_of(cid), sid);
    EXPECT_EQ(table.segment_of(cid), "Cluster 3");
    EXPECT_EQ(table.level_of(cid), hierarchy_level::cluster);
}

TEST(LocationTableTest, IdsAreTableLocal) {
    // Same paths interned in different orders get different ids; only
    // the paths agree. This is why merged reports compare by path.
    location_table first, second;
    const location x{"Region A", "City a"};
    const location y{"Region B", "City b"};
    const location_id xa = first.intern(x);
    (void)first.intern(y);
    (void)second.intern(y);
    const location_id xb = second.intern(x);
    EXPECT_NE(xa, xb);
    EXPECT_EQ(first.path_of(xa), second.path_of(xb));
}

TEST(LocationTableTest, UnknownPathsAndBadIds) {
    location_table table;
    EXPECT_FALSE(table.find(location{"never", "interned"}).has_value());
    EXPECT_THROW((void)table.path_of(invalid_location_id), skynet_error);
    EXPECT_THROW((void)table.path_of(static_cast<location_id>(table.size())), skynet_error);
}

TEST(LocationTableConcurrencyTest, OverlappingInternsKeepIdsStableAndDense) {
    // The striped-dictionary claim: N threads interning heavily
    // overlapping paths (shared region/city prefixes, per-thread leaf
    // tails) race only on single stripes, and every thread observes the
    // same id for the same path. Run under the tsan preset this is the
    // data-race proof for the lock-free read path; everywhere it is the
    // consistency proof.
    constexpr int kThreads = 8;
    constexpr int kRounds = 40;
    location_table table;

    // The shared working set every thread interns in its own order.
    std::vector<location> shared;
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            for (int s = 0; s < 4; ++s) {
                shared.push_back(location{"Region " + std::to_string(r),
                                          "City " + std::to_string(c),
                                          "LS " + std::to_string(s)});
            }
        }
    }

    std::vector<std::vector<location_id>> seen(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            std::mt19937 gen(static_cast<unsigned>(1000 + t));
            std::vector<location> order = shared;
            std::vector<location_id> ids(shared.size(), invalid_location_id);
            for (int round = 0; round < kRounds; ++round) {
                std::shuffle(order.begin(), order.end(), gen);
                for (const location& loc : order) {
                    const location_id id = table.intern(loc);
                    // find() must agree with intern() mid-race: the
                    // entry is published before the id escapes.
                    const auto found = table.find(loc);
                    ASSERT_TRUE(found.has_value());
                    ASSERT_EQ(*found, id);
                }
                // A thread-private leaf exercises insert while others read.
                (void)table.intern(shared[static_cast<std::size_t>(round) % shared.size()]
                                       .child("dev t" + std::to_string(t) + "r" +
                                              std::to_string(round)));
            }
            // Record the final id of every shared path, in canonical order.
            for (std::size_t i = 0; i < shared.size(); ++i) ids[i] = table.intern(shared[i]);
            seen[static_cast<std::size_t>(t)] = std::move(ids);
        });
    }
    for (std::thread& th : workers) th.join();

    // Ids are stable: every thread resolved each shared path identically.
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]) << "thread " << t;
    }
    // Ids are dense 0..size()-1: path_of() resolves every one of them,
    // and parents still precede children.
    const std::size_t n = table.size();
    // root + prefixes + 64 shared leaves + kThreads * kRounds private leaves.
    EXPECT_GE(n, 1u + 4u + 16u + 64u + kThreads * kRounds);
    for (location_id id = 0; id < static_cast<location_id>(n); ++id) {
        const location& path = table.path_of(id);
        EXPECT_EQ(table.intern(path), id);
        if (id != root_location_id) {
            EXPECT_LT(table.parent_of(id), id);
        }
    }
}

}  // namespace
}  // namespace skynet
