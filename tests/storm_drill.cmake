# Storm drill (registered in tests/CMakeLists.txt). Drives skynet_cli
# through a sharded replay degraded by an injected worker stall plus
# forced queue pressure (`--faults "stall:...;pressure=..."`). The
# watchdog (auto-armed when the spec has stall clauses) must release the
# parked shard, and because both fault classes are lossless under the
# default block policy, the report section must stay byte-identical to
# the clean sharded replay.
# Expects -DSKYNET_CLI=<path> and -DDRILL_DIR=<scratch dir>.
file(REMOVE_RECURSE "${DRILL_DIR}")
file(MAKE_DIRECTORY "${DRILL_DIR}")

function(run_cli out_var expect_code)
  execute_process(COMMAND ${SKYNET_CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE code)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR "skynet_cli ${ARGN}: exit ${code} (wanted ${expect_code})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(trace "${DRILL_DIR}/trace.txt")
run_cli(record_out 0 --topo tiny --seed 5 --record ${trace})
run_cli(base 0 --topo tiny --seed 5 --replay ${trace} --shards 4)

# The storm run: shard 2 parks at its 5th command, and ~30% of enqueues
# see a forced-full window. The run must complete (watchdog releases the
# stall) rather than wedge until the test times out. --sketch auto is
# spelled out (it is also the default): below the cardinality threshold
# the sketched counting path must be byte-invisible, so the parity diff
# against the clean replay doubles as the e2e check of that claim.
run_cli(storm 0 --topo tiny --seed 5 --replay ${trace} --shards 4 --metrics
        --sketch auto --faults "seed=7\;stall:2@5\;pressure=0.3")

if(NOT storm MATCHES "watchdog on")
  message(FATAL_ERROR "storm run did not arm the watchdog:\n${storm}")
endif()
if(NOT storm MATCHES "watchdog 1 stalls, 1 recovered, 0 written off")
  message(FATAL_ERROR "storm run metrics do not show the stall recovered:\n${storm}")
endif()

# Compare everything from the incident count down: the storm run adds
# faults/metrics lines above that point, but the ranked reports must
# match byte for byte.
foreach(v base storm)
  string(FIND "${${v}}" "incidents:" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "no report section in ${v} output:\n${${v}}")
  endif()
  string(SUBSTRING "${${v}}" ${at} -1 ${v}_reports)
endforeach()
if(NOT base_reports STREQUAL storm_reports)
  message(FATAL_ERROR "storm reports differ from the clean sharded replay:\n"
                      "--- clean\n${base_reports}\n--- storm\n${storm_reports}")
endif()
message(STATUS "storm drill passed: stall recovered, reports identical")
