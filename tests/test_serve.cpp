// Tests for the serve subsystem: address/target parsing, the SKYNETJ1
// wire codec, the unified engine_options surface, the windowed incident
// store (edge cases + concurrent query-during-ingest), and the daemon
// itself — including the load-bearing guarantee that a daemon fed the
// same trace as the batch CLI serves a byte-identical report listing.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "skynet/serve/daemon.h"
#include "skynet/serve/engine_options.h"
#include "skynet/serve/http.h"
#include "skynet/serve/incident_store.h"
#include "skynet/serve/net.h"
#include "skynet/serve/report_text.h"
#include "skynet/serve/wire.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

namespace skynet::serve {
namespace {

// ---------------------------------------------------------------------------
// Address parsing.

TEST(NetTest, ParsesUnixAndTcpAddresses) {
    const auto u = parse_addr("unix:/tmp/skynet.sock");
    ASSERT_TRUE(u.has_value());
    EXPECT_TRUE(u->is_unix);
    EXPECT_EQ(u->path, "/tmp/skynet.sock");
    EXPECT_EQ(u->to_string(), "unix:/tmp/skynet.sock");

    const auto t = parse_addr("tcp:127.0.0.1:8080");
    ASSERT_TRUE(t.has_value());
    EXPECT_FALSE(t->is_unix);
    EXPECT_EQ(t->host, "127.0.0.1");
    EXPECT_EQ(t->port, 8080);
    EXPECT_EQ(t->to_string(), "tcp:127.0.0.1:8080");

    const auto eph = parse_addr("tcp:localhost:0");
    ASSERT_TRUE(eph.has_value());
    EXPECT_EQ(eph->port, 0);
}

TEST(NetTest, RejectsMalformedAddresses) {
    EXPECT_FALSE(parse_addr("").has_value());
    EXPECT_FALSE(parse_addr("skynet.sock").has_value());
    EXPECT_FALSE(parse_addr("unix:").has_value());
    EXPECT_FALSE(parse_addr("tcp:127.0.0.1").has_value());
    EXPECT_FALSE(parse_addr("tcp:127.0.0.1:notaport").has_value());
    EXPECT_FALSE(parse_addr("tcp:127.0.0.1:70000").has_value());
    EXPECT_FALSE(parse_addr("udp:127.0.0.1:53").has_value());
}

// ---------------------------------------------------------------------------
// HTTP target parsing.

TEST(HttpTest, UrlDecodeHandlesEscapesAndPlus) {
    EXPECT_EQ(url_decode("Region%20A"), "Region A");
    EXPECT_EQ(url_decode("a+b"), "a b");
    EXPECT_EQ(url_decode("%2Fpath%3D1"), "/path=1");
    EXPECT_EQ(url_decode("plain"), "plain");
}

TEST(HttpTest, ParseTargetSplitsPathAndQuery) {
    const http_request req = parse_target("GET", "/v1/incidents?loc=Region%20A&limit=5&loc=B");
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/v1/incidents");
    ASSERT_EQ(req.params.size(), 3u);
    // Repeated keys: param() returns the last occurrence.
    ASSERT_NE(req.param("loc"), nullptr);
    EXPECT_EQ(*req.param("loc"), "B");
    ASSERT_NE(req.param("limit"), nullptr);
    EXPECT_EQ(*req.param("limit"), "5");
    EXPECT_EQ(req.param("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Wire codec.

std::vector<traced_alert> tiny_batch(sim_time arrival) {
    traced_alert t;
    t.arrival = arrival;
    t.alert.source = data_source::snmp;
    t.alert.kind = "link_down";
    t.alert.message = "wire test alert";
    t.alert.timestamp = arrival;
    return {t, t};
}

TEST(WireTest, RoundTripsThroughDribbledFeed) {
    std::string stream{persist::journal_magic};
    std::string payload;
    persist::encode_batch_payload(payload, tiny_batch(seconds(1)));
    stream += frame_record(persist::record_type::batch, payload);
    stream += frame_record(persist::record_type::tick,
                           persist::encode_barrier_payload(seconds(2)));
    stream += frame_record(persist::record_type::finish,
                           persist::encode_barrier_payload(minutes(21)));

    // Feed one byte at a time: the decoder must reassemble frames split
    // at every possible boundary (what a real socket can do).
    wire_decoder dec;
    std::vector<persist::journal_record> out;
    for (const char c : stream) {
        dec.feed(std::string_view(&c, 1));
        while (auto rec = dec.next()) out.push_back(std::move(*rec));
    }
    EXPECT_FALSE(dec.corrupt());
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].type, persist::record_type::batch);
    EXPECT_EQ(out[0].batch.size(), 2u);
    EXPECT_EQ(out[0].batch[0].alert.message, "wire test alert");
    EXPECT_EQ(out[1].type, persist::record_type::tick);
    EXPECT_EQ(out[1].now, seconds(2));
    EXPECT_EQ(out[2].type, persist::record_type::finish);
    EXPECT_EQ(out[2].now, minutes(21));
    EXPECT_EQ(dec.records_decoded(), 3u);
}

TEST(WireTest, RejectsBadMagic) {
    wire_decoder dec;
    dec.feed("NOTMAGIC????????");
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_TRUE(dec.corrupt());
    EXPECT_NE(dec.corruption_reason().find("magic"), std::string::npos);
}

TEST(WireTest, RejectsCorruptPayload) {
    std::string stream{persist::journal_magic};
    std::string payload;
    persist::encode_batch_payload(payload, tiny_batch(seconds(1)));
    std::string frame = frame_record(persist::record_type::batch, payload);
    frame.back() ^= 0x5a;  // flip a payload byte: CRC must catch it
    stream += frame;

    wire_decoder dec;
    dec.feed(stream);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_TRUE(dec.corrupt());
    EXPECT_NE(dec.corruption_reason().find("CRC"), std::string::npos);
}

TEST(WireTest, RejectsUnknownRecordType) {
    std::string stream{persist::journal_magic};
    stream += frame_record(static_cast<persist::record_type>(9), "");
    wire_decoder dec;
    dec.feed(stream);
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_TRUE(dec.corrupt());
}

// ---------------------------------------------------------------------------
// Unified option surface.

std::vector<const char*> argv_of(std::initializer_list<const char*> flags) {
    std::vector<const char*> argv{"skynet_cli"};
    argv.insert(argv.end(), flags);
    return argv;
}

cli_parse_result parse(std::initializer_list<const char*> flags) {
    const auto argv = argv_of(flags);
    return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(EngineOptionsTest, ModeSelection) {
    EXPECT_EQ(parse({}).mode, run_mode::batch);
    EXPECT_EQ(parse({"--help"}).mode, run_mode::help);
    EXPECT_EQ(parse({"--serve", "unix:/tmp/x.sock"}).mode, run_mode::serve);
    EXPECT_EQ(parse({"--http", "tcp:127.0.0.1:0"}).mode, run_mode::serve);
    // --connect wins over --serve: the process is a client.
    EXPECT_EQ(parse({"--connect", "tcp:127.0.0.1:1", "--get", "/v1/health"}).mode,
              run_mode::client);
}

TEST(EngineOptionsTest, ParseErrorsNameTheFlag) {
    const auto unknown = parse({"--no-such-flag"});
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.errors[0].option, "--no-such-flag");

    const auto bad_number = parse({"--shards", "many"});
    ASSERT_FALSE(bad_number.ok());
    EXPECT_EQ(bad_number.errors[0].option, "--shards");

    const auto missing_value = parse({"--seed"});
    ASSERT_FALSE(missing_value.ok());
    EXPECT_EQ(missing_value.errors[0].option, "--seed");
}

std::vector<std::string> offending_flags(const std::vector<option_error>& errors) {
    std::vector<std::string> flags;
    for (const option_error& e : errors) flags.push_back(e.option);
    return flags;
}

TEST(EngineOptionsTest, ValidateCrossChecksBlocks) {
    engine_options opt;
    EXPECT_TRUE(opt.validate(run_mode::batch).empty());

    opt.crash_after = 3;  // crash drill without a checkpoint dir
    auto errors = offending_flags(opt.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--crash-after"), errors.end());

    engine_options noise;
    noise.noise = 1.5;
    errors = offending_flags(noise.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--noise"), errors.end());

    engine_options both;
    both.topo_preset = "large";
    both.topo_file = "x.topo";
    errors = offending_flags(both.validate(run_mode::batch));
    EXPECT_FALSE(errors.empty());
}

TEST(EngineOptionsTest, ServeModeRejectsBatchOnlyFlags) {
    engine_options opt;
    opt.serve.ingest_addr = "unix:/tmp/x.sock";
    EXPECT_TRUE(opt.validate(run_mode::serve).empty());

    opt.replay_file = "trace.txt";
    EXPECT_FALSE(opt.validate(run_mode::serve).empty());

    engine_options bad_addr;
    bad_addr.serve.ingest_addr = "not-an-address";
    EXPECT_FALSE(bad_addr.validate(run_mode::serve).empty());
}

TEST(EngineOptionsTest, SketchFlagsParseAndPropagate) {
    using sketch::counting_mode;
    // Default: auto mode with the drill-safe threshold.
    EXPECT_EQ(parse({}).opts.pipeline.pre.sketch.mode, counting_mode::auto_switch);

    const auto on = parse({"--sketch", "on", "--sketch-threshold", "4096"});
    ASSERT_TRUE(on.ok());
    EXPECT_EQ(on.opts.pipeline.pre.sketch.mode, counting_mode::always);
    EXPECT_EQ(on.opts.pipeline.pre.sketch.threshold, 4096u);
    EXPECT_EQ(parse({"--sketch", "off"}).opts.pipeline.pre.sketch.mode, counting_mode::off);
    EXPECT_EQ(parse({"--sketch", "auto"}).opts.pipeline.pre.sketch.mode,
              counting_mode::auto_switch);

    const auto bad = parse({"--sketch", "sometimes"});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.errors[0].option, "--sketch");

    // One flag governs both layers: the guard inherits the same policy.
    EXPECT_EQ(on.opts.overload_config().sketch.mode, counting_mode::always);
    EXPECT_EQ(on.opts.overload_config().sketch.threshold, 4096u);
    // And the sharded engine's per-shard pipelines carry it too.
    EXPECT_EQ(on.opts.sharded().engine.pre.sketch.mode, counting_mode::always);

    // A zero threshold leaves auto mode with no exact regime; validate
    // rejects it through the pipeline block.
    const auto zero = parse({"--sketch", "auto", "--sketch-threshold", "0"});
    ASSERT_TRUE(zero.ok());
    EXPECT_FALSE(zero.opts.validate(run_mode::batch).empty());
}

TEST(EngineOptionsTest, ShardsAcceptsAutoAndEnforcesUpperBound) {
    const auto automatic = parse({"--shards", "auto"});
    ASSERT_TRUE(automatic.ok());
    EXPECT_EQ(automatic.opts.shards,
              static_cast<int>(std::thread::hardware_concurrency()));
    EXPECT_TRUE(automatic.opts.validate(run_mode::batch).empty());

    const auto bad = parse({"--shards", "lots"});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.errors[0].option, "--shards");

    engine_options too_many;
    too_many.shards = engine_options::kMaxShards + 1;
    const auto errors = offending_flags(too_many.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--shards"), errors.end());

    engine_options at_cap;
    at_cap.shards = engine_options::kMaxShards;
    EXPECT_TRUE(at_cap.validate(run_mode::batch).empty());
}

TEST(EngineOptionsTest, StealFlagParsesOnOffAndReachesShardedConfig) {
    EXPECT_TRUE(parse({}).opts.steal);  // stealing is the default
    EXPECT_TRUE(parse({"--steal", "on"}).opts.steal);

    const auto off = parse({"--steal", "off"});
    ASSERT_TRUE(off.ok());
    EXPECT_FALSE(off.opts.steal);
    EXPECT_FALSE(off.opts.sharded().steal);
    EXPECT_TRUE(parse({"--steal", "on"}).opts.sharded().steal);

    const auto bad = parse({"--steal", "maybe"});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.errors[0].option, "--steal");
}

TEST(EngineOptionsTest, LifecycleFlagsParseAndPropagate) {
    EXPECT_FALSE(parse({}).opts.lifecycle);  // the layer is opt-in
    EXPECT_FALSE(parse({}).opts.diff);

    const auto on = parse({"--lifecycle", "on", "--flap-threshold", "4", "--recurrence-window",
                           "45", "--auto-close-quiet", "9", "--diff"});
    ASSERT_TRUE(on.ok());
    EXPECT_TRUE(on.opts.lifecycle);
    EXPECT_TRUE(on.opts.diff);
    EXPECT_EQ(on.opts.flap_threshold, 4);
    EXPECT_EQ(on.opts.recurrence_window_min, 45);
    EXPECT_EQ(on.opts.auto_close_quiet_min, 9);
    EXPECT_TRUE(on.opts.validate(run_mode::batch).empty());
    // The derived manager config carries the converted durations.
    const lifecycle::config cfg = on.opts.lifecycle_config();
    EXPECT_EQ(cfg.flap_threshold, 4);
    EXPECT_EQ(cfg.recurrence_window, minutes(45));
    EXPECT_EQ(cfg.auto_close_quiet, minutes(9));

    EXPECT_FALSE(parse({"--lifecycle", "off"}).opts.lifecycle);

    const auto bad = parse({"--lifecycle", "sometimes"});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.errors[0].option, "--lifecycle");

    const auto bad_threshold = parse({"--flap-threshold", "many"});
    ASSERT_FALSE(bad_threshold.ok());
    EXPECT_EQ(bad_threshold.errors[0].option, "--flap-threshold");

    const auto missing = parse({"--recurrence-window"});
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.errors[0].option, "--recurrence-window");
}

TEST(EngineOptionsTest, LifecycleValidateCrossChecks) {
    // Each tuning knob without --lifecycle on is rejected by name.
    engine_options threshold;
    threshold.flap_threshold = 5;
    auto errors = offending_flags(threshold.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--flap-threshold"), errors.end());

    engine_options window;
    window.recurrence_window_min = 10;
    errors = offending_flags(window.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--recurrence-window"), errors.end());

    engine_options quiet;
    quiet.auto_close_quiet_min = 2;
    errors = offending_flags(quiet.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--auto-close-quiet"), errors.end());

    engine_options diff_only;
    diff_only.diff = true;
    errors = offending_flags(diff_only.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--diff"), errors.end());

    // Nonsense manager settings surface through config::validate.
    engine_options degenerate;
    degenerate.lifecycle = true;
    degenerate.flap_threshold = 1;  // hysteresis needs >= 2
    EXPECT_FALSE(degenerate.validate(run_mode::batch).empty());

    engine_options zero_window;
    zero_window.lifecycle = true;
    zero_window.recurrence_window_min = 0;
    EXPECT_FALSE(zero_window.validate(run_mode::batch).empty());

    // The layer is valid in serve mode (the daemon hosts /v1/diff).
    engine_options serve_ok;
    serve_ok.lifecycle = true;
    serve_ok.diff = true;
    serve_ok.serve.ingest_addr = "unix:/tmp/x.sock";
    EXPECT_TRUE(serve_ok.validate(run_mode::serve).empty());
}

TEST(EngineOptionsTest, ClientModeRejectsLifecycleFlags) {
    // The client proxies a remote daemon; the life-cycle layer lives
    // server-side, so both flags are refused with --connect.
    engine_options opt;
    opt.client.connect = "tcp:127.0.0.1:1";
    opt.client.get_path = "/v1/diff";  // querying the diff is fine
    EXPECT_TRUE(opt.validate(run_mode::client).empty());

    opt.lifecycle = true;
    auto errors = offending_flags(opt.validate(run_mode::client));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--lifecycle"), errors.end());

    engine_options diff_client;
    diff_client.client.connect = "tcp:127.0.0.1:1";
    diff_client.client.get_path = "/v1/health";
    diff_client.diff = true;
    errors = offending_flags(diff_client.validate(run_mode::client));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--diff"), errors.end());
}

TEST(EngineOptionsTest, ClientModeRequiresExactlyOneAction) {
    engine_options opt;
    opt.client.connect = "tcp:127.0.0.1:1";
    EXPECT_FALSE(opt.validate(run_mode::client).empty());  // no action

    opt.client.get_path = "/v1/health";
    EXPECT_TRUE(opt.validate(run_mode::client).empty());

    opt.client.stream_file = "trace.txt";  // two actions
    EXPECT_FALSE(opt.validate(run_mode::client).empty());
}

TEST(EngineOptionsTest, RetryFlagsParseAndValidateRanges) {
    const auto parsed = parse({"--retry", "3", "--retry-base-ms", "50"});
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.opts.retry, 3);
    EXPECT_EQ(parsed.opts.retry_base_ms, 50);
    EXPECT_EQ(parse({}).opts.retry, 0);  // retries are opt-in

    engine_options negative;
    negative.retry = -1;
    auto errors = offending_flags(negative.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--retry"), errors.end());

    engine_options excessive;
    excessive.retry = 101;
    errors = offending_flags(excessive.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--retry"), errors.end());

    engine_options zero_base;
    zero_base.retry_base_ms = 0;
    errors = offending_flags(zero_base.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--retry-base-ms"), errors.end());
}

TEST(EngineOptionsTest, FederateFlagParsesEmitAndAggregate) {
    const auto emit = parse(
        {"--federate", "emit:west@unix:/tmp/agg.sock", "--serve", "unix:/tmp/in.sock"});
    ASSERT_TRUE(emit.ok());
    EXPECT_EQ(emit.mode, run_mode::serve);
    EXPECT_EQ(emit.opts.federate.emit_region, "west");
    EXPECT_EQ(emit.opts.federate.emit_addr, "unix:/tmp/agg.sock");
    EXPECT_TRUE(emit.opts.validate(run_mode::serve).empty());

    // The aggregator is serve mode even without an ingest listener.
    const auto agg = parse(
        {"--federate", "aggregate:unix:/tmp/agg.sock", "--http", "tcp:127.0.0.1:0"});
    ASSERT_TRUE(agg.ok());
    EXPECT_EQ(agg.mode, run_mode::serve);
    EXPECT_EQ(agg.opts.federate.aggregate_addr, "unix:/tmp/agg.sock");
    EXPECT_TRUE(agg.opts.validate(run_mode::serve).empty());

    for (const char* spec : {"bogus", "emit:", "emit:west", "emit:@addr", "emit:west@",
                             "aggregate:"}) {
        const auto bad = parse({"--federate", spec});
        ASSERT_FALSE(bad.ok()) << spec;
        EXPECT_EQ(bad.errors[0].option, "--federate") << spec;
    }
}

TEST(EngineOptionsTest, FederateValidationCrossChecksRoles) {
    // emit: is meaningless without a daemon to emit from.
    engine_options batch_emit;
    batch_emit.federate.emit_region = "west";
    batch_emit.federate.emit_addr = "unix:/tmp/agg.sock";
    auto errors = offending_flags(batch_emit.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--federate"), errors.end());

    // ...and in serve mode it needs the ingest listener, not just --http.
    engine_options no_ingest = batch_emit;
    no_ingest.serve.http_addr = "tcp:127.0.0.1:0";
    errors = offending_flags(no_ingest.validate(run_mode::serve));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--federate"), errors.end());

    // The aggregator serves its merged view over HTTP or not at all.
    engine_options headless;
    headless.federate.aggregate_addr = "unix:/tmp/agg.sock";
    errors = offending_flags(headless.validate(run_mode::serve));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--federate"), errors.end());

    // One process is either an emitter or the aggregator, never both,
    // and the aggregator runs no engine (no ingest/checkpoints).
    engine_options both;
    both.federate.emit_region = "west";
    both.federate.emit_addr = "unix:/tmp/agg.sock";
    both.federate.aggregate_addr = "unix:/tmp/agg.sock";
    both.serve.ingest_addr = "unix:/tmp/in.sock";
    both.serve.http_addr = "tcp:127.0.0.1:0";
    EXPECT_FALSE(both.validate(run_mode::serve).empty());

    engine_options agg_with_engine;
    agg_with_engine.federate.aggregate_addr = "unix:/tmp/agg.sock";
    agg_with_engine.serve.ingest_addr = "unix:/tmp/in.sock";
    agg_with_engine.serve.http_addr = "tcp:127.0.0.1:0";
    EXPECT_FALSE(agg_with_engine.validate(run_mode::serve).empty());

    // The digest journal rides the emitter role.
    engine_options journal_only;
    journal_only.serve.ingest_addr = "unix:/tmp/in.sock";
    journal_only.federate.journal_dir = "/tmp/fed";
    errors = offending_flags(journal_only.validate(run_mode::serve));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--fed-journal"), errors.end());

    // Staleness thresholds must be strictly increasing.
    engine_options thresholds;
    thresholds.serve.ingest_addr = "unix:/tmp/in.sock";
    thresholds.federate.lag_ms = 5000;
    thresholds.federate.stale_ms = 5000;
    EXPECT_FALSE(thresholds.validate(run_mode::serve).empty());

    // Federation never applies to the one-shot client.
    engine_options client;
    client.client.connect = "tcp:127.0.0.1:1";
    client.client.get_path = "/v1/health";
    client.federate.emit_region = "west";
    client.federate.emit_addr = "unix:/tmp/agg.sock";
    errors = offending_flags(client.validate(run_mode::client));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--federate"), errors.end());
}

TEST(EngineOptionsTest, ResumeStreamRequiresARecoveringDaemon) {
    engine_options opt;
    opt.serve.ingest_addr = "unix:/tmp/in.sock";
    opt.resume_stream = true;
    auto errors = offending_flags(opt.validate(run_mode::serve));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--resume-stream"), errors.end());

    opt.recover = true;
    opt.checkpoint_dir = "/tmp/ckpt";
    EXPECT_TRUE(opt.validate(run_mode::serve).empty());

    engine_options batch;
    batch.resume_stream = true;
    errors = offending_flags(batch.validate(run_mode::batch));
    EXPECT_NE(std::find(errors.begin(), errors.end(), "--resume-stream"), errors.end());
}

// ---------------------------------------------------------------------------
// Reconnect backoff schedule.

TEST(NetTest, BackoffDelayIsDeterministicAndBounded) {
    const retry_policy policy{.attempts = 5, .base_ms = 100, .max_ms = 5000, .seed = 42};
    for (int attempt = 0; attempt < 8; ++attempt) {
        const auto cap = std::min<std::int64_t>(
            static_cast<std::int64_t>(policy.base_ms) << attempt, policy.max_ms);
        const auto d = backoff_delay(policy, attempt);
        // Same (seed, attempt) -> same delay: replays and tests see one
        // schedule.
        EXPECT_EQ(d, backoff_delay(policy, attempt));
        EXPECT_GE(d.count(), cap / 2) << attempt;
        EXPECT_LE(d.count(), cap) << attempt;
    }
    // The exponent saturates at max_ms instead of overflowing.
    EXPECT_LE(backoff_delay(policy, 62).count(), policy.max_ms);

    // Distinct seeds de-synchronize reconnect storms: at least one
    // attempt in the window must differ.
    retry_policy other = policy;
    other.seed = 43;
    bool differs = false;
    for (int attempt = 0; attempt < 8 && !differs; ++attempt) {
        differs = backoff_delay(policy, attempt) != backoff_delay(other, attempt);
    }
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Incident store. Reports come from a real pipeline run so entries carry
// realistic windows, types and severities.

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::tiny()) {
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 150, crand);
    }
};

std::vector<incident_report> some_reports(world& w, std::uint64_t seed) {
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors();
    rng srand(seed + 1);
    sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(4));
    skynet_engine engine(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
    sim.run_until(minutes(6),
                  [&](const raw_alert& a, sim_time arrival) { engine.ingest(a, arrival); },
                  [&](sim_time now) { engine.tick(now, sim.state()); });
    engine.finish(sim.clock().now(), sim.state());
    return engine.take_reports();
}

/// A multi-incident report set for the store tests, produced once (the
/// multi-site DDoS on the small topology reliably yields several
/// incidents; the reports are value types, so they outlive the world).
const std::vector<incident_report>& store_fixture_reports() {
    static const std::vector<incident_report> reports = [] {
        world w(generator_params::small());
        return some_reports(w, 11);
    }();
    return reports;
}

class IncidentStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        reports_ = store_fixture_reports();
        ASSERT_GE(reports_.size(), 2u) << "need at least two incidents for paging tests";
        // Two barriers so barrier_time visibly advances.
        const std::size_t half = reports_.size() / 2;
        std::vector<incident_report> first(reports_.begin(), reports_.begin() + half);
        std::vector<incident_report> rest(reports_.begin() + half, reports_.end());
        store_.append_closed(first, minutes(5));
        store_.append_closed(rest, minutes(6));
    }

    std::vector<incident_report> reports_;
    incident_store store_;
};

TEST_F(IncidentStoreTest, UnconstrainedQueryReturnsEverything) {
    const auto res = store_.query({});
    EXPECT_EQ(res.items.size(), reports_.size());
    EXPECT_EQ(res.total, reports_.size());
    EXPECT_FALSE(res.has_more);
    EXPECT_EQ(res.barrier_time, minutes(6));
}

TEST_F(IncidentStoreTest, EmptyWindowMatchesNothing) {
    incident_store::query_params p;
    p.from = minutes(600);  // far past every incident
    p.to = minutes(700);
    const auto res = store_.query(p);
    EXPECT_TRUE(res.items.empty());
    EXPECT_FALSE(res.has_more);
}

TEST_F(IncidentStoreTest, ReversedBoundsAreEmptyNotAnError) {
    incident_store::query_params p;
    p.from = minutes(10);
    p.to = minutes(1);
    const auto res = store_.query(p);
    EXPECT_TRUE(res.items.empty());
    EXPECT_FALSE(res.has_more);
    EXPECT_EQ(res.next_cursor, store_.size());
}

TEST_F(IncidentStoreTest, CursorPastEndIsEmpty) {
    incident_store::query_params p;
    p.cursor = store_.size() + 5;
    const auto res = store_.query(p);
    EXPECT_TRUE(res.items.empty());
    EXPECT_FALSE(res.has_more);
}

TEST_F(IncidentStoreTest, LimitZeroProbesWithoutConsuming) {
    incident_store::query_params p;
    p.limit = 0;
    const auto res = store_.query(p);
    EXPECT_TRUE(res.items.empty());
    EXPECT_TRUE(res.has_more);          // matches exist...
    EXPECT_EQ(res.next_cursor, 0u);     // ...and the cursor did not move past them
}

TEST_F(IncidentStoreTest, PaginationCoversTheLogExactlyOnce) {
    incident_store::query_params p;
    p.limit = 1;
    std::vector<std::uint64_t> seen;
    for (;;) {
        const auto page = store_.query(p);
        for (const auto& it : page.items) seen.push_back(it.ordinal);
        if (!page.has_more) break;
        p.cursor = page.next_cursor;
    }
    ASSERT_EQ(seen.size(), reports_.size());
    for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(IncidentStoreTest, IdLookupFindsTheIncident) {
    incident_store::query_params p;
    p.id = reports_.front().inc.id;
    const auto res = store_.query(p);
    ASSERT_EQ(res.items.size(), 1u);
    EXPECT_EQ(res.items[0].entry.report.inc.id, *p.id);

    p.id = 999999;
    EXPECT_TRUE(store_.query(p).items.empty());
}

TEST_F(IncidentStoreTest, RankedReportsMatchGlobalOrdering) {
    const auto ranked = store_.ranked_reports();
    ASSERT_EQ(ranked.size(), reports_.size());
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_FALSE(report_before(ranked[i], ranked[i - 1]));
    }
}

TEST(IncidentStoreConcurrencyTest, QueriesRaceIngestCleanly) {
    // tsan-labeled: readers hammer query()/ranked_reports() while a
    // writer appends barrier batches. The shared_mutex plus copy-out
    // result must keep every observation barrier-consistent.
    const auto& reports = store_fixture_reports();
    ASSERT_FALSE(reports.empty());

    incident_store store;
    std::atomic<bool> start{false};

    std::thread writer([&] {
        while (!start.load()) std::this_thread::yield();
        for (int round = 0; round < 50; ++round) {
            store.append_closed(reports, minutes(round + 1));
        }
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!start.load()) std::this_thread::yield();
            for (int i = 0; i < 200; ++i) {
                const auto res = store.query({});
                // Whole barriers only: the log size is always a
                // multiple of one barrier's batch (items may be cut
                // short by the default page limit).
                EXPECT_EQ(res.total % reports.size(), 0u);
                (void)store.ranked_reports();
            }
        });
    }
    start.store(true);
    writer.join();
    for (auto& t : readers) t.join();
    EXPECT_EQ(store.size(), reports.size() * 50);
}

// ---------------------------------------------------------------------------
// Daemon.

std::string unique_sock(const char* tag) {
    return "unix:" + testing::TempDir() + "serve_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

engine_options daemon_options(const std::string& ingest) {
    engine_options opt;
    opt.serve.ingest_addr = ingest;
    return opt;
}

TEST(DaemonTest, StreamedTraceMatchesBatchEngineByteForByte) {
    world w;

    // Record one flood as a flat trace.
    std::vector<traced_alert> alerts;
    {
        simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 17});
        sim.add_default_monitors();
        rng srand(18);
        sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(4));
        sim.run_until_batched(minutes(6),
                              [&](std::span<const traced_alert> batch) {
                                  alerts.insert(alerts.end(), batch.begin(), batch.end());
                              },
                              [](sim_time) {});
    }
    ASSERT_FALSE(alerts.empty());

    // Batch side: the CLI's replay loop (2s tick batching, finish 20min
    // after the last arrival), rendered with the shared listing.
    skynet_engine batch(skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
    network_state idle(&w.topo, &w.customers);
    {
        sim_time last_tick = 0;
        sim_time last_arrival = 0;
        std::vector<traced_alert> pending;
        for (const traced_alert& t : alerts) {
            pending.push_back(t);
            last_arrival = t.arrival;
            if (t.arrival - last_tick >= seconds(2)) {
                batch.ingest_batch(pending);
                pending.clear();
                batch.tick(t.arrival, idle);
                last_tick = t.arrival;
            }
        }
        if (!pending.empty()) batch.ingest_batch(pending);
        batch.finish(last_arrival + minutes(20), idle);
    }
    const auto batch_reports = batch.take_reports();
    ASSERT_FALSE(batch_reports.empty());
    const std::string batch_listing =
        render_report_listing(batch_reports, {.json = true, .timeline = false});

    // Daemon side: same trace, over the wire.
    daemon d(w.topo, w.customers, w.registry, &w.syslog,
             daemon_options(unique_sock("parity")));
    ASSERT_FALSE(d.start());
    std::string err;
    const auto stats = stream_trace(*parse_addr(d.ingest_addr()), alerts, seconds(2),
                                    minutes(20), err);
    ASSERT_TRUE(stats.has_value()) << err;
    EXPECT_TRUE(stats->ok()) << stats->status;
    EXPECT_EQ(stats->alerts, alerts.size());

    const http_reply report = d.handle(parse_target("GET", "/v1/report?json=1"));
    EXPECT_EQ(report.status, 200);
    EXPECT_EQ(report.body, batch_listing);

    // Health is the canonical engine_metrics schema with the streamed
    // volume in it.
    const http_reply health = d.handle(parse_target("GET", "/v1/health"));
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"alerts_in\":"), std::string::npos);

    // Incidents view agrees with the batch count.
    const http_reply incidents = d.handle(parse_target("GET", "/v1/incidents"));
    EXPECT_EQ(incidents.status, 200);
    EXPECT_NE(incidents.body.find("\"total\":" + std::to_string(batch_reports.size())),
              std::string::npos);

    d.request_stop();
    EXPECT_EQ(d.run(), 0);
}

TEST(DaemonTest, HttpIngestAcceptsTraceTextAndServesQueries) {
    world w;
    const auto reports = some_reports(w, 19);  // just to exercise the sim path
    ASSERT_FALSE(reports.empty());

    daemon d(w.topo, w.customers, w.registry, &w.syslog,
             daemon_options(unique_sock("ingest")));
    ASSERT_FALSE(d.start());

    // Bad trace text: 400, engine untouched.
    http_request bad = parse_target("POST", "/v1/ingest");
    bad.body = "not a trace line\n";
    EXPECT_EQ(d.handle(bad).status, 400);

    // Unknown routes and wrong methods.
    EXPECT_EQ(d.handle(parse_target("GET", "/v1/nope")).status, 404);
    EXPECT_EQ(d.handle(parse_target("POST", "/v1/health")).status, 405);

    // Malformed query parameter values: 400 with the flag named.
    const http_reply bad_param = d.handle(parse_target("GET", "/v1/incidents?limit=soon"));
    EXPECT_EQ(bad_param.status, 400);
    EXPECT_NE(bad_param.body.find("limit"), std::string::npos);

    d.request_stop();
    EXPECT_EQ(d.run(), 0);
}

TEST(DaemonConcurrencyTest, QueriesRaceWireIngest) {
    // tsan-labeled: HTTP reads via handle() race a live wire stream.
    // Queries must only ever see barrier-consistent snapshots.
    world w;
    std::vector<traced_alert> alerts;
    {
        simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 23});
        sim.add_default_monitors();
        rng srand(24);
        sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(4));
        sim.run_until_batched(minutes(6),
                              [&](std::span<const traced_alert> batch) {
                                  alerts.insert(alerts.end(), batch.begin(), batch.end());
                              },
                              [](sim_time) {});
    }

    daemon d(w.topo, w.customers, w.registry, &w.syslog,
             daemon_options(unique_sock("race")));
    ASSERT_FALSE(d.start());

    std::atomic<bool> done{false};
    std::thread reader([&] {
        while (!done.load()) {
            EXPECT_EQ(d.handle(parse_target("GET", "/v1/health")).status, 200);
            EXPECT_EQ(d.handle(parse_target("GET", "/v1/incidents?limit=5")).status, 200);
            EXPECT_EQ(d.handle(parse_target("GET", "/v1/report?json=1")).status, 200);
        }
    });
    std::string err;
    const auto stats = stream_trace(*parse_addr(d.ingest_addr()), alerts, seconds(2),
                                    minutes(20), err);
    done.store(true);
    reader.join();
    ASSERT_TRUE(stats.has_value()) << err;
    EXPECT_TRUE(stats->ok()) << stats->status;

    d.request_stop();
    EXPECT_EQ(d.run(), 0);
}

// ---------------------------------------------------------------------------
// Wire ingest hardening: clients that die mid-frame or send garbage.

/// Dials the daemon's ingest socket and writes `bytes` verbatim.
/// Returns the connected fd (caller closes).
int dial_and_write(const std::string& addr_text, std::string_view bytes) {
    const auto addr = parse_addr(addr_text);
    if (!addr) return -1;
    std::string err;
    const int fd = dial(*addr, err);
    if (fd < 0) return -1;
    if (!write_all(fd, bytes)) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::string full_stream_bytes() {
    std::string payload;
    persist::encode_batch_payload(payload, tiny_batch(seconds(1)));
    std::string stream{persist::journal_magic};
    stream += frame_record(persist::record_type::batch, payload);
    stream += frame_record(persist::record_type::finish,
                           persist::encode_barrier_payload(minutes(21)));
    return stream;
}

TEST(DaemonTest, AbruptMidFrameDisconnectLeavesNoPartialBatch) {
    world w;
    daemon d(w.topo, w.customers, w.registry, &w.syslog,
             daemon_options(unique_sock("abrupt")));
    ASSERT_FALSE(d.start());

    // A client dies mid-frame: magic plus a batch frame cut in half.
    // The truncated record must never reach the engine.
    const std::string stream = full_stream_bytes();
    const std::size_t cut = std::string(persist::journal_magic).size() + 7;
    ASSERT_LT(cut, stream.size());
    const int fd = dial_and_write(d.ingest_addr(), stream.substr(0, cut));
    ASSERT_GE(fd, 0);
    ::close(fd);  // abrupt: no shutdown handshake, no finish record

    // The next connection must be accepted cleanly and stream to
    // completion (the listener is serial, so the OK here also proves the
    // dead session's handler exited instead of wedging).
    const int fd2 = dial_and_write(d.ingest_addr(), stream);
    ASSERT_GE(fd2, 0);
    std::string ok_line;
    ASSERT_TRUE(read_line(fd2, ok_line, 5000));
    EXPECT_EQ(ok_line, "OK 2 2");  // batch + finish, two alerts — once
    ::close(fd2);

    // Exactly the complete session's alerts, none from the torn one.
    const http_reply health = d.handle(parse_target("GET", "/v1/health"));
    EXPECT_NE(health.body.find("\"alerts_in\":2"), std::string::npos);

    d.request_stop();
    EXPECT_EQ(d.run(), 0);
}

TEST(DaemonTest, CorruptFrameGetsErrAndNextConnectionStillServes) {
    world w;
    daemon d(w.topo, w.customers, w.registry, &w.syslog,
             daemon_options(unique_sock("corrupt")));
    ASSERT_FALSE(d.start());

    // Flip one payload byte: the CRC check must latch the decoder and
    // the daemon must answer with an ERR line naming the reason.
    std::string stream = full_stream_bytes();
    stream[stream.size() / 2] ^= 0x5a;
    const int fd = dial_and_write(d.ingest_addr(), stream);
    ASSERT_GE(fd, 0);
    std::string err_line;
    ASSERT_TRUE(read_line(fd, err_line, 5000));
    EXPECT_EQ(err_line.substr(0, 3), "ERR");
    ::close(fd);

    // The poisoned session must not take the daemon with it.
    const int fd2 = dial_and_write(d.ingest_addr(), full_stream_bytes());
    ASSERT_GE(fd2, 0);
    std::string ok_line;
    ASSERT_TRUE(read_line(fd2, ok_line, 5000));
    EXPECT_EQ(ok_line, "OK 2 2");
    ::close(fd2);

    d.request_stop();
    EXPECT_EQ(d.run(), 0);
}

}  // namespace
}  // namespace skynet::serve
