// Region-sharded engine tests: the merged ranked output must be
// bit-identical to a sequential skynet_engine run on the same trace
// (same scenario, same seed), for any shard count — the partition
// invariant DESIGN.md "Region-sharded engine" documents. Also covers
// the batch-ingest API, skynet_config::validate(), the unified
// reports() view, and engine metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <span>

#include "skynet/core/pipeline.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::small()) {
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 300, crand);
    }

    [[nodiscard]] skynet_engine::deps deps() {
        return {&topo, &customers, &registry, &syslog};
    }

    [[nodiscard]] location first_logic_site() const {
        for (const device& d : topo.devices()) {
            if (d.role == device_role::isr) {
                return d.loc.ancestor_at(hierarchy_level::logic_site);
            }
        }
        throw std::runtime_error("no isr");
    }
};

using scenario_factory = std::function<std::unique_ptr<scenario>()>;

/// Replays one simulated episode through `eng`. The simulation is fully
/// deterministic for a given seed, so calling this twice with the same
/// arguments feeds two engines identical (alert, arrival) sequences,
/// tick cadence, and network states.
template <typename Engine>
void drive(world& w, Engine& eng, const scenario_factory& make, sim_duration duration,
           std::uint64_t seed) {
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    sim.inject(make(), minutes(1), duration);
    sim.run_until_batched(
        minutes(1) + duration + minutes(1),
        [&](std::span<const traced_alert> batch) { eng.ingest_batch(batch); },
        [&](sim_time now) { eng.tick(now, sim.state()); });
    eng.finish(sim.clock().now(), sim.state());
}

void expect_identical_reports(const std::vector<incident_report>& seq,
                              const std::vector<incident_report>& sharded) {
    ASSERT_EQ(seq.size(), sharded.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE("report " + std::to_string(i));
        EXPECT_EQ(seq[i].inc.id, sharded[i].inc.id);
        EXPECT_EQ(seq[i].inc.root.to_string(), sharded[i].inc.root.to_string());
        EXPECT_EQ(seq[i].inc.alerts.size(), sharded[i].inc.alerts.size());
        EXPECT_EQ(seq[i].severity.score, sharded[i].severity.score);
        EXPECT_EQ(seq[i].actionable, sharded[i].actionable);
        EXPECT_EQ(seq[i].render(), sharded[i].render());
    }
}

/// Runs the same episode through a sequential engine (deterministic ids
/// on, matching what the sharded engine forces) and a sharded one, and
/// asserts identical ranked reports plus identical aggregate stats.
void expect_equivalent(world& w, const scenario_factory& make, sim_duration duration,
                       std::uint64_t seed, std::size_t shards) {
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine seq(w.deps(), cfg);
    drive(w, seq, make, duration, seed);
    const std::vector<incident_report> seq_reports = seq.take_reports();
    const preprocessor_stats seq_stats = seq.preprocessing_stats();
    const std::int64_t seq_structured = seq.structured_alert_count();

    sharded_config scfg;
    scfg.shards = shards;
    sharded_engine par(w.deps(), scfg);
    drive(w, par, make, duration, seed);
    const std::vector<incident_report> par_reports = par.take_reports();

    expect_identical_reports(seq_reports, par_reports);
    EXPECT_EQ(seq_stats, par.preprocessing_stats());
    EXPECT_EQ(seq_structured, par.structured_alert_count());
}

TEST(ShardedEquivalenceTest, CableCutMatchesSequential) {
    world w;
    const location ls = w.first_logic_site();
    expect_equivalent(
        w, [&] { return make_internet_entry_cut(w.topo, ls, 0.6); }, minutes(6), 81, 4);
}

TEST(ShardedEquivalenceTest, DdosMatchesSequential) {
    world w;
    expect_equivalent(
        w,
        [&] {
            rng srand(82);
            return make_security_ddos(w.topo, srand, 3);
        },
        minutes(6), 83, 4);
}

TEST(ShardedEquivalenceTest, ShardCountInvariance) {
    // 1 shard and 4 shards must produce identical merged rankings.
    world w;
    const location ls = w.first_logic_site();
    const scenario_factory make = [&] { return make_internet_entry_cut(w.topo, ls, 0.5); };

    std::vector<std::vector<incident_report>> runs;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        sharded_config scfg;
        scfg.shards = shards;
        sharded_engine eng(w.deps(), scfg);
        drive(w, eng, make, minutes(5), 91);
        runs.push_back(eng.take_reports());
    }
    expect_identical_reports(runs[0], runs[1]);
}

TEST(ShardedEquivalenceTest, TinyQueueBackpressureStaysCorrect) {
    // A 2-slot queue with unbatched ingest forces the producer through
    // the full-queue wait path; output must be unaffected.
    world w;
    const location ls = w.first_logic_site();
    const scenario_factory make = [&] { return make_internet_entry_cut(w.topo, ls, 0.6); };

    sharded_config roomy;
    sharded_engine a(w.deps(), roomy);
    drive(w, a, make, minutes(5), 97);

    sharded_config tight;
    tight.queue_capacity = 2;
    tight.max_ingest_batch = 1;
    sharded_engine b(w.deps(), tight);
    drive(w, b, make, minutes(5), 97);

    expect_identical_reports(a.take_reports(), b.take_reports());
}

TEST(StealParityTest, StealOnAndOffMatchSequential) {
    // Deterministic stealing moves *where* a batch is prepared, never
    // the order its effects apply in, so toggling it cannot change a
    // byte of the merged ranking.
    world w;
    const scenario_factory make = [&] {
        rng srand(84);
        return make_security_ddos(w.topo, srand, 3);
    };

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine seq(w.deps(), cfg);
    drive(w, seq, make, minutes(5), 85);
    const std::vector<incident_report> seq_reports = seq.take_reports();

    for (const bool steal : {true, false}) {
        SCOPED_TRACE(steal ? "steal on" : "steal off");
        sharded_config scfg;
        scfg.shards = 4;
        scfg.steal = steal;
        // Unbatched ingest: many small stealable jobs per shard.
        scfg.max_ingest_batch = 1;
        sharded_engine par(w.deps(), scfg);
        drive(w, par, make, minutes(5), 85);
        expect_identical_reports(seq_reports, par.take_reports());
        const steal_metrics st = par.metrics().steal;
        if (!steal) {
            EXPECT_EQ(st.batches_stolen, 0u);
            EXPECT_EQ(st.steal_attempts, 0u);
        }
    }
}

TEST(StealParityTest, StealUnderStallKeepsParityAndStealsBatches) {
    // Composes stealing with the PR 5 watchdog stall clause: one shard
    // parks at its gate long enough for idle peers to prepare its queued
    // batches, the watchdog releases it, and the recovered owner applies
    // the thief-prepared work in submission order. The report must stay
    // byte-identical to the sequential run and at least one batch must
    // actually have been stolen — otherwise the test silently stopped
    // covering the thief path.
    world w;
    const scenario_factory make = [&] {
        rng srand(86);
        return make_security_ddos(w.topo, srand, 3);
    };

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine seq(w.deps(), cfg);
    drive(w, seq, make, minutes(4), 87);
    const std::vector<incident_report> seq_reports = seq.take_reports();

    sharded_config scfg;
    scfg.shards = 4;
    scfg.max_ingest_batch = 1;
    // A long leash: the stall must outlive the thieves' scan-and-prepare
    // cycle, and the watchdog must recover (not write off) the shard.
    scfg.watchdog_deadline_ms = 500;
    scfg.worker_stall = [](std::size_t shard, std::uint64_t ordinal) {
        return shard == 1 && ordinal == 2;
    };
    sharded_engine par(w.deps(), scfg);
    drive(w, par, make, minutes(4), 87);
    const std::vector<incident_report> par_reports = par.take_reports();

    expect_identical_reports(seq_reports, par_reports);
    const engine_metrics m = par.metrics();
    EXPECT_GE(m.overload.stalls_detected, 1u);
    EXPECT_EQ(m.overload.shards_written_off, 0u);
    EXPECT_GE(m.steal.batches_stolen, 1u);
    EXPECT_GE(m.steal.alerts_stolen, m.steal.batches_stolen);
}

TEST(ShardedEngineTest, RoutesRegionsAndCountsShards) {
    world w;
    sharded_config scfg;
    scfg.shards = 3;
    sharded_engine eng(w.deps(), scfg);
    EXPECT_EQ(eng.shard_count(), 3u);
    EXPECT_EQ(eng.region_count(), 0u);

    // One alert per region, plus one root-located alert that lands in
    // the "" unattributable bucket.
    std::set<std::string> regions;
    for (const device& d : w.topo.devices()) {
        const std::string region(d.loc.segments().front());
        if (!regions.insert(region).second) continue;
        raw_alert a;
        a.source = data_source::snmp;
        a.loc = d.loc;
        a.device = d.id;
        a.timestamp = seconds(10);
        eng.ingest(a, seconds(10));
    }
    ASSERT_GE(regions.size(), 2u);
    raw_alert global;
    global.source = data_source::traffic_stats;
    global.timestamp = seconds(10);
    eng.ingest(global, seconds(10));

    EXPECT_EQ(eng.region_count(), regions.size() + 1);
    (void)eng.take_reports();
}

TEST(ShardedEquivalenceTest, DuplicateNamesAcrossRegionsStayDistinct) {
    // Two regions whose inner segments are *identical* ("City X|LS 1|
    // Site I|Cluster 1" under both "Region A" and "Region B"). The
    // interner must key on full paths, not segments: the colliding
    // city/site names get distinct ids under each region, the shards
    // route them apart, and the merged output equals a sequential run
    // because reports compare by path, never by id (ids are
    // table-local, see location_table.h).
    topology topo;
    const location cl_a{"Region A", "City X", "LS 1", "Site I", "Cluster 1"};
    const location cl_b{"Region B", "City X", "LS 1", "Site I", "Cluster 1"};
    const device_id tor_a = topo.add_device("a-tor1", device_role::tor, cl_a.child("a-tor1"));
    const device_id tor_b = topo.add_device("b-tor1", device_role::tor, cl_b.child("b-tor1"));
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();
    const skynet_engine::deps deps{&topo, &customers, &registry, &syslog};

    const auto feed = [&](auto& eng) {
        network_state state(&topo, &customers);
        sim_time now = seconds(10);
        // Two distinct failure types per cluster: meets the default
        // 2/1+2/5 thresholds' pure-failure clause on both sides.
        for (const char* kind : {"int packet loss", "rate discrepancy"}) {
            for (const auto& [loc, dev] : {std::pair{cl_a, tor_a}, std::pair{cl_b, tor_b}}) {
                raw_alert a;
                a.source = data_source::inband_telemetry;
                a.timestamp = now;
                a.kind = kind;
                a.loc = loc;
                a.device = dev;
                eng.ingest(a, now);
            }
            now += seconds(5);
        }
        eng.tick(now, state);
        eng.finish(now + minutes(30), state);
        return eng.take_reports();
    };

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine seq(deps, cfg);
    const std::vector<incident_report> seq_reports = feed(seq);

    sharded_config scfg;
    scfg.shards = 2;
    sharded_engine par(deps, scfg);
    const std::vector<incident_report> par_reports = feed(par);

    // One incident per region, rooted under the right region even
    // though every segment below the region level collides.
    ASSERT_EQ(seq_reports.size(), 2u);
    std::set<std::string> roots;
    for (const incident_report& r : seq_reports) roots.insert(r.inc.root.to_string());
    EXPECT_EQ(roots, (std::set<std::string>{cl_a.to_string(), cl_b.to_string()}));

    expect_identical_reports(seq_reports, par_reports);
    EXPECT_EQ(par.region_count(), 2u);
}

TEST(ShardedEngineTest, ZeroShardConfigClampsToOne) {
    world w(generator_params::tiny());
    sharded_config scfg;
    scfg.shards = 0;
    sharded_engine eng(w.deps(), scfg);
    EXPECT_EQ(eng.shard_count(), 1u);
}

TEST(BatchIngestTest, SpanMatchesIngestLoop) {
    // ingest_batch must be an exact shorthand for the ingest loop.
    world w;
    const location ls = w.first_logic_site();
    std::vector<traced_alert> trace;
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 7});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.01});
    sim.inject(make_internet_entry_cut(w.topo, ls, 0.6), minutes(1), minutes(4));
    sim.run_until_batched(minutes(6), [&](std::span<const traced_alert> batch) {
        trace.insert(trace.end(), batch.begin(), batch.end());
    });

    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    skynet_engine looped(w.deps(), cfg);
    for (const traced_alert& t : trace) looped.ingest(t.alert, t.arrival);
    looped.finish(minutes(20), sim.state());

    skynet_engine batched(w.deps(), cfg);
    batched.ingest_batch(std::span<const traced_alert>(trace));
    batched.finish(minutes(20), sim.state());

    EXPECT_EQ(looped.preprocessing_stats(), batched.preprocessing_stats());
    EXPECT_EQ(looped.structured_alert_count(), batched.structured_alert_count());
    expect_identical_reports(looped.take_reports(), batched.take_reports());
}

TEST(BatchIngestTest, RawSpanUsesSharedArrivalTime) {
    world w(generator_params::tiny());
    std::vector<raw_alert> batch;
    raw_alert a;
    a.source = data_source::snmp;
    a.loc = w.topo.devices().front().loc;
    a.device = w.topo.devices().front().id;
    a.timestamp = seconds(30);
    batch.push_back(a);
    batch.push_back(a);

    skynet_engine eng(w.deps());
    eng.ingest_batch(std::span<const raw_alert>(batch), seconds(31));
    EXPECT_EQ(eng.metrics().alerts_in, 2u);
    EXPECT_EQ(eng.metrics().batches_in, 1u);
}

TEST(ConfigValidateTest, DefaultConfigIsValid) {
    EXPECT_FALSE(skynet_config{}.validate());
}

TEST(ConfigValidateTest, RejectsNegativeTimeout) {
    skynet_config cfg;
    cfg.loc.node_timeout = -seconds(1);
    const error e = cfg.validate();
    ASSERT_TRUE(e);
    EXPECT_NE(e.message().find("node_timeout"), std::string::npos);
}

TEST(ConfigValidateTest, RejectsAllZeroThresholds) {
    skynet_config cfg;
    cfg.loc.thresholds = incident_thresholds{
        .pure_failure = 0, .combo_failure = 0, .combo_other = 0, .any = 0};
    const error e = cfg.validate();
    ASSERT_TRUE(e);
    EXPECT_NE(e.message().find("thresholds"), std::string::npos);
}

TEST(ConfigValidateTest, RejectsInvertedRateBounds) {
    skynet_config cfg;
    cfg.eval.min_rate = 0.9;
    cfg.eval.max_rate = 0.1;
    EXPECT_TRUE(cfg.validate());
}

TEST(ConfigValidateTest, EngineConstructorThrowsOnInvalidConfig) {
    world w(generator_params::tiny());
    skynet_config cfg;
    cfg.pre.dedup_window = -minutes(1);
    EXPECT_THROW(skynet_engine(w.deps(), cfg), skynet_error);
}

TEST(ReportScopeTest, OpenThenFinishedViews) {
    world w;
    const location ls = w.first_logic_site();
    skynet_engine eng(w.deps());
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 55});
    sim.add_default_monitors();
    sim.inject(make_internet_entry_cut(w.topo, ls, 0.6), minutes(1), minutes(5));
    sim.run_until_batched(
        minutes(4), [&](std::span<const traced_alert> batch) { eng.ingest_batch(batch); },
        [&](sim_time now) { eng.tick(now, sim.state()); });

    // Mid-failure: the incident is still open.
    const auto open = eng.reports(report_scope::open, sim.clock().now(), sim.state());
    ASSERT_FALSE(open.empty());
    EXPECT_TRUE(std::is_sorted(open.begin(), open.end(), [](const auto& x, const auto& y) {
        return report_before(x, y);
    }));

    eng.finish(sim.clock().now(), sim.state());
    const auto finished = eng.reports(report_scope::finished, sim.clock().now(), sim.state());
    EXPECT_GE(finished.size(), open.size());
    // finished drains: a second call returns nothing.
    EXPECT_TRUE(eng.reports(report_scope::finished, sim.clock().now(), sim.state()).empty());
    EXPECT_TRUE(eng.reports(report_scope::open, sim.clock().now(), sim.state()).empty());
}

TEST(EngineMetricsTest, SequentialCountersAccumulate) {
    world w;
    const location ls = w.first_logic_site();
    skynet_engine eng(w.deps());
    drive(
        w, eng, [&] { return make_internet_entry_cut(w.topo, ls, 0.6); }, minutes(4), 21);
    const engine_metrics& m = eng.metrics();
    EXPECT_GT(m.alerts_in, 0u);
    EXPECT_GT(m.batches_in, 0u);
    EXPECT_GT(m.ticks, 0u);
    EXPECT_GT(m.preprocess.calls, 0u);
    EXPECT_GT(m.locate.calls, 0u);
    EXPECT_GT(m.evaluate.calls, 0u);
    EXPECT_GT(m.preprocess.latency.count(), 0u);
    EXPECT_GE(m.preprocess.latency.max_ns(), 1u);
    EXPECT_GT(m.reports_emitted, 0u);
    const std::string rendered = m.render();
    EXPECT_NE(rendered.find("preprocess"), std::string::npos);
    EXPECT_NE(rendered.find("p99"), std::string::npos);
}

TEST(EngineMetricsTest, ShardedAggregatesAcrossShards) {
    world w;
    const location ls = w.first_logic_site();
    sharded_config scfg;
    scfg.shards = 2;
    sharded_engine eng(w.deps(), scfg);
    drive(
        w, eng, [&] { return make_internet_entry_cut(w.topo, ls, 0.6); }, minutes(4), 22);

    engine_metrics total = eng.metrics();
    EXPECT_GT(total.alerts_in, 0u);
    EXPECT_GT(total.busy_ns, 0u);
    // Engine-level ticks, not per-shard fan-outs.
    EXPECT_GT(total.ticks, 0u);
    EXPECT_LT(total.ticks, total.preprocess.calls + total.locate.calls + 100000u);

    engine_metrics sum;
    for (std::size_t i = 0; i < eng.shard_count(); ++i) {
        const engine_metrics m = eng.shard_metrics(i);
        sum.alerts_in += m.alerts_in;
    }
    EXPECT_EQ(sum.alerts_in, total.alerts_in);
}

TEST(WorkerFailureTest, FailureSurfacesAtBarrierWithoutHanging) {
    // A shard whose engine throws mid-command must not hang a barrier or
    // std::terminate the process: the failure surfaces as a skynet_error
    // from the next tick(), naming the shard.
    world w;
    std::atomic<bool> arm{false};
    sharded_config scfg;
    scfg.shards = 2;
    scfg.worker_fault = [&](std::size_t shard) {
        if (arm.load() && shard == 1) throw std::runtime_error("injected shard fault");
    };
    sharded_engine eng(w.deps(), scfg);

    // Route one alert per shard so both workers have live regions.
    sim_time now = seconds(10);
    std::size_t fed = 0;
    for (const device& d : w.topo.devices()) {
        raw_alert a;
        a.source = data_source::snmp;
        a.loc = d.loc;
        a.device = d.id;
        a.timestamp = now;
        eng.ingest(a, now);
        if (++fed >= 8) break;
    }
    network_state state(&w.topo, &w.customers);
    eng.tick(now, state);  // healthy barrier
    EXPECT_EQ(eng.failed_shard_count(), 0u);

    arm.store(true);
    raw_alert poison;
    poison.source = data_source::snmp;
    poison.loc = w.topo.devices().front().loc;
    poison.device = w.topo.devices().front().id;
    poison.timestamp = now + seconds(2);
    eng.ingest(poison, now + seconds(2));

    try {
        eng.tick(now + seconds(2), state);
        FAIL() << "tick did not surface the worker failure";
    } catch (const skynet_error& e) {
        EXPECT_NE(std::string(e.what()).find("shard"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("injected shard fault"), std::string::npos);
    }
    EXPECT_EQ(eng.failed_shard_count(), 1u);
    const std::vector<std::string> msgs = eng.failed_shard_messages();
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_NE(msgs[0].find("injected shard fault"), std::string::npos);
}

TEST(WorkerFailureTest, DeadShardDrainsAndCountsDroppedAlerts) {
    // After the failure, further work routed to the dead shard is
    // drained unexecuted and counted; healthy shards keep going and the
    // destructor joins cleanly.
    world w;
    sharded_config scfg;
    scfg.shards = 2;
    scfg.worker_fault = [](std::size_t shard) {
        if (shard == 0) throw std::runtime_error("dead on arrival");
    };
    sharded_engine eng(w.deps(), scfg);

    network_state state(&w.topo, &w.customers);
    sim_time now = seconds(10);
    for (int round = 0; round < 3; ++round) {
        for (const device& d : w.topo.devices()) {
            raw_alert a;
            a.source = data_source::snmp;
            a.loc = d.loc;
            a.device = d.id;
            a.timestamp = now;
            eng.ingest(a, now);
        }
        EXPECT_THROW(eng.tick(now, state), skynet_error);
        now += seconds(2);
    }
    EXPECT_EQ(eng.failed_shard_count(), 1u);
    // Dropped-ingest accounting lands in the degraded metrics block.
    engine_metrics m = eng.metrics();
    EXPECT_GT(m.degraded.alerts_dropped_failed_shard, 0u);
    EXPECT_TRUE(m.degraded.any());
    EXPECT_NE(m.render().find("failed shard"), std::string::npos);
    // finish() surfaces the same failure but still terminates cleanly;
    // the healthy shard's data stays reachable afterwards.
    EXPECT_THROW(eng.finish(now, state), skynet_error);
    (void)eng.take_reports();
}

TEST(LatencyHistogramTest, RecordsAndMerges) {
    latency_histogram h;
    h.record(1'000);
    h.record(2'000);
    h.record(1'000'000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max_ns(), 1'000'000u);
    EXPECT_GT(h.mean_us(), 0.0);
    EXPECT_GE(h.percentile_us(99.0), h.percentile_us(50.0));

    latency_histogram other;
    other.record(4'000);
    h += other;
    EXPECT_EQ(h.count(), 4u);
}

}  // namespace
}  // namespace skynet
