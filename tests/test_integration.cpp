// Integration tests reproducing the paper's §5.1 case studies end to end:
// simulator -> monitors -> preprocessor -> locator -> evaluator.
#include <gtest/gtest.h>

#include "skynet/core/pipeline.h"
#include "skynet/heuristics/sop.h"
#include "skynet/sim/engine.h"
#include "skynet/topology/generator.h"
#include "skynet/viz/vote_graph.h"

namespace skynet {
namespace {

struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params p = generator_params::small()) {
        p.legacy_snmp_fraction = 0.0;
        topo = generate_topology(p);
        rng crand(71);
        customers = customer_registry::generate(topo, 300, crand);
    }

    location first_logic_site() const {
        for (const device& d : topo.devices()) {
            if (d.role == device_role::isr) {
                return d.loc.ancestor_at(hierarchy_level::logic_site);
            }
        }
        throw std::runtime_error("no isr");
    }
};

/// Drives one scenario through the full stack.
std::vector<incident_report> run_stack(world& w, std::unique_ptr<scenario> s,
                                       sim_duration duration, std::uint64_t seed,
                                       skynet_config cfg = {}) {
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors();
    sim.inject(std::move(s), minutes(1), duration);
    skynet_engine skynet({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
    sim.run_until(minutes(1) + duration + minutes(1),
                  [&](const raw_alert& a, sim_time arrival) { skynet.ingest(a, arrival); },
                  [&](sim_time now) { skynet.tick(now, sim.state()); });
    skynet.finish(sim.clock().now(), sim.state());
    return skynet.take_reports();
}

TEST(CaseStudyTest, FineGrainedLocalizationOfCableCut) {
    // §5.1 "fine-grained localization": the internet-entrance cable cut
    // is consolidated into incident(s) pinned at (or under) the logic
    // site.
    world w;
    const location ls = w.first_logic_site();
    const auto reports = run_stack(w, make_internet_entry_cut(w.topo, ls, 0.6), minutes(6), 81);
    ASSERT_FALSE(reports.empty());

    bool pinned = false;
    for (const incident_report& r : reports) {
        if (ls.contains(r.inc.root) || r.inc.root.contains(ls)) pinned = true;
    }
    EXPECT_TRUE(pinned);

    // The flood carries congestion/root-cause evidence — the §2.2 alert
    // that was "obscured" pre-SkyNet is now grouped and visible.
    int root_cause_types = 0;
    for (const incident_report& r : reports) {
        root_cause_types += r.inc.type_count(alert_category::root_cause);
    }
    EXPECT_GT(root_cause_types, 0);
}

TEST(CaseStudyTest, MultipleSceneDetectionDdos) {
    // §5.1 "multiple scene detection": a DDoS on several logic sites
    // yields separate incidents, not one blob.
    world w;
    rng srand(82);
    auto ddos = make_security_ddos(w.topo, srand, 3);
    const auto reports = run_stack(w, std::move(ddos), minutes(6), 83);
    ASSERT_GE(reports.size(), 2u);

    // Incident roots must be in distinct logic sites.
    std::set<std::string> sites;
    for (const incident_report& r : reports) {
        sites.insert(r.inc.root.ancestor_at(hierarchy_level::logic_site).to_string());
    }
    EXPECT_GE(sites.size(), 2u);
}

TEST(CaseStudyTest, AutoSopIsolatesKnownFailure) {
    // §5.1 "automatic SOP": a lone device with packet loss + error logs,
    // quiet group, low traffic -> the rule engine isolates it in one
    // step; SkyNet is not even needed.
    world w(generator_params::tiny());
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 84});
    sim.add_default_monitors();
    sim.state().reset_traffic(0.3);

    rng srand(85);
    auto hw = make_device_hardware_failure(w.topo, srand, false);
    const device_id victim = hw->culprit().value();
    sim.inject(std::move(hw), seconds(10), minutes(10));

    // Collect structured alerts and let the SOP engine watch the stream.
    preprocessor pre(&w.topo, &w.registry, &w.syslog, {});
    const sop_engine sop = sop_engine::with_default_rules(&w.topo);
    std::vector<structured_alert> recent;
    bool isolated = false;
    sim_time isolated_at = 0;
    sim.run_until(
        minutes(10),
        [&](const raw_alert& a, sim_time arrival) {
            for (auto& ev : pre.process(a, arrival)) recent.push_back(ev.alert);
        },
        [&](sim_time now) {
            (void)pre.flush(now);
            if (isolated) return;
            for (const sop_match& m : sop.match(recent, sim.state())) {
                if (m.device == victim) {
                    (void)sop.execute(m, sim.state());
                    isolated = true;
                    isolated_at = now;
                }
            }
        });
    EXPECT_TRUE(isolated);
    // Mitigation completed in about a minute of simulated time after the
    // fault fired (the paper reports ~1 minute), allowing for the
    // hardware-error log delay.
    EXPECT_LE(isolated_at, minutes(8));
    EXPECT_TRUE(sim.state().device_state(victim).isolated);
}

TEST(CaseStudyTest, ReflectorWinsVotesAtLogicSite) {
    // §7.1: a logic-site incident whose highest-voted device is the
    // reflector — an uncommon device at that level — pointing operators
    // straight at the root cause.
    world w(generator_params::tiny());
    // Craft the incident: the reflector fails; DCBRs see BGP problems.
    device_id rr = invalid_device;
    for (const device& d : w.topo.devices()) {
        if (d.role == device_role::reflector) rr = d.id;
    }
    ASSERT_NE(rr, invalid_device);

    incident inc;
    inc.root = w.topo.device_at(rr).loc.ancestor_at(hierarchy_level::logic_site);
    auto add = [&](device_id dev, const char* type) {
        structured_alert a;
        a.type_name = type;
        a.category = alert_category::abnormal;
        a.loc = w.topo.device_at(dev).loc;
        a.device = dev;
        inc.alerts.push_back(a);
    };
    add(rr, "bgp link jitter");
    for (device_id nb : w.topo.neighbors(rr)) add(nb, "bgp peer down");

    vote_graph graph(&w.topo);
    graph.add_incident(inc);
    ASSERT_FALSE(graph.ranking().empty());
    EXPECT_EQ(graph.ranking().front().id, rr);
    EXPECT_EQ(w.topo.device_at(graph.ranking().front().id).role, device_role::reflector);
}

TEST(IntegrationTest, GroundTruthCoverageOnRandomSevereFailures) {
    // Detection goal (§2.5): severe failures must never be missed.
    world w;
    int detected = 0;
    const int episodes = 5;
    for (int e = 0; e < episodes; ++e) {
        rng srand(90 + e);
        auto s = make_random_scenario(w.topo, srand, /*severe=*/true);
        const location scope = s->scope();
        const auto reports = run_stack(w, std::move(s), minutes(5), 100 + e);
        for (const incident_report& r : reports) {
            if (r.inc.root.contains(scope) || scope.contains(r.inc.root)) {
                ++detected;
                break;
            }
        }
    }
    EXPECT_EQ(detected, episodes) << "false negatives on severe failures";
}

}  // namespace
}  // namespace skynet
