# Flap drill (registered in tests/CMakeLists.txt). Drives skynet_cli's
# life-cycle layer across a real process crash: record a flapping-link
# replay, run it uninterrupted with --lifecycle on --diff, then journal
# the same run and kill it at an exact record boundary (--crash-after),
# recover in a fresh process, and require the recovered diff + managed
# report output byte-identical to the uninterrupted run — the life-cycle
# state (lineages, suppression counters, last diff) must survive the
# snapshot/journal round-trip, not just the engine state.
# Expects -DSKYNET_CLI=<path> and -DDRILL_DIR=<scratch dir>.
file(REMOVE_RECURSE "${DRILL_DIR}")
file(MAKE_DIRECTORY "${DRILL_DIR}")

function(run_cli out_var expect_code)
  execute_process(COMMAND ${SKYNET_CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE code)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR "skynet_cli ${ARGN}: exit ${code} (wanted ${expect_code})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

set(lifecycle_flags --lifecycle on --diff --metrics)

set(trace "${DRILL_DIR}/trace.txt")
run_cli(record_out 0 --topo tiny --seed 7 --scenario flapping-link --duration 12
        --record ${trace})
run_cli(base 0 --topo tiny --seed 7 --replay ${trace} ${lifecycle_flags})

# Crash mid-replay: the process must die with the drill exit code (137)
# after the 30th journal record is durable. Checkpoints are cut at every
# 4th barrier, so the recovered run restores mid-lifecycle state and
# replays the journal suffix through the manager.
execute_process(COMMAND ${SKYNET_CLI} --topo tiny --seed 7 --replay ${trace}
                        ${lifecycle_flags}
                        --checkpoint-dir ${DRILL_DIR}/ckpt --checkpoint-every 4
                        --crash-after 30
                OUTPUT_QUIET ERROR_QUIET RESULT_VARIABLE code)
if(NOT code EQUAL 137)
  message(FATAL_ERROR "crash run exited ${code}, wanted 137")
endif()
if(NOT EXISTS "${DRILL_DIR}/ckpt/journal.skywal")
  message(FATAL_ERROR "crash run left no journal behind")
endif()

run_cli(recovered 0 --topo tiny --seed 7 --replay ${trace} ${lifecycle_flags}
        --checkpoint-dir ${DRILL_DIR}/ckpt --checkpoint-every 4 --recover)

# Compare everything from the final barrier diff down: the last
# "what changed" sections, the alert totals, the lifecycle metrics line
# and the managed incident listing. The recovered run adds recover:
# notes above that point, and its engine-metrics counters only cover the
# post-recovery suffix (metrics are observability, deliberately not
# snapshot state) — so the per-stage counter block between
# "engine metrics:" and the "lifecycle:" line is cut out of the byte
# comparison while everything around it must match exactly.
foreach(v base recovered)
  set(out "${${v}}")
  string(FIND "${out}" "what changed @" diff_at REVERSE)
  if(diff_at EQUAL -1)
    message(FATAL_ERROR "no diff section in ${v} output:\n${out}")
  endif()
  string(SUBSTRING "${out}" ${diff_at} -1 tail)

  string(FIND "${tail}" "engine metrics:" counters_at)
  string(FIND "${tail}" "lifecycle:" lifecycle_at)
  if(counters_at EQUAL -1 OR lifecycle_at EQUAL -1)
    message(FATAL_ERROR "no metrics/lifecycle section in ${v} output:\n${tail}")
  endif()
  string(SUBSTRING "${tail}" 0 ${counters_at} head_part)
  string(SUBSTRING "${tail}" ${lifecycle_at} -1 tail_part)
  set(${v}_tail "${head_part}<counters elided>${tail_part}")
endforeach()
if(NOT base_tail STREQUAL recovered_tail)
  message(FATAL_ERROR "recovered lifecycle output differs from the uninterrupted run:\n"
                      "--- uninterrupted\n${base_tail}\n--- recovered\n${recovered_tail}")
endif()
message(STATUS "flap drill passed: recovered diff + lifecycle metrics + managed reports identical")
