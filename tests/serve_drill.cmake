# Serve drill (registered in tests/CMakeLists.txt). End-to-end over real
# process boundaries: a daemon is started on unix sockets with
# durability on, a recorded alert flood is streamed into it with the
# CLI client, the HTTP API is queried while it runs, and SIGTERM must
# produce a clean drain + checkpoint. A second daemon then recovers from
# that checkpoint and must serve the same report. Throughout, the
# daemon's report listing must stay byte-identical to the batch CLI
# replay of the same trace.
# Expects -DSKYNET_CLI=<path> and -DDRILL_DIR=<scratch dir>.
file(REMOVE_RECURSE "${DRILL_DIR}")
file(MAKE_DIRECTORY "${DRILL_DIR}")

function(run_cli out_var expect_code)
  execute_process(COMMAND ${SKYNET_CLI} ${ARGN}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE code)
  if(NOT code EQUAL expect_code)
    message(FATAL_ERROR "skynet_cli ${ARGN}: exit ${code} (wanted ${expect_code})\n${out}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Unix socket paths must stay short (sun_path is ~108 bytes), so the
# sockets live in /tmp keyed by this process's unique scratch dir name.
string(MD5 drill_key "${DRILL_DIR}")
string(SUBSTRING "${drill_key}" 0 8 drill_key)
set(ingest_sock "/tmp/skynet_drill_${drill_key}_in.sock")
set(http_sock "/tmp/skynet_drill_${drill_key}_api.sock")
set(ckpt_dir "${DRILL_DIR}/ckpt")
set(health_file "${DRILL_DIR}/health.json")
set(serve_log "${DRILL_DIR}/serve.log")

function(stop_daemon pid)
  execute_process(COMMAND kill -TERM ${pid} RESULT_VARIABLE ignored)
  foreach(i RANGE 50)
    execute_process(COMMAND kill -0 ${pid} RESULT_VARIABLE alive
                    ERROR_QUIET OUTPUT_QUIET)
    if(NOT alive EQUAL 0)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  execute_process(COMMAND kill -KILL ${pid})
  message(FATAL_ERROR "daemon ${pid} did not exit within 10s of SIGTERM")
endfunction()

function(start_daemon pid_var)
  execute_process(COMMAND sh -c "${SKYNET_CLI} --topo tiny --seed 5 \
      --serve unix:${ingest_sock} --http unix:${http_sock} \
      --checkpoint-dir '${ckpt_dir}' --health-json '${health_file}' ${ARGN} \
      > '${serve_log}' 2>&1 & echo $!"
                  OUTPUT_VARIABLE pid OUTPUT_STRIP_TRAILING_WHITESPACE
                  RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "failed to launch daemon")
  endif()
  # Wait until the API answers.
  foreach(i RANGE 50)
    execute_process(COMMAND ${SKYNET_CLI} --connect unix:${http_sock} --get /v1/health
                    RESULT_VARIABLE up OUTPUT_QUIET ERROR_QUIET)
    if(up EQUAL 0)
      set(${pid_var} ${pid} PARENT_SCOPE)
      return()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.2)
  endforeach()
  execute_process(COMMAND kill -KILL ${pid} ERROR_QUIET OUTPUT_QUIET)
  file(READ "${serve_log}" log_text)
  message(FATAL_ERROR "daemon never answered /v1/health:\n${log_text}")
endfunction()

function(extract_reports text out_var)
  string(FIND "${text}" "incidents:" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "no report section in:\n${text}")
  endif()
  string(SUBSTRING "${text}" ${at} -1 section)
  set(${out_var} "${section}" PARENT_SCOPE)
endfunction()

# 1. Record a flood and take the batch CLI's replay as ground truth.
set(trace "${DRILL_DIR}/trace.txt")
run_cli(record_out 0 --topo tiny --seed 5 --record ${trace})
run_cli(batch_out 0 --topo tiny --seed 5 --replay ${trace} --json)
extract_reports("${batch_out}" batch_reports)

# 2. Start the daemon, stream the same trace into it.
start_daemon(daemon_pid)
run_cli(stream_out 0 --connect unix:${ingest_sock} --stream-trace ${trace})
if(NOT stream_out MATCHES "streamed [0-9]+ records .*: OK")
  message(FATAL_ERROR "stream client did not report a clean OK:\n${stream_out}")
endif()

# 3. The live API must agree with the batch run, byte for byte.
run_cli(daemon_reports 0 --connect unix:${http_sock} --get /v1/report?json=1)
if(NOT batch_reports STREQUAL daemon_reports)
  message(FATAL_ERROR "daemon report differs from the batch replay:\n"
                      "--- batch\n${batch_reports}\n--- daemon\n${daemon_reports}")
endif()

# 4. One canonical health schema: GET /v1/health and the --health-json
# file must be byte-identical (same published snapshot).
run_cli(health_api 0 --connect unix:${http_sock} --get /v1/health)
file(READ "${health_file}" health_disk)
if(NOT health_api STREQUAL health_disk)
  message(FATAL_ERROR "GET /v1/health and --health-json diverge:\n"
                      "--- api\n${health_api}\n--- file\n${health_disk}")
endif()
if(NOT health_api MATCHES "\"alerts_in\":[1-9]")
  message(FATAL_ERROR "health report shows no ingested alerts:\n${health_api}")
endif()

# 5. Windowed queries answer while the daemon runs.
run_cli(page 0 --connect unix:${http_sock} --get /v1/incidents?limit=1)
if(NOT page MATCHES "\"total\":[1-9]")
  message(FATAL_ERROR "incident query returned no incidents:\n${page}")
endif()

# 6. SIGTERM: drain, checkpoint, exit 0.
stop_daemon(${daemon_pid})
file(READ "${serve_log}" log_text)
if(NOT log_text MATCHES "serve: shutdown clean")
  message(FATAL_ERROR "daemon did not log a clean shutdown:\n${log_text}")
endif()
file(GLOB snapshots "${ckpt_dir}/*.skysnap")
if(snapshots STREQUAL "")
  message(FATAL_ERROR "shutdown left no checkpoint snapshot in ${ckpt_dir}")
endif()

# 7. A recovered daemon serves the same incidents without re-streaming.
start_daemon(recovered_pid --recover)
run_cli(recovered_reports 0 --connect unix:${http_sock} --get /v1/report?json=1)
stop_daemon(${recovered_pid})
if(NOT batch_reports STREQUAL recovered_reports)
  message(FATAL_ERROR "recovered daemon report differs from the batch replay:\n"
                      "--- batch\n${batch_reports}\n--- recovered\n${recovered_reports}")
endif()

file(REMOVE "${ingest_sock}" "${http_sock}")
message(STATUS "serve drill passed: parity, health schema, clean shutdown, recovery")
