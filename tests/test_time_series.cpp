// Tests for the §7.3 time-series attribution strawman versus SkyNet's
// category-based attribution.
#include <gtest/gtest.h>

#include "skynet/heuristics/time_series_baseline.h"

namespace skynet {
namespace {

structured_alert mk(std::string type, alert_category cat, sim_time at,
                    std::optional<device_id> dev = std::nullopt) {
    structured_alert a;
    a.type_name = std::move(type);
    a.category = cat;
    a.when = time_range{at, at};
    a.device = dev;
    return a;
}

TEST(TimeSeriesTest, EmptyInputInvalid) {
    EXPECT_FALSE(attribute_first_alert({}).valid);
    EXPECT_FALSE(attribute_by_category({}).valid);
}

TEST(TimeSeriesTest, FirstAlertPicksEarliest) {
    const std::vector<structured_alert> alerts{
        mk("bgp peer down", alert_category::abnormal, seconds(10), 7),
        mk("packet loss", alert_category::failure, seconds(5)),
        mk("hardware error", alert_category::root_cause, minutes(4), 3),
    };
    const attribution a = attribute_first_alert(alerts);
    ASSERT_TRUE(a.valid);
    EXPECT_EQ(a.type_name, "packet loss");
    EXPECT_EQ(a.at, seconds(5));
}

TEST(TimeSeriesTest, Section73IncidentMisattributedByTimeOrder) {
    // The paper's incident: a BGP link break alert came first, then a
    // flood of packet drops and unreachables; the hardware-error syslog —
    // the true root cause — arrived minutes later.
    std::vector<structured_alert> alerts{
        mk("bgp peer down", alert_category::abnormal, seconds(2), /*neighbor=*/11),
        mk("packet loss", alert_category::failure, seconds(8)),
        mk("device inaccessible", alert_category::abnormal, seconds(12), 12),
        mk("packet loss", alert_category::failure, seconds(14)),
        mk("hardware error", alert_category::root_cause, minutes(4), /*culprit=*/42),
    };

    // The strawman blames the neighbor that logged the BGP break.
    const attribution naive = attribute_first_alert(alerts);
    EXPECT_EQ(naive.device, 11u);
    EXPECT_EQ(naive.type_name, "bgp peer down");

    // Category-based attribution finds the hardware fault despite its
    // late arrival — SkyNet's design choice.
    const attribution skynet_way = attribute_by_category(alerts);
    EXPECT_EQ(skynet_way.device, 42u);
    EXPECT_EQ(skynet_way.type_name, "hardware error");
}

TEST(TimeSeriesTest, CategoryTieBreaksOnDeviceThenTime) {
    const std::vector<structured_alert> alerts{
        mk("link down", alert_category::root_cause, seconds(10)),       // no device
        mk("port down", alert_category::root_cause, seconds(20), 5),    // device, later
        mk("hardware error", alert_category::root_cause, seconds(30), 6),
    };
    const attribution a = attribute_by_category(alerts);
    // Device-attributed root-cause alerts win; earliest of them is at 20s.
    EXPECT_EQ(a.device, 5u);
    EXPECT_EQ(a.at, seconds(20));
}

TEST(TimeSeriesTest, FailureBeatsAbnormalWhenNoRootCause) {
    const std::vector<structured_alert> alerts{
        mk("traffic surge", alert_category::abnormal, seconds(1), 1),
        mk("packet loss", alert_category::failure, seconds(9), 2),
    };
    EXPECT_EQ(attribute_by_category(alerts).device, 2u);
}

TEST(TimeSeriesTest, AgreeWhenRootCauseIsAlsoFirst) {
    // When the root-cause log really does come first, both approaches
    // converge — the tree approach never does worse.
    const std::vector<structured_alert> alerts{
        mk("hardware error", alert_category::root_cause, seconds(1), 9),
        mk("packet loss", alert_category::failure, seconds(5)),
    };
    EXPECT_EQ(attribute_first_alert(alerts).device, 9u);
    EXPECT_EQ(attribute_by_category(alerts).device, 9u);
}

}  // namespace
}  // namespace skynet
