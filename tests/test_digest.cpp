// Tests for the incident digest (LLM handoff) renderers.
#include <gtest/gtest.h>

#include "skynet/core/digest.h"

namespace skynet {
namespace {

incident_report sample_report(int types_per_category = 3) {
    incident_report report;
    report.inc.id = 42;
    report.inc.root = location{"Region A", "City a", "LS 2"};
    report.inc.when = time_range{minutes(1), minutes(7)};
    report.severity.score = 61.5;
    report.severity.impact_factor = 12.0;
    report.severity.time_factor = 5.1;
    report.severity.avg_ping_loss = 0.24;
    report.severity.important_customers = 7;
    report.actionable = true;
    report.zoomed = location{"Region A", "City a", "LS 2", "Site I"};

    static constexpr alert_category cats[] = {
        alert_category::failure, alert_category::abnormal, alert_category::root_cause};
    for (alert_category cat : cats) {
        for (int i = 0; i < types_per_category; ++i) {
            structured_alert a;
            a.type_name = std::string(to_string(cat)) + "-type-" + std::to_string(i);
            a.category = cat;
            a.source = data_source::snmp;
            a.count = 10 - i;
            a.loc = report.inc.root;
            report.inc.alerts.push_back(a);
        }
    }
    return report;
}

TEST(DigestTest, ContainsTheEssentials) {
    const std::string d = incident_digest(sample_report());
    EXPECT_NE(d.find("incident 42"), std::string::npos);
    EXPECT_NE(d.find("severity 61.5"), std::string::npos);
    EXPECT_NE(d.find("[actionable]"), std::string::npos);
    EXPECT_NE(d.find("Region A|City a|LS 2"), std::string::npos);
    EXPECT_NE(d.find("zoomed: Region A|City a|LS 2|Site I"), std::string::npos);
    EXPECT_NE(d.find("root cause alerts:"), std::string::npos);
    EXPECT_NE(d.find("failure alerts:"), std::string::npos);
}

TEST(DigestTest, RootCauseSectionComesFirst) {
    const std::string d = incident_digest(sample_report());
    EXPECT_LT(d.find("root cause alerts:"), d.find("failure alerts:"));
    EXPECT_LT(d.find("failure alerts:"), d.find("abnormal alerts:"));
}

TEST(DigestTest, RespectsCharBudget) {
    digest_options opts;
    opts.max_chars = 300;
    const std::string d = incident_digest(sample_report(20), opts);
    EXPECT_LE(d.size(), 300u);
    // The header and (at least the start of) the root-cause section
    // survive truncation.
    EXPECT_NE(d.find("incident 42"), std::string::npos);
}

TEST(DigestTest, TypeListCapped) {
    digest_options opts;
    opts.max_types_per_category = 2;
    const std::string d = incident_digest(sample_report(5), opts);
    EXPECT_NE(d.find("more types"), std::string::npos);
}

TEST(DigestTest, TypesOrderedByVolume) {
    const std::string d = incident_digest(sample_report());
    // type-0 has the highest count within each category.
    const auto first = d.find("root cause-type-0");
    const auto second = d.find("root cause-type-1");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(DigestJsonTest, WellFormedStructure) {
    const std::string j = incident_digest_json(sample_report());
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    EXPECT_NE(j.find("\"id\":42"), std::string::npos);
    EXPECT_NE(j.find("\"actionable\":true"), std::string::npos);
    EXPECT_NE(j.find("\"alerts\":["), std::string::npos);
    EXPECT_NE(j.find("\"zoomed\":"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'), std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['), std::count(j.begin(), j.end(), ']'));
}

TEST(DigestJsonTest, OmitsZoomWhenAbsent) {
    incident_report r = sample_report();
    r.zoomed.reset();
    const std::string j = incident_digest_json(r);
    EXPECT_EQ(j.find("\"zoomed\""), std::string::npos);
}

TEST(DigestJsonTest, EscapesLocationNames) {
    incident_report r = sample_report();
    r.inc.root = location{"Region \"A\""};
    const std::string j = incident_digest_json(r);
    EXPECT_NE(j.find("Region \\\"A\\\""), std::string::npos);
}

}  // namespace
}  // namespace skynet
