// Unit tests for the customer / SLA-flow registry.
#include <gtest/gtest.h>

#include "skynet/common/error.h"
#include "skynet/telemetry/customer.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

struct fixture {
    topology topo;
    circuit_set_id cs1, cs2;

    fixture() {
        const location cl{"R", "C", "LS", "S", "CL"};
        const device_id a = topo.add_device("a", device_role::tor, cl.child("a"));
        const device_id b = topo.add_device("b", device_role::agg, cl.child("b"));
        const device_id c = topo.add_device("c", device_role::agg, cl.child("c"));
        cs1 = topo.add_circuit_set("a<->b", a, b);
        cs2 = topo.add_circuit_set("a<->c", a, c);
        (void)topo.add_link(a, b, cs1, 100.0);
        (void)topo.add_link(a, c, cs2, 100.0);
    }
};

TEST(CustomerRegistryTest, AttachAndQuery) {
    fixture f;
    customer_registry reg;
    const customer_id c1 = reg.add_customer("acme", customer_tier::critical);
    const customer_id c2 = reg.add_customer("beta", customer_tier::standard);
    reg.attach(c1, f.cs1);
    reg.attach(c2, f.cs1);
    reg.attach(c2, f.cs2);

    EXPECT_EQ(reg.customer_count(f.cs1), 2);
    EXPECT_EQ(reg.customer_count(f.cs2), 1);
    EXPECT_DOUBLE_EQ(reg.importance_factor(f.cs1), tier_importance(customer_tier::critical));
    EXPECT_DOUBLE_EQ(reg.importance_factor(f.cs2), tier_importance(customer_tier::standard));
}

TEST(CustomerRegistryTest, AttachIsIdempotent) {
    fixture f;
    customer_registry reg;
    const customer_id c = reg.add_customer("acme", customer_tier::premium);
    reg.attach(c, f.cs1);
    reg.attach(c, f.cs1);
    EXPECT_EQ(reg.customer_count(f.cs1), 1);
    EXPECT_EQ(reg.customer_at(c).circuit_sets.size(), 1u);
}

TEST(CustomerRegistryTest, ImportanceOfEmptySetIsZero) {
    fixture f;
    customer_registry reg;
    EXPECT_DOUBLE_EQ(reg.importance_factor(f.cs1), 0.0);
    EXPECT_EQ(reg.customer_count(f.cs1), 0);
}

TEST(CustomerRegistryTest, ImportantCustomerCountDeduplicates) {
    fixture f;
    customer_registry reg;
    const customer_id vip = reg.add_customer("vip", customer_tier::critical);
    const customer_id pleb = reg.add_customer("pleb", customer_tier::standard);
    reg.attach(vip, f.cs1);
    reg.attach(vip, f.cs2);
    reg.attach(pleb, f.cs1);
    const std::vector<circuit_set_id> both{f.cs1, f.cs2};
    // vip rides both sets but counts once; standard never counts.
    EXPECT_EQ(reg.important_customer_count(both), 1);
}

TEST(CustomerRegistryTest, SlaFlows) {
    fixture f;
    customer_registry reg;
    const customer_id c = reg.add_customer("acme", customer_tier::premium);
    reg.attach(c, f.cs1);
    const sla_flow_id flow = reg.add_sla_flow(c, f.cs1, 5.0);
    EXPECT_EQ(reg.flows_on(f.cs1).size(), 1u);
    EXPECT_DOUBLE_EQ(reg.flow_at(flow).committed_gbps, 5.0);
    EXPECT_TRUE(reg.flows_on(f.cs2).empty());
}

TEST(CustomerRegistryTest, TierImportanceOrdering) {
    EXPECT_LT(tier_importance(customer_tier::standard), tier_importance(customer_tier::premium));
    EXPECT_LT(tier_importance(customer_tier::premium), tier_importance(customer_tier::critical));
}

TEST(CustomerRegistryTest, BadIdsThrow) {
    customer_registry reg;
    EXPECT_THROW((void)reg.customer_at(0), skynet_error);
    EXPECT_THROW(reg.attach(0, 0), skynet_error);
    EXPECT_THROW((void)reg.add_sla_flow(0, 0, 1.0), skynet_error);
}

TEST(CustomerGenerateTest, PopulatesTiersAndFlows) {
    const topology topo = generate_topology(generator_params::small());
    rng rand(9);
    const customer_registry reg = customer_registry::generate(topo, 500, rand);
    ASSERT_EQ(reg.customers().size(), 500u);

    int critical = 0, premium = 0;
    for (const customer& c : reg.customers()) {
        if (c.tier == customer_tier::critical) ++critical;
        if (c.tier == customer_tier::premium) ++premium;
        EXPECT_FALSE(c.circuit_sets.empty());
    }
    // ~5 % critical, ~15 % premium (generous tolerance).
    EXPECT_NEAR(critical / 500.0, 0.05, 0.04);
    EXPECT_NEAR(premium / 500.0, 0.15, 0.07);

    // Non-standard customers carry SLA flows.
    EXPECT_GT(reg.sla_flows().size(), 0u);
    for (const sla_flow& f : reg.sla_flows()) {
        EXPECT_NE(reg.customer_at(f.owner).tier, customer_tier::standard);
        EXPECT_GT(f.committed_gbps, 0.0);
    }
}

TEST(CustomerGenerateTest, AttachesToTrafficCarryingSets) {
    const topology topo = generate_topology(generator_params::tiny());
    rng rand(10);
    const customer_registry reg = customer_registry::generate(topo, 50, rand);
    for (const customer& c : reg.customers()) {
        EXPECT_FALSE(c.circuit_sets.empty());
        for (circuit_set_id cs : c.circuit_sets) {
            const circuit_set& set = topo.circuit_set_at(cs);
            // Reflector bundles carry control traffic only.
            EXPECT_NE(topo.device_at(set.a).role, device_role::reflector);
            EXPECT_NE(topo.device_at(set.b).role, device_role::reflector);
        }
    }
}

TEST(CustomerGenerateTest, TransitSetsCarryCustomers) {
    // Aggregation-tier bundles must end up with customer relationships —
    // the evaluator's impact factor depends on them when transit loss
    // hurts customers far from their racks.
    const topology topo = generate_topology(generator_params::small());
    rng rand(10);
    const customer_registry reg = customer_registry::generate(topo, 500, rand);
    int transit_with_customers = 0;
    for (const circuit_set& cs : topo.circuit_sets()) {
        const device_role ra = topo.device_at(cs.a).role;
        const device_role rb = topo.device_at(cs.b).role;
        const bool transit = (ra == device_role::csr || ra == device_role::dcbr ||
                              ra == device_role::bsr) &&
                             (rb == device_role::csr || rb == device_role::dcbr ||
                              rb == device_role::bsr);
        if (transit && !reg.customers_on(cs.id).empty()) ++transit_with_customers;
    }
    EXPECT_GT(transit_with_customers, 10);
}

}  // namespace
}  // namespace skynet
