// Tests for the operator mitigation-time model behind Figure 10c.
#include <gtest/gtest.h>

#include "skynet/sim/operator_model.h"

namespace skynet {
namespace {

double mean_manual(const episode_observation& obs, int trials = 200) {
    operator_model_params params;
    rng rand(5);
    double total = 0.0;
    for (int i = 0; i < trials; ++i) total += mitigation_time_manual(obs, params, rand);
    return total / trials;
}

double mean_skynet(const episode_observation& obs, int trials = 200) {
    operator_model_params params;
    rng rand(6);
    double total = 0.0;
    for (int i = 0; i < trials; ++i) total += mitigation_time_skynet(obs, params, rand);
    return total / trials;
}

TEST(OperatorModelTest, ManualTimeGrowsWithFlood) {
    episode_observation small{.raw_alerts = 100,
                              .root_cause_alert_present = true,
                              .incident_reports = 1,
                              .root_cause_surfaced = true,
                              .zoomed = true};
    episode_observation big = small;
    big.raw_alerts = 5000;
    EXPECT_LT(mean_manual(small), mean_manual(big));
}

TEST(OperatorModelTest, BuriedRootCauseCostsHours) {
    episode_observation visible{.raw_alerts = 500,
                                .root_cause_alert_present = true,
                                .incident_reports = 2,
                                .root_cause_surfaced = true,
                                .zoomed = true};
    episode_observation buried = visible;
    buried.raw_alerts = 20000;  // beyond triage capacity: alert obscured
    EXPECT_GT(mean_manual(buried), mean_manual(visible) + 1000.0);
}

TEST(OperatorModelTest, SkynetInsensitiveToRawVolume) {
    episode_observation small{.raw_alerts = 100,
                              .root_cause_alert_present = true,
                              .incident_reports = 2,
                              .root_cause_surfaced = true,
                              .zoomed = true};
    episode_observation big = small;
    big.raw_alerts = 50000;
    // With SkyNet the operator reads incident reports, not raw alerts.
    EXPECT_NEAR(mean_skynet(small), mean_skynet(big), mean_skynet(small) * 0.2);
}

TEST(OperatorModelTest, ZoomInSavesWalkTime) {
    episode_observation zoomed{.raw_alerts = 2000,
                               .root_cause_alert_present = true,
                               .incident_reports = 2,
                               .root_cause_surfaced = true,
                               .zoomed = true};
    episode_observation unzoomed = zoomed;
    unzoomed.zoomed = false;
    EXPECT_LT(mean_skynet(zoomed), mean_skynet(unzoomed));
}

TEST(OperatorModelTest, SkynetBeatsManualOnSevereFloods) {
    episode_observation obs{.raw_alerts = 10000,
                            .root_cause_alert_present = true,
                            .incident_reports = 3,
                            .root_cause_surfaced = true,
                            .zoomed = true};
    const double manual = mean_manual(obs);
    const double with_skynet = mean_skynet(obs);
    // The paper's >80 % reduction on severe failures.
    EXPECT_LT(with_skynet, manual * 0.2);
}

TEST(OperatorModelTest, TimesAlwaysPositive) {
    rng rand(9);
    operator_model_params params;
    for (int alerts : {0, 1, 100, 100000}) {
        episode_observation obs{.raw_alerts = alerts,
                                .root_cause_alert_present = alerts % 2 == 0,
                                .incident_reports = alerts % 5,
                                .root_cause_surfaced = alerts % 3 == 0,
                                .zoomed = alerts % 4 == 0};
        EXPECT_GT(mitigation_time_manual(obs, params, rand), 0.0);
        EXPECT_GT(mitigation_time_skynet(obs, params, rand), 0.0);
    }
}

}  // namespace
}  // namespace skynet
