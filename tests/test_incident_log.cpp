// Tests for the incident history log (§6.4 workflow).
#include <gtest/gtest.h>

#include "skynet/core/incident_log.h"

namespace skynet {
namespace {

incident_report report(std::uint64_t id, location root, time_range when, double score,
                       bool actionable) {
    incident_report r;
    r.inc.id = id;
    r.inc.root = std::move(root);
    r.inc.when = when;
    r.severity.score = score;
    r.actionable = actionable;
    return r;
}

incident_log sample_log() {
    incident_log log;
    log.append(report(1, location{"R1", "C1"}, {minutes(5), minutes(20)}, 3.0, false),
               minutes(35));
    log.append(report(2, location{"R1", "C2"}, {days(2), days(2) + minutes(30)}, 55.0, true),
               days(2) + minutes(45));
    log.append(report(3, location{"R2"}, {days(40), days(40) + minutes(10)}, 12.0, true),
               days(40) + minutes(25));
    return log;
}

TEST(IncidentLogTest, AppendAndSize) {
    const incident_log log = sample_log();
    EXPECT_EQ(log.size(), 3u);
}

TEST(IncidentLogTest, QueryByWindow) {
    const incident_log log = sample_log();
    incident_log::query_filter f;
    f.window = time_range{0, days(1)};
    const auto hits = log.query(f);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->report.inc.id, 1u);
}

TEST(IncidentLogTest, QueryByScope) {
    const incident_log log = sample_log();
    incident_log::query_filter f;
    f.scope = location{"R1"};
    EXPECT_EQ(log.query(f).size(), 2u);
    f.scope = location{"R2"};
    EXPECT_EQ(log.query(f).size(), 1u);
    f.scope = location{"R3"};
    EXPECT_TRUE(log.query(f).empty());
}

TEST(IncidentLogTest, QueryByScoreAndActionable) {
    const incident_log log = sample_log();
    incident_log::query_filter f;
    f.min_score = 10.0;
    EXPECT_EQ(log.query(f).size(), 2u);
    f.only_actionable = true;
    f.min_score = 0.0;
    EXPECT_EQ(log.query(f).size(), 2u);
    f.min_score = 50.0;
    EXPECT_EQ(log.query(f).size(), 1u);
}

TEST(IncidentLogTest, LabelingByOperators) {
    incident_log log = sample_log();
    EXPECT_TRUE(log.label(2, true));
    EXPECT_TRUE(log.label(1, false));
    EXPECT_FALSE(log.label(999, true));
    EXPECT_EQ(log.entries()[1].attributed_to_failure, true);
    EXPECT_EQ(log.entries()[0].attributed_to_failure, false);
    EXPECT_EQ(log.entries()[2].attributed_to_failure, std::nullopt);
}

TEST(IncidentLogTest, MonthlyRollup) {
    incident_log log = sample_log();
    (void)log.label(2, true);
    const auto months = log.monthly_rollup(days(30));
    ASSERT_EQ(months.size(), 2u);
    // Month 0: incidents 1 and 2.
    EXPECT_EQ(months[0].month, 0);
    EXPECT_EQ(months[0].total, 2);
    EXPECT_EQ(months[0].actionable, 1);
    EXPECT_EQ(months[0].labeled_failures, 1);
    EXPECT_DOUBLE_EQ(months[0].max_score, 55.0);
    // Month 1: incident 3 (closed at day 40).
    EXPECT_EQ(months[1].month, 1);
    EXPECT_EQ(months[1].total, 1);
}

TEST(IncidentLogTest, EmptyLogBehaves) {
    const incident_log log;
    EXPECT_TRUE(log.monthly_rollup().empty());
    EXPECT_TRUE(log.query({}).empty());
}

}  // namespace
}  // namespace skynet
