// Tests for the incident history log (§6.4 workflow).
#include <gtest/gtest.h>

#include "skynet/core/incident_log.h"

namespace skynet {
namespace {

incident_report report(std::uint64_t id, location root, time_range when, double score,
                       bool actionable) {
    incident_report r;
    r.inc.id = id;
    r.inc.root = std::move(root);
    r.inc.when = when;
    r.severity.score = score;
    r.actionable = actionable;
    return r;
}

incident_log sample_log() {
    incident_log log;
    log.append(report(1, location{"R1", "C1"}, {minutes(5), minutes(20)}, 3.0, false),
               minutes(35));
    log.append(report(2, location{"R1", "C2"}, {days(2), days(2) + minutes(30)}, 55.0, true),
               days(2) + minutes(45));
    log.append(report(3, location{"R2"}, {days(40), days(40) + minutes(10)}, 12.0, true),
               days(40) + minutes(25));
    return log;
}

TEST(IncidentLogTest, AppendAndSize) {
    const incident_log log = sample_log();
    EXPECT_EQ(log.size(), 3u);
}

TEST(IncidentLogTest, QueryByWindow) {
    const incident_log log = sample_log();
    incident_log::query_filter f;
    f.window = time_range{0, days(1)};
    const auto hits = log.query(f);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->report.inc.id, 1u);
}

TEST(IncidentLogTest, QueryByScope) {
    const incident_log log = sample_log();
    incident_log::query_filter f;
    f.scope = location{"R1"};
    EXPECT_EQ(log.query(f).size(), 2u);
    f.scope = location{"R2"};
    EXPECT_EQ(log.query(f).size(), 1u);
    f.scope = location{"R3"};
    EXPECT_TRUE(log.query(f).empty());
}

TEST(IncidentLogTest, QueryByScoreAndActionable) {
    const incident_log log = sample_log();
    incident_log::query_filter f;
    f.min_score = 10.0;
    EXPECT_EQ(log.query(f).size(), 2u);
    f.only_actionable = true;
    f.min_score = 0.0;
    EXPECT_EQ(log.query(f).size(), 2u);
    f.min_score = 50.0;
    EXPECT_EQ(log.query(f).size(), 1u);
}

TEST(IncidentLogTest, LabelingByOperators) {
    incident_log log = sample_log();
    EXPECT_TRUE(log.label(2, true));
    EXPECT_TRUE(log.label(1, false));
    EXPECT_FALSE(log.label(999, true));
    EXPECT_EQ(log.entries()[1].attributed_to_failure, true);
    EXPECT_EQ(log.entries()[0].attributed_to_failure, false);
    EXPECT_EQ(log.entries()[2].attributed_to_failure, std::nullopt);
}

TEST(IncidentLogTest, MonthlyRollup) {
    incident_log log = sample_log();
    (void)log.label(2, true);
    const auto months = log.monthly_rollup(days(30));
    ASSERT_EQ(months.size(), 2u);
    // Month 0: incidents 1 and 2.
    EXPECT_EQ(months[0].month, 0);
    EXPECT_EQ(months[0].total, 2);
    EXPECT_EQ(months[0].actionable, 1);
    EXPECT_EQ(months[0].labeled_failures, 1);
    EXPECT_DOUBLE_EQ(months[0].max_score, 55.0);
    // Month 1: incident 3 (closed at day 40).
    EXPECT_EQ(months[1].month, 1);
    EXPECT_EQ(months[1].total, 1);
}

/// Brute-force reference for query(): the same predicate applied by a
/// plain linear scan over every entry.
std::vector<const incident_log::entry*> brute_query(const incident_log& log,
                                                    const incident_log::query_filter& f) {
    std::vector<const incident_log::entry*> out;
    const bool use_window = f.window.begin != 0 || f.window.end != 0;
    for (const incident_log::entry& e : log.entries()) {
        if (use_window && !e.report.inc.when.overlaps(f.window)) continue;
        if (!f.scope.is_root() && !f.scope.contains(e.report.inc.root)) continue;
        if (e.report.severity.score < f.min_score) continue;
        if (f.only_actionable && !e.report.actionable) continue;
        out.push_back(&e);
    }
    return out;
}

TEST(IncidentLogTest, WindowQueryMatchesLinearScanOnLargeLog) {
    // Close-ordered appends keep the binary-searched start path active;
    // every window must return exactly what a full scan returns.
    incident_log log;
    for (int i = 0; i < 400; ++i) {
        const sim_time begin = minutes(10 * i);
        log.append(report(static_cast<std::uint64_t>(i + 1), location{"R1", "C1"},
                          {begin, begin + minutes(7)}, 1.0 + i % 9, i % 3 == 0),
                   begin + minutes(8));
    }
    for (const time_range window :
         {time_range{0, 0}, time_range{minutes(5), minutes(95)},
          time_range{minutes(1999), minutes(2001)}, time_range{minutes(3995), minutes(4200)},
          time_range{minutes(9000), minutes(9999)}, time_range{0, minutes(4000)}}) {
        SCOPED_TRACE("window [" + std::to_string(window.begin) + ", " +
                     std::to_string(window.end) + "]");
        incident_log::query_filter f;
        f.window = window;
        EXPECT_EQ(log.query(f), brute_query(log, f));
    }
}

TEST(IncidentLogTest, OutOfOrderAppendFallsBackToLinearScan) {
    // A hand-built log violating the close-order invariant must still
    // answer window queries correctly (silent downgrade, never an abort).
    incident_log log;
    log.append(report(1, location{"R1"}, {minutes(100), minutes(110)}, 1.0, false),
               minutes(120));
    log.append(report(2, location{"R1"}, {minutes(5), minutes(15)}, 1.0, false),
               minutes(20));  // closed before the previous entry
    log.append(report(3, location{"R1"}, {minutes(40), minutes(50)}, 1.0, false), minutes(60));

    incident_log::query_filter f;
    f.window = time_range{minutes(0), minutes(30)};
    const auto hits = log.query(f);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->report.inc.id, 2u);
    EXPECT_EQ(log.query(f), brute_query(log, f));
}

TEST(IncidentLogTest, CloseBeforeWindowEndAlsoDowngrades) {
    // closed_at inside the incident window (instead of at/after its end)
    // breaks the pruning precondition; queries must notice and stay
    // linear rather than miss the entry.
    incident_log log;
    log.append(report(1, location{"R1"}, {minutes(10), minutes(200)}, 1.0, false),
               minutes(20));
    log.append(report(2, location{"R1"}, {minutes(150), minutes(160)}, 1.0, false),
               minutes(170));
    incident_log::query_filter f;
    f.window = time_range{minutes(180), minutes(220)};
    const auto hits = log.query(f);  // entry 1's window overlaps
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->report.inc.id, 1u);
}

TEST(IncidentLogTest, OutOfOrderCounterTracksTheComplexityDowngrade) {
    // The binary-search/linear boundary: in-order appends keep
    // fast_query() and the counter at zero; the first invariant-breaking
    // append flips the mode and every further violation is counted, so
    // the silent complexity-class change is observable in metrics.
    incident_log log;
    for (int i = 0; i < 8; ++i) {
        const sim_time begin = minutes(10 * i);
        log.append(report(static_cast<std::uint64_t>(i + 1), location{"R1"},
                          {begin, begin + minutes(5)}, 1.0, false),
                   begin + minutes(6));
    }
    EXPECT_TRUE(log.fast_query());
    EXPECT_EQ(log.out_of_order_appends(), 0u);
    EXPECT_EQ(log.first_closed_at_or_after(minutes(26)), 2u);

    // Exactly at the boundary: closing at the same instant as the
    // previous entry (ties allowed) keeps the invariant...
    log.append(report(100, location{"R1"}, {minutes(70), minutes(75)}, 1.0, false),
               minutes(76));
    EXPECT_TRUE(log.fast_query());
    EXPECT_EQ(log.out_of_order_appends(), 0u);

    // ...one millisecond earlier than the predecessor breaks it.
    log.append(report(101, location{"R1"}, {minutes(60), minutes(70)}, 1.0, false),
               minutes(76) - 1);
    EXPECT_FALSE(log.fast_query());
    EXPECT_EQ(log.out_of_order_appends(), 1u);
    // The binary-search start is disabled — callers must scan from 0.
    EXPECT_EQ(log.first_closed_at_or_after(minutes(26)), 0u);

    // Further violations keep counting; queries stay correct throughout.
    log.append(report(102, location{"R1"}, {minutes(1), minutes(2)}, 1.0, false), minutes(3));
    EXPECT_EQ(log.out_of_order_appends(), 2u);
    incident_log::query_filter f;
    f.window = time_range{0, minutes(30)};
    EXPECT_EQ(log.query(f), brute_query(log, f));

    // restore() re-derives both the invariant and the counter.
    incident_log clean;
    clean.restore(std::vector<incident_log::entry>(log.entries().begin(),
                                                   log.entries().begin() + 8));
    EXPECT_TRUE(clean.fast_query());
    EXPECT_EQ(clean.out_of_order_appends(), 0u);
    incident_log dirty;
    dirty.restore(std::vector<incident_log::entry>(log.entries()));
    EXPECT_FALSE(dirty.fast_query());
    EXPECT_EQ(dirty.out_of_order_appends(), 2u);
}

TEST(IncidentLogTest, RestoreRederivesTheFastQueryInvariant) {
    incident_log ordered = sample_log();
    incident_log copy;
    copy.restore(std::vector<incident_log::entry>(ordered.entries()));
    EXPECT_EQ(copy.size(), ordered.size());
    incident_log::query_filter f;
    f.window = time_range{0, days(1)};
    EXPECT_EQ(copy.query(f).size(), 1u);

    // Restoring out-of-order entries keeps queries correct too.
    std::vector<incident_log::entry> reversed(ordered.entries().rbegin(),
                                              ordered.entries().rend());
    incident_log scrambled;
    scrambled.restore(std::move(reversed));
    EXPECT_EQ(scrambled.query(f).size(), 1u);
}

TEST(IncidentLogTest, EmptyLogBehaves) {
    const incident_log log;
    EXPECT_TRUE(log.monthly_rollup().empty());
    EXPECT_TRUE(log.query({}).empty());
}

}  // namespace
}  // namespace skynet
