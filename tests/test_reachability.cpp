// Unit tests for the reachability matrix and focal-point detection.
#include <gtest/gtest.h>

#include "skynet/common/error.h"
#include "skynet/telemetry/reachability.h"

namespace skynet {
namespace {

std::vector<location> clusters(int n) {
    std::vector<location> out;
    for (int i = 0; i < n; ++i) {
        out.push_back(location{"R", "C", "LS", "S", "Cluster " + std::to_string(i)});
    }
    return out;
}

TEST(ReachabilityTest, RecordsAndAverages) {
    reachability_matrix m(clusters(3));
    m.record(m.endpoints()[0], m.endpoints()[1], 0.2);
    m.record(m.endpoints()[0], m.endpoints()[1], 0.4);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 0.3);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);  // direction matters
}

TEST(ReachabilityTest, UnknownEndpointsIgnored) {
    reachability_matrix m(clusters(2));
    m.record(location{"X"}, m.endpoints()[0], 0.9);
    EXPECT_DOUBLE_EQ(m.at(location{"X"}, m.endpoints()[0]), 0.0);
}

TEST(ReachabilityTest, LossClamped) {
    reachability_matrix m(clusters(2));
    m.record(m.endpoints()[0], m.endpoints()[1], 7.0);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
}

TEST(ReachabilityTest, Figure7FocalPoint) {
    // Reproduce the paper's Figure 7: cluster 2's row and column dark,
    // everything else clean.
    reachability_matrix m(clusters(6));
    const auto& eps = m.endpoints();
    for (std::size_t i = 0; i < eps.size(); ++i) {
        for (std::size_t j = 0; j < eps.size(); ++j) {
            if (i == j) continue;
            const bool hot = (i == 2 || j == 2);
            m.record(eps[i], eps[j], hot ? 0.08 : 0.0);
        }
    }
    const auto focal = m.focal_point();
    ASSERT_TRUE(focal.has_value());
    EXPECT_EQ(focal->leaf(), "Cluster 2");
}

TEST(ReachabilityTest, DiffuseLossHasNoFocalPoint) {
    reachability_matrix m(clusters(5));
    const auto& eps = m.endpoints();
    for (std::size_t i = 0; i < eps.size(); ++i) {
        for (std::size_t j = 0; j < eps.size(); ++j) {
            if (i != j) m.record(eps[i], eps[j], 0.05);
        }
    }
    EXPECT_FALSE(m.focal_point().has_value());
}

TEST(ReachabilityTest, NoLossNoFocalPoint) {
    reachability_matrix m(clusters(4));
    EXPECT_FALSE(m.focal_point().has_value());
}

TEST(ReachabilityTest, TinyMatrixNoFocalPoint) {
    reachability_matrix m(clusters(1));
    EXPECT_FALSE(m.focal_point().has_value());
}

TEST(ReachabilityTest, HotspotScoreExcludesDiagonal) {
    reachability_matrix m(clusters(2));
    m.record(m.endpoints()[0], m.endpoints()[0], 1.0);  // self loss ignored by score
    m.record(m.endpoints()[0], m.endpoints()[1], 0.5);
    EXPECT_DOUBLE_EQ(m.hotspot_score(0), 0.25);  // (0.5 + 0.0) / 2
}

TEST(ReachabilityTest, ToStringRendersGrid) {
    reachability_matrix m(clusters(2));
    m.record(m.endpoints()[0], m.endpoints()[1], 0.155);
    const std::string s = m.to_string();
    EXPECT_NE(s.find("15.50"), std::string::npos);
    EXPECT_NE(s.find("Cluster 0"), std::string::npos);
}

TEST(ReachabilityTest, BadIndexThrows) {
    reachability_matrix m(clusters(2));
    EXPECT_THROW((void)m.at(5, 0), skynet_error);
    EXPECT_THROW((void)m.hotspot_score(9), skynet_error);
}

}  // namespace
}  // namespace skynet
