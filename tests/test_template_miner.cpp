// Tests for online syslog template mining.
#include <gtest/gtest.h>

#include "skynet/core/preprocessor.h"
#include "skynet/syslog/template_miner.h"
#include "skynet/topology/generator.h"

namespace skynet {
namespace {

TEST(TemplateMinerTest, GroupsByConstantWords) {
    template_miner miner(template_miner::options{.min_occurrences = 3, .max_tracked = 100});
    for (int i = 0; i < 5; ++i) {
        miner.observe("%VENDORX-2-NEWFAULT: widget " + std::to_string(i) + " exploded at 10.0.0." +
                          std::to_string(i),
                      seconds(i));
    }
    miner.observe("%OTHER-6-INFO: something else entirely", seconds(9));

    EXPECT_EQ(miner.observed_count(), 6);
    const auto cands = miner.candidates();
    ASSERT_EQ(cands.size(), 1u);  // the singleton stays below min support
    EXPECT_EQ(cands[0].occurrences, 5);
    EXPECT_NE(cands[0].signature.find("%VENDORX-2-NEWFAULT:"), std::string::npos);
    // Variable fields (numbers, addresses) are not in the signature.
    EXPECT_EQ(cands[0].signature.find("10.0.0"), std::string::npos);
    EXPECT_EQ(cands[0].first_seen, 0);
    EXPECT_EQ(cands[0].last_seen, seconds(4));
    EXPECT_FALSE(cands[0].example.empty());
}

TEST(TemplateMinerTest, CandidatesOrderedByVolume) {
    template_miner miner(template_miner::options{.min_occurrences = 2, .max_tracked = 100});
    for (int i = 0; i < 3; ++i) miner.observe("alpha beta gamma", 0);
    for (int i = 0; i < 7; ++i) miner.observe("delta epsilon zeta", 0);
    const auto cands = miner.candidates();
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(cands[0].occurrences, 7);
    EXPECT_EQ(cands[1].occurrences, 3);
}

TEST(TemplateMinerTest, ResolveRemovesLabeledTemplate) {
    template_miner miner(template_miner::options{.min_occurrences = 1, .max_tracked = 100});
    miner.observe("some recurring fault text", 0);
    ASSERT_EQ(miner.candidates().size(), 1u);
    miner.resolve(miner.candidates()[0].signature);
    EXPECT_TRUE(miner.candidates().empty());
}

TEST(TemplateMinerTest, EvictionKeepsRecentSignatures) {
    template_miner miner(template_miner::options{.min_occurrences = 1, .max_tracked = 3});
    miner.observe("sig one xx", seconds(1));
    miner.observe("sig two yy", seconds(2));
    miner.observe("sig three zz", seconds(3));
    miner.observe("sig four ww", seconds(4));  // evicts the stalest
    EXPECT_LE(miner.tracked_signatures(), 3u);
    bool newest_kept = false;
    for (const auto& c : miner.candidates()) {
        if (c.signature.find("four") != std::string::npos) newest_kept = true;
    }
    EXPECT_TRUE(newest_kept);
}

TEST(TemplateMinerTest, PreprocessorFeedsUnclassifiedLines) {
    const topology topo = generate_topology(generator_params::tiny());
    const alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    const syslog_classifier syslog = syslog_classifier::train_from_catalog();
    preprocessor pre(&topo, &registry, &syslog, {});
    template_miner miner(template_miner::options{.min_occurrences = 3, .max_tracked = 100});
    pre.set_template_miner(&miner);

    raw_alert a;
    a.source = data_source::syslog;
    a.loc = topo.devices().front().loc;
    for (int i = 0; i < 4; ++i) {
        a.timestamp = seconds(i);
        a.message = "%NEWVENDOR-1-MELTDOWN: core " + std::to_string(i) + " melted";
        (void)pre.process(a, a.timestamp);
    }
    // A classifiable line must NOT reach the miner.
    a.message = "%LINK-3-UPDOWN: Interface TenGigE0/1/0/2 changed state to down";
    (void)pre.process(a, seconds(9));

    EXPECT_EQ(miner.observed_count(), 4);
    const auto cands = miner.candidates();
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_NE(cands[0].signature.find("%NEWVENDOR-1-MELTDOWN:"), std::string::npos);
}

}  // namespace
}  // namespace skynet
