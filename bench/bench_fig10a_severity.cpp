// Figure 10a: severity-score distribution, all incidents vs failure
// incidents (score capped at 100), plus a worked Table 3 example.
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace skynet;

namespace {

void print_box(const char* label, std::vector<double> scores) {
    if (scores.empty()) {
        std::printf("%-20s (none)\n", label);
        return;
    }
    std::printf("%-20s n=%-4zu min=%6.1f p25=%6.1f med=%6.1f p75=%6.1f max=%6.1f\n", label,
                scores.size(), bench::percentile(scores, 0), bench::percentile(scores, 25),
                bench::percentile(scores, 50), bench::percentile(scores, 75),
                bench::percentile(scores, 100));
}

}  // namespace

int main() {
    std::printf("=== Figure 10a: severity score of network incidents ===\n\n");
    bench::world w(generator_params::small(), 1000, 29);
    constexpr int episodes = 36;

    std::vector<double> all_scores;
    std::vector<double> failure_scores;
    bool printed_example = false;

    for (int e = 0; e < episodes; ++e) {
        bench::episode_options opts;
        opts.seed = static_cast<std::uint64_t>(8000 + e);
        opts.noise_rate = 0.03;
        opts.benign_events = 2;
        opts.failure_duration = minutes(6);
        // Mix mirroring a month of operations: a third severe failures, a
        // third minor failures, a third redundancy-absorbed events (link
        // tickets) that still surface as incidents but barely matter.
        bench::episode_result r = [&] {
            if (e % 3 == 2) {
                rng srand(opts.seed * 31 + 7);
                std::vector<std::unique_ptr<scenario>> f;
                f.push_back(make_link_failure(w.topo, srand, false));
                f.push_back(make_configuration_error(w.topo, srand, false));
                opts.benign_events = 3;
                return bench::run_episode(w, std::move(f), opts);
            }
            return bench::run_random_episode(w, e % 3 == 0, opts);
        }();

        for (const incident_report& rep : r.reports) {
            all_scores.push_back(rep.severity.score);
            // "Failure incidents": those operators attribute to a real,
            // harmful network failure (not tickets, not noise).
            bool real = false;
            for (const scenario_record& truth : r.truth) {
                if (!truth.benign && truth.must_detect && bench::matches(rep.inc, truth)) {
                    real = true;
                }
            }
            if (real) failure_scores.push_back(rep.severity.score);

            if (!printed_example && real && rep.severity.score > 0.0) {
                printed_example = true;
                std::printf("Worked Table 3 example (first failure incident):\n");
                std::printf("  N  (circuit sets related)      = %d\n", rep.severity.circuit_sets);
                std::printf("  R_k (avg ping loss rate)       = %.4f\n",
                            rep.severity.avg_ping_loss);
                std::printf("  L_k (max SLA flow overshoot)   = %.4f\n",
                            rep.severity.max_sla_overload);
                std::printf("  dT_k (alert lasting time)      = %.0f s\n",
                            to_seconds(rep.severity.duration));
                std::printf("  U_k (important customers)      = %d\n",
                            rep.severity.important_customers);
                std::printf("  I_k (impact factor, Eq. 1)     = %.2f\n",
                            rep.severity.impact_factor);
                std::printf("  T_k (time factor, Eq. 2)       = %.2f\n",
                            rep.severity.time_factor);
                std::printf("  y_k = I_k * T_k (Eq. 3)        = %.2f\n\n", rep.severity.score);
            }
        }
    }

    print_box("all incidents", all_scores);
    print_box("failure incidents", failure_scores);

    std::printf("\nPaper shape: failure incidents score systematically higher than\n"
                "the general incident population; threshold 10 separates them.\n");
    return 0;
}
