// Figure 10c: mitigation time before vs after SkyNet.
//
// Runs severe failure episodes; for each, the operator model computes
// time-to-mitigation (a) manually sifting the raw alert flood and
// (b) reading SkyNet's ranked incident reports with zoom-in. The paper
// reports median 736 s -> 147 s and max 14028 s -> 1920 s — both >80 %
// reductions; the shape (not the absolute values) is the target.
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace skynet;

int main() {
    std::printf("=== Figure 10c: mitigation time before/after SkyNet ===\n\n");
    bench::world w(generator_params::small(), 1000, 37);
    constexpr int episodes = 25;

    operator_model_params model;
    rng rand(4096);
    std::vector<double> manual_times;
    std::vector<double> skynet_times;

    std::printf("%-30s %10s %12s %12s\n", "failure", "alerts", "manual", "with SkyNet");
    for (int e = 0; e < episodes; ++e) {
        bench::episode_options opts;
        opts.seed = static_cast<std::uint64_t>(9000 + e);
        opts.noise_rate = 0.03;
        opts.benign_events = 2;
        // Mix of moderate failures with the occasional paper-scale
        // catastrophe (they dominate the max, not the median).
        opts.failure_duration = (e % 4 == 0) ? minutes(8) : minutes(4);
        const bench::episode_result r =
            bench::run_random_episode(w, /*severe=*/e % 3 == 0, opts);

        episode_observation obs;
        obs.raw_alerts = static_cast<int>(r.raw_alerts);
        obs.incident_reports = 0;
        for (const incident_report& rep : r.reports) {
            if (rep.actionable) ++obs.incident_reports;
        }
        obs.root_cause_alert_present = r.root_cause_alert_present;
        for (const incident_report& rep : r.reports) {
            if (rep.inc.type_count(alert_category::root_cause) > 0) {
                obs.root_cause_surfaced = true;
            }
            if (rep.zoomed) obs.zoomed = true;
        }

        const double manual = mitigation_time_manual(obs, model, rand);
        const double with_skynet = mitigation_time_skynet(obs, model, rand);
        manual_times.push_back(manual);
        skynet_times.push_back(with_skynet);
        std::printf("%-30s %10lld %11.0fs %11.0fs\n", r.truth.front().name.c_str(),
                    static_cast<long long>(r.raw_alerts), manual, with_skynet);
    }

    const double med_before = bench::median(manual_times);
    const double med_after = bench::median(skynet_times);
    const double max_before = bench::percentile(manual_times, 100);
    const double max_after = bench::percentile(skynet_times, 100);
    std::printf("\n%-22s %12s %12s %12s\n", "", "median", "max", "reduction");
    std::printf("%-22s %11.0fs %11.0fs\n", "before SkyNet", med_before, max_before);
    std::printf("%-22s %11.0fs %11.0fs   med %.0f%%, max %.0f%%\n", "after SkyNet", med_after,
                max_after, 100.0 * (1.0 - med_after / med_before),
                100.0 * (1.0 - max_after / max_before));
    std::printf("\nPaper: median 736s -> 147s, max 14028s -> 1920s (>80%% cuts).\n");
    return 0;
}
