// Figure 8c: the time cost of locating vs alert volume.
//
// Replays recorded alert floods of increasing size through the
// preprocessor + locator and measures wall-clock locating time. The
// paper's claims: time grows with alert count and stays under 10 s even
// at ~40k alerts (minute-level SLA), and without the preprocessor it
// balloons.
#include <cstdio>

#include "harness.h"

using namespace skynet;

namespace {

/// Captures the raw alerts of one severe flood episode for replay.
std::vector<std::pair<raw_alert, sim_time>> record_flood(bench::world& w, std::uint64_t seed,
                                                         int concurrent) {
    simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.05});
    rng srand(seed + 1);
    // Stack the deck for volume: infrastructure failures flood the most
    // (a dark site re-alerts from every survivor's viewpoint), plus the
    // random severe mix.
    for (int i = 0; i < concurrent; ++i) {
        std::unique_ptr<scenario> s = (i % 3 == 0)
                                          ? make_infrastructure_failure(w.topo, srand, true)
                                          : make_random_scenario(w.topo, srand, true);
        sim.inject(std::move(s), minutes(1) + seconds(20) * i, minutes(10));
    }
    std::vector<std::pair<raw_alert, sim_time>> out;
    sim.run_until(minutes(13), [&out](const raw_alert& a, sim_time arrival) {
        out.emplace_back(a, arrival);
    });
    return out;
}

double replay(bench::world& w, const std::vector<std::pair<raw_alert, sim_time>>& flood,
              std::size_t limit, bool with_preprocessor) {
    skynet_config cfg;
    if (!with_preprocessor) {
        // Ablation: feed the locator near-raw — disable every
        // consolidation rule so each raw alert becomes a tree insertion.
        cfg.pre.dedup_window = 0;
        cfg.pre.persistence_threshold = 1;
        cfg.pre.cross_source = false;
        cfg.pre.consolidate_related = false;
    }
    skynet_engine skynet({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
    network_state state(&w.topo, &w.customers);

    const bench::stopwatch timer;
    sim_time last_tick = 0;
    std::size_t n = 0;
    for (const auto& [alert, arrival] : flood) {
        if (n++ >= limit) break;
        skynet.ingest(alert, arrival);
        if (arrival - last_tick >= seconds(2)) {
            skynet.tick(arrival, state);
            last_tick = arrival;
        }
    }
    skynet.finish(last_tick + minutes(20), state);
    (void)skynet.take_reports();
    return timer.seconds();
}

}  // namespace

int main() {
    std::printf("=== Figure 8c: the time cost of locating ===\n\n");
    bench::world w(generator_params::medium(), 600, 9);

    // Record a large flood once; replay prefixes of increasing size.
    std::vector<std::pair<raw_alert, sim_time>> flood = record_flood(w, 11, 12);
    std::printf("recorded flood: %zu raw alerts\n\n", flood.size());

    std::printf("%10s %18s %22s\n", "alerts", "with preprocessor", "without preprocessor");
    for (const std::size_t limit : {2000u, 5000u, 10000u, 20000u, 40000u}) {
        if (limit > flood.size() * 2) break;
        const std::size_t n = std::min<std::size_t>(limit, flood.size());
        const double with_pre = replay(w, flood, n, true);
        const double without_pre = replay(w, flood, n, false);
        std::printf("%10zu %16.3fs %20.3fs\n", n, with_pre, without_pre);
    }
    std::printf("\nPaper shape: locating grows with alert count, stays well under\n"
                "the 10 s worst case with the preprocessor; without it the cost\n"
                "inflates toward minutes.\n");
    return 0;
}
