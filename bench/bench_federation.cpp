// Federation digest path throughput.
//
// The federation layer rides every barrier: the emitter encodes the
// closed reports into a digest (and journals it), the aggregator
// decodes and merges it. This bench measures the three hot pieces in
// isolation — encode_digest_payload, frame+decode through fed_decoder,
// and aggregator::apply_digest + merged_ranked — over real incident
// reports from a flood episode, so the costs include the report codec's
// full field surface, not toy payloads.
//
// Emits machine-readable results to BENCH_federation.json (override
// with argv[1]).
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "harness.h"
#include "skynet/federate/aggregator.h"
#include "skynet/federate/digest.h"
#include "skynet/sim/engine.h"

namespace {

using namespace skynet;

constexpr int kEncodeIters = 2000;
constexpr int kRegions = 8;
constexpr int kDigestsPerRegion = 250;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = argc > 1 ? argv[1] : "BENCH_federation.json";
    bench::world w;

    // Real reports from one flood episode: the digest payload is the
    // persist report codec, so field-rich incidents are the honest load.
    std::vector<incident_report> reports;
    {
        simulation_engine sim(&w.topo, &w.customers,
                              engine_params{.tick = seconds(2), .seed = 61});
        sim.add_default_monitors();
        rng srand(62);
        sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(5));
        skynet_engine engine(
            skynet_engine::deps{&w.topo, &w.customers, &w.registry, &w.syslog});
        sim.run_until(minutes(7),
                      [&](const raw_alert& a, sim_time arrival) { engine.ingest(a, arrival); },
                      [&](sim_time now) { engine.tick(now, sim.state()); });
        engine.finish(sim.clock().now(), sim.state());
        reports = engine.take_reports();
    }
    if (reports.empty()) {
        std::fprintf(stderr, "episode produced no incident reports\n");
        return 1;
    }

    federate::region_digest digest;
    digest.region = "bench-region";
    digest.seq = 1;
    digest.barrier = minutes(7);
    digest.reports = reports;

    // 1. Encode: reports -> digest payload text.
    std::string payload;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kEncodeIters; ++i) {
        payload = federate::encode_digest_payload(digest);
    }
    const double encode_s = seconds_since(t0);
    const double encode_per_s = kEncodeIters / encode_s;
    const double encode_mb_s =
        static_cast<double>(payload.size()) * kEncodeIters / encode_s / 1e6;

    // 2. Frame + decode: the aggregator's receive path, through the
    // incremental fed_decoder exactly as bytes arrive off a socket.
    const std::string frame = federate::frame_fed_record(federate::fed_record::digest, payload);
    bool ok = true;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kEncodeIters && ok; ++i) {
        federate::fed_decoder dec;
        dec.feed(federate::fed_magic);
        dec.feed(frame);
        const auto got = dec.next();
        federate::region_digest out;
        std::string err;
        if (!got || dec.corrupt() ||
            !federate::decode_digest_payload(got->payload, out, err) ||
            out.reports.size() != reports.size()) {
            std::fprintf(stderr, "decode round-trip failed: %s\n", err.c_str());
            ok = false;
        }
    }
    const double decode_s = seconds_since(t0);
    const double decode_per_s = kEncodeIters / decode_s;

    // 3. Merge: apply_digest across regions (seq gating + move-in), then
    // one merged_ranked pass — the /v1/report cost at full fan-in.
    federate::aggregator agg({});
    const std::size_t slice = reports.size() < 4 ? reports.size() : 4;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kRegions; ++r) {
        for (int s = 1; s <= kDigestsPerRegion; ++s) {
            federate::region_digest d;
            d.region = "region-" + std::to_string(r);
            d.seq = static_cast<std::uint64_t>(s);
            d.barrier = seconds(2 * s);
            d.reports.assign(reports.begin(), reports.begin() + static_cast<long>(slice));
            if (!agg.apply_digest(std::move(d)).applied) {
                std::fprintf(stderr, "apply_digest rejected a fresh sequence\n");
                ok = false;
            }
        }
    }
    const double apply_s = seconds_since(t0);
    const double apply_per_s = kRegions * kDigestsPerRegion / apply_s;

    t0 = std::chrono::steady_clock::now();
    const auto merged = agg.merged_ranked();
    const double merge_s = seconds_since(t0);
    if (merged.size() != static_cast<std::size_t>(kRegions) * kDigestsPerRegion * slice) {
        std::fprintf(stderr, "merged_ranked lost reports: %zu\n", merged.size());
        ok = false;
    }

    std::printf("federation digest path (%zu reports/digest, payload %zu bytes)\n",
                reports.size(), payload.size());
    std::printf("  encode        %10.0f digests/s  (%.1f MB/s)\n", encode_per_s, encode_mb_s);
    std::printf("  frame+decode  %10.0f digests/s\n", decode_per_s);
    std::printf("  apply_digest  %10.0f digests/s  (%d regions x %d)\n", apply_per_s,
                kRegions, kDigestsPerRegion);
    std::printf("  merged_ranked %10.3f ms for %zu reports\n", merge_s * 1e3, merged.size());

    // Digests ride the barrier cadence (one per ~2s of sim time per
    // region), so anything above a few hundred per second means the
    // federation layer can never be the bottleneck. Generous floors that
    // only trip on a real regression.
    if (encode_per_s < 500.0 || decode_per_s < 500.0 || apply_per_s < 1000.0) {
        std::fprintf(stderr, "federation digest path below the throughput floor\n");
        ok = false;
    }

    bench::bench_json doc("federation");
    doc.field("reports_per_digest", static_cast<std::uint64_t>(reports.size()));
    doc.field("payload_bytes", static_cast<std::uint64_t>(payload.size()));
    doc.field("encode_digests_per_s", encode_per_s, 1);
    doc.field("encode_mb_per_s", encode_mb_s, 1);
    doc.field("decode_digests_per_s", decode_per_s, 1);
    doc.field("apply_digests_per_s", apply_per_s, 1);
    doc.field("merged_ranked_ms", merge_s * 1e3, 3);
    doc.field("merged_reports", static_cast<std::uint64_t>(merged.size()));
    if (!bench::write_bench_json(json_path, doc)) ok = false;
    return ok ? 0 : 1;
}
