# ctest wrapper for bench_shard_scaling: runs the sweep and asserts the
# throughput gate reported its decision explicitly. A bench that skips
# its gate (too few hardware threads) must say so — silent non-arming
# once made a 1-cpu CI container look like it had verified 6x scaling.
#
# Expects: -DBENCH_BIN=<bench_shard_scaling> -DJSON_OUT=<BENCH_*.json>
if(NOT DEFINED BENCH_BIN OR NOT DEFINED JSON_OUT)
  message(FATAL_ERROR "scaling_gate.cmake needs -DBENCH_BIN and -DJSON_OUT")
endif()

execute_process(
  COMMAND ${BENCH_BIN} ${JSON_OUT}
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err
  RESULT_VARIABLE bench_rc
)
message("${bench_out}")
if(NOT bench_err STREQUAL "")
  message("${bench_err}")
endif()
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_shard_scaling failed (exit ${bench_rc})")
endif()

if(NOT bench_out MATCHES "gate:armed\\(scaling, hw_threads=[0-9]+\\)" AND
   NOT bench_out MATCHES "gate:skipped\\(hw_threads=[0-9]+\\)")
  message(FATAL_ERROR
    "bench_shard_scaling printed neither gate:armed(scaling, hw_threads=N) "
    "nor gate:skipped(hw_threads=N) — the gate decision must be explicit")
endif()
