// Storm-shedding bench: the admission guard under a 10^5-alert flood.
//
// Synthesizes a duplicate-heavy alert storm (the §1 regime: far more
// alerts than any operator pipeline can usefully hold) and streams it
// through a sequential engine four ways — unguarded, and behind an
// admission guard at 1x / 4x / 16x of a base per-window budget. For each
// configuration it reports the shed ratio, the wall-clock cost, and the
// peak live-alert count (preprocessor pending + locator stored: the
// memory-footprint proxy), then verifies two properties:
//
//  * bounded memory: a guarded run's peak live count never exceeds
//    budget x windows + one batch, while the unguarded run grows with
//    the flood;
//  * survivor parity: at the 4x budget the admitted stream produces
//    bit-identical ranked reports on the sequential and 4-shard engines.
//
// Emits machine-readable results to BENCH_storm_shedding.json (override
// with argv[1]).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/overload/controller.h"

namespace {

using namespace skynet;

constexpr std::size_t kWindows = 10;           // 2s tick windows
constexpr std::size_t kBatchesPerWindow = 5;
constexpr std::size_t kBatchSize = 2000;       // 10 * 5 * 2000 = 100k alerts
constexpr std::uint64_t kBaseBudget = 250;     // 1x per-window alert budget

struct flood_batch {
    std::vector<raw_alert> alerts;
    sim_time now{0};
};

/// Deterministic storm: device-attributed kinds across every category,
/// with a heavy duplicate fraction (index-hashed, no wall-clock rng).
std::vector<flood_batch> synthesize_flood(const bench::world& w) {
    const std::size_t devices = w.topo.devices().size();
    std::vector<flood_batch> batches;
    batches.reserve(kWindows * kBatchesPerWindow);
    std::size_t i = 0;
    for (std::size_t win = 0; win < kWindows; ++win) {
        const sim_time now = seconds(2) * static_cast<sim_time>(win + 1);
        for (std::size_t b = 0; b < kBatchesPerWindow; ++b) {
            flood_batch fb;
            fb.now = now;
            fb.alerts.reserve(kBatchSize);
            for (std::size_t k = 0; k < kBatchSize; ++k, ++i) {
                raw_alert a;
                const std::size_t dev = (i * 2654435761u) % devices;
                a.device = static_cast<device_id>(dev);
                a.loc = w.topo.device_at(static_cast<device_id>(dev)).loc;
                a.timestamp = now - static_cast<sim_time>(i % 5) * 100;
                switch (i % 16) {
                    case 0: case 1: case 2: case 3: case 4: case 5:
                        a.source = data_source::traffic_stats;
                        a.kind = "sflow packet loss";  // failure
                        break;
                    case 6: case 7: case 8: case 9:
                        a.source = data_source::snmp;
                        a.kind = "link down";  // root_cause
                        break;
                    case 10: case 11: case 12:
                        a.source = data_source::traffic_stats;
                        a.kind = "traffic surge";  // abnormal -> "other"
                        break;
                    default:
                        // Storm signature: verbatim repeats of a hot alert.
                        a.source = data_source::snmp;
                        a.kind = "link down";
                        a.device = static_cast<device_id>(0);
                        a.loc = w.topo.device_at(static_cast<device_id>(0)).loc;
                        a.timestamp = now;
                        break;
                }
                fb.alerts.push_back(std::move(a));
            }
            batches.push_back(std::move(fb));
        }
    }
    return batches;
}

struct run_result {
    std::string label;
    std::uint64_t budget{0};  // 0 = unguarded
    std::uint64_t admitted{0};
    std::uint64_t shed_duplicate{0};
    std::uint64_t shed_other{0};
    std::uint64_t shed_root_cause{0};
    std::uint64_t shed_failure{0};
    std::size_t peak_live{0};
    std::size_t reports{0};
    double wall_ms{0.0};

    [[nodiscard]] std::uint64_t shed_total() const {
        return shed_duplicate + shed_other + shed_root_cause + shed_failure;
    }
};

template <typename Engine>
run_result run_flood(bench::world& w, Engine& eng, const std::vector<flood_batch>& flood,
                     std::uint64_t budget, const char* label, std::size_t* live_probe) {
    overload::controller_config ccfg;
    ccfg.admission.max_alerts = budget;
    overload::controller guard(ccfg, &w.topo, &w.registry);
    network_state idle(&w.topo, &w.customers);

    run_result r;
    r.label = label;
    r.budget = budget;
    const bench::stopwatch timer;
    sim_time last_now = 0;
    for (const flood_batch& fb : flood) {
        if (last_now != 0 && fb.now != last_now) {
            eng.tick(last_now, idle);
            guard.on_tick(last_now);
        }
        last_now = fb.now;
        const std::vector<raw_alert> admitted = guard.admit(fb.alerts, fb.now);
        if (!admitted.empty()) {
            eng.ingest_batch(std::span<const raw_alert>(admitted), fb.now);
        }
        if (live_probe != nullptr) {
            *live_probe = std::max(*live_probe, static_cast<std::size_t>(eng.live_alert_count()));
        }
    }
    eng.tick(last_now, idle);
    eng.finish(last_now + minutes(20), idle);
    r.wall_ms = timer.seconds() * 1e3;

    const overload_metrics& m = guard.metrics();
    if (budget == 0) {
        // Pass-through controllers count nothing; every alert was admitted.
        r.admitted = kWindows * kBatchesPerWindow * kBatchSize;
    } else {
        r.admitted = m.admitted;
    }
    r.shed_duplicate = m.shed_duplicate;
    r.shed_other = m.shed_other;
    r.shed_root_cause = m.shed_root_cause;
    r.shed_failure = m.shed_failure;
    return r;
}

void append_json(std::string& out, const run_result& r) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"label\":\"%s\",\"budget_per_window\":%llu,\"admitted\":%llu,"
                  "\"shed\":{\"duplicate\":%llu,\"other\":%llu,\"root_cause\":%llu,"
                  "\"failure\":%llu},\"shed_ratio\":%.4f,\"peak_live_alerts\":%zu,"
                  "\"reports\":%zu,\"wall_ms\":%.2f}",
                  r.label.c_str(), static_cast<unsigned long long>(r.budget),
                  static_cast<unsigned long long>(r.admitted),
                  static_cast<unsigned long long>(r.shed_duplicate),
                  static_cast<unsigned long long>(r.shed_other),
                  static_cast<unsigned long long>(r.shed_root_cause),
                  static_cast<unsigned long long>(r.shed_failure),
                  static_cast<double>(r.shed_total()) /
                      static_cast<double>(kWindows * kBatchesPerWindow * kBatchSize),
                  r.peak_live, r.reports, r.wall_ms);
    out += buf;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = argc > 1 ? argv[1] : "BENCH_storm_shedding.json";
    bench::world w;
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    const std::vector<flood_batch> flood = synthesize_flood(w);

    std::printf("storm shedding: %zu alerts in %zu windows, base budget %llu/window\n",
                kWindows * kBatchesPerWindow * kBatchSize, kWindows,
                static_cast<unsigned long long>(kBaseBudget));
    std::printf("%-12s %10s %10s %10s %12s %10s\n", "config", "admitted", "shed", "peak_live",
                "reports", "wall_ms");

    std::vector<run_result> results;
    bool ok = true;
    for (const std::uint64_t budget : {std::uint64_t{0}, kBaseBudget, 4 * kBaseBudget,
                                       16 * kBaseBudget}) {
        char label[32];
        if (budget == 0) {
            std::snprintf(label, sizeof label, "unguarded");
        } else {
            std::snprintf(label, sizeof label, "budget_%llux",
                          static_cast<unsigned long long>(budget / kBaseBudget));
        }
        skynet_engine eng({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
        std::size_t peak_live = 0;
        run_result r = run_flood(w, eng, flood, budget, label, &peak_live);
        r.peak_live = peak_live;
        r.reports = eng.take_reports().size();
        results.push_back(r);
        std::printf("%-12s %10llu %10llu %10zu %12zu %10.2f\n", r.label.c_str(),
                    static_cast<unsigned long long>(r.admitted),
                    static_cast<unsigned long long>(r.shed_total()), r.peak_live, r.reports,
                    r.wall_ms);

        // Bounded-memory property: a guarded run can never hold more than
        // its whole-run admission allowance plus the batch in flight.
        if (budget != 0) {
            const std::size_t bound = static_cast<std::size_t>(budget) * kWindows + kBatchSize;
            if (r.peak_live > bound) {
                std::fprintf(stderr, "FAIL: %s peak live %zu exceeds bound %zu\n",
                             r.label.c_str(), r.peak_live, bound);
                ok = false;
            }
        }
    }
    // ... while the unguarded run's footprint grows with the flood. The
    // preprocessor's consolidation already soaks up verbatim duplicates,
    // so the contrast is in the distinct-alert tail: require the
    // unguarded peak to be at least twice the 1x-guarded peak.
    if (results[0].peak_live <= 2 * results[1].peak_live) {
        std::fprintf(stderr, "FAIL: unguarded peak %zu is not >> guarded peak %zu\n",
                     results[0].peak_live, results[1].peak_live);
        ok = false;
    }

    // Survivor parity at the 4x budget: the admitted stream must produce
    // identical ranked reports on both engine shapes.
    bool parity = true;
    {
        skynet_engine seq({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
        (void)run_flood(w, seq, flood, 4 * kBaseBudget, "parity_seq", nullptr);
        sharded_config scfg;
        scfg.shards = 4;
        sharded_engine par({&w.topo, &w.customers, &w.registry, &w.syslog}, scfg);
        (void)run_flood(w, par, flood, 4 * kBaseBudget, "parity_shard", nullptr);
        const std::vector<incident_report> a = seq.take_reports();
        const std::vector<incident_report> b = par.take_reports();
        parity = a.size() == b.size();
        for (std::size_t i = 0; parity && i < a.size(); ++i) {
            parity = a[i].render() == b[i].render();
        }
        if (!parity) {
            std::fprintf(stderr, "FAIL: survivor reports differ (%zu vs %zu)\n", a.size(),
                         b.size());
            ok = false;
        }
        std::printf("survivor parity (4x budget, 4 shards): %s\n", parity ? "ok" : "MISMATCH");
    }

    bench::bench_json doc("storm_shedding");
    doc.field("flood_alerts", std::uint64_t{kWindows * kBatchesPerWindow * kBatchSize});
    doc.field("windows", std::uint64_t{kWindows});
    doc.field("base_budget_per_window", kBaseBudget);
    doc.field("survivor_parity", parity);
    std::string runs = "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        append_json(runs, results[i]);
        runs += i + 1 < results.size() ? ",\n" : "\n";
    }
    runs += "  ]";
    doc.raw("runs", runs);
    if (!bench::write_bench_json(json_path, doc)) ok = false;
    return ok ? 0 : 1;
}
