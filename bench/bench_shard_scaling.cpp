// Shard-scaling curve for the elastic sharded engine.
//
// A single-region mega-storm is the worst case for region sharding:
// region-prefix routing sends every alert to one shard, so without work
// stealing N-1 workers idle while one drowns. This bench replays one
// deterministic storm through the sharded engine at 1..32 shards with
// deterministic work stealing on, and publishes the throughput curve
// plus the steal counters that explain it (how many batches thieves
// prepared, how often owners waited, how contended the location-table
// stripes were).
//
// Two properties are enforced on every run of the sweep, on any
// machine:
//
//  * parity: the merged ranked report is byte-identical to the
//    sequential engine's, and identical with stealing on and off —
//    stealing moves the *prepare* stage, never the order of effects;
//  * scaling (gated on hardware_concurrency() >= 16, so laptops and
//    1-cpu CI containers still verify parity): >= 6x ingest throughput
//    at 16 shards vs 1.
//
// Emits machine-readable results to BENCH_shard_scaling.json (override
// with argv[1]).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "skynet/core/sharded_engine.h"

namespace {

using namespace skynet;

constexpr std::size_t kWindows = 8;       // 2s tick windows
constexpr std::size_t kBatchesPerWindow = 6;
constexpr std::size_t kBatchSize = 1500;  // 8 * 6 * 1500 = 72k alerts

struct flood_batch {
    std::vector<raw_alert> alerts;
    sim_time now{0};
};

/// Deterministic mega-storm confined to one region: every alert is
/// attributed to a device inside the first region's subtree, so
/// region-prefix routing concentrates the whole flood on one shard.
std::vector<flood_batch> synthesize_storm(const bench::world& w) {
    // Devices of the lowest-id region only.
    const location_table& table = w.topo.locations();
    std::vector<device_id> region_devices;
    location_id region = invalid_location_id;
    for (device_id d = 0; d < static_cast<device_id>(w.topo.devices().size()); ++d) {
        const location_id r = table.region_of(w.topo.device_at(d).loc_id);
        if (region == invalid_location_id) region = r;
        if (r == region) region_devices.push_back(d);
    }

    std::vector<flood_batch> batches;
    batches.reserve(kWindows * kBatchesPerWindow);
    std::size_t i = 0;
    for (std::size_t win = 0; win < kWindows; ++win) {
        const sim_time now = seconds(2) * static_cast<sim_time>(win + 1);
        for (std::size_t b = 0; b < kBatchesPerWindow; ++b) {
            flood_batch fb;
            fb.now = now;
            fb.alerts.reserve(kBatchSize);
            for (std::size_t k = 0; k < kBatchSize; ++k, ++i) {
                raw_alert a;
                const device_id dev = region_devices[(i * 2654435761u) % region_devices.size()];
                a.device = dev;
                a.loc = w.topo.device_at(dev).loc;
                a.timestamp = now - static_cast<sim_time>(i % 7) * 50;
                switch (i % 8) {
                    case 0: case 1: case 2:
                        a.source = data_source::traffic_stats;
                        a.kind = "sflow packet loss";
                        break;
                    case 3: case 4:
                        a.source = data_source::snmp;
                        a.kind = "link down";
                        break;
                    case 5:
                        a.source = data_source::traffic_stats;
                        a.kind = "traffic surge";
                        break;
                    default:
                        // Syslog kind is recovered by template
                        // classification, exercising the miner under
                        // concurrent prepare().
                        a.source = data_source::syslog;
                        a.message = "Interface HundredGigE0/0/0/1 link down";
                        break;
                }
                fb.alerts.push_back(std::move(a));
            }
            batches.push_back(std::move(fb));
        }
    }
    return batches;
}

struct run_result {
    std::size_t shards{0};  // 0 = sequential engine
    bool steal{false};
    double wall_ms{0.0};
    double alerts_per_sec{0.0};
    std::string report;
    steal_metrics steal_counters;
};

template <typename Engine>
std::string drain_report(Engine& eng) {
    std::string all;
    for (const incident_report& r : eng.take_reports()) all += r.render();
    return all;
}

template <typename Engine>
run_result run_storm(bench::world& w, Engine& eng, const std::vector<flood_batch>& storm) {
    network_state idle(&w.topo, &w.customers);
    run_result r;
    const bench::stopwatch timer;
    sim_time last_now = 0;
    for (const flood_batch& fb : storm) {
        if (last_now != 0 && fb.now != last_now) eng.tick(last_now, idle);
        last_now = fb.now;
        eng.ingest_batch(std::span<const raw_alert>(fb.alerts), fb.now);
    }
    eng.tick(last_now, idle);
    eng.finish(last_now + minutes(20), idle);
    r.wall_ms = timer.seconds() * 1e3;
    r.alerts_per_sec = static_cast<double>(kWindows * kBatchesPerWindow * kBatchSize) /
                       (r.wall_ms / 1e3);
    r.report = drain_report(eng);
    return r;
}

run_result run_sharded(bench::world& w, const std::vector<flood_batch>& storm,
                       std::size_t shards, bool steal) {
    sharded_config cfg;
    cfg.shards = shards;
    cfg.steal = steal;
    cfg.engine.loc.deterministic_ids = true;
    sharded_engine eng({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
    run_result r = run_storm(w, eng, storm);
    r.shards = shards;
    r.steal = steal;
    r.steal_counters = eng.barrier_metrics().steal;
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = argc > 1 ? argv[1] : "BENCH_shard_scaling.json";
    bench::world w;
    const std::vector<flood_batch> storm = synthesize_storm(w);
    const unsigned hw = std::thread::hardware_concurrency();

    // Sequential baseline: the parity reference and the 1x throughput
    // anchor shares deterministic ids with the sharded runs.
    skynet_config seq_cfg;
    seq_cfg.loc.deterministic_ids = true;
    skynet_engine seq({&w.topo, &w.customers, &w.registry, &w.syslog}, seq_cfg);
    const run_result baseline = run_storm(w, seq, storm);

    std::printf("shard scaling: single-region storm, %zu alerts, %u hardware threads\n",
                kWindows * kBatchesPerWindow * kBatchSize, hw);
    std::printf("%-12s %10s %12s %9s %9s %9s %8s\n", "engine", "wall_ms", "alerts/s",
                "speedup", "stolen", "parks", "parity");
    std::printf("%-12s %10.2f %12.0f %9s %9s %9s %8s\n", "sequential", baseline.wall_ms,
                baseline.alerts_per_sec, "1.00x", "-", "-", "ref");

    bool ok = true;
    std::vector<run_result> curve;
    double speedup_at_16 = 0.0;
    double wall_at_1 = 0.0;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                     std::size_t{8}, std::size_t{16}, std::size_t{32}}) {
        run_result on = run_sharded(w, storm, shards, /*steal=*/true);
        const run_result off = run_sharded(w, storm, shards, /*steal=*/false);

        // Parity is the whole point of *deterministic* stealing: the
        // merged report must be byte-identical to the sequential run,
        // and stealing on vs off must not change a byte either.
        const bool parity = on.report == baseline.report && off.report == baseline.report;
        if (!parity) {
            std::fprintf(stderr, "FAIL: report parity broken at %zu shards\n", shards);
            ok = false;
        }
        if (shards == 1) wall_at_1 = on.wall_ms;
        const double speedup = wall_at_1 > 0.0 ? wall_at_1 / on.wall_ms : 0.0;
        if (shards == 16) speedup_at_16 = speedup;
        std::printf("%-12zu %10.2f %12.0f %8.2fx %9llu %9llu %8s\n", shards, on.wall_ms,
                    on.alerts_per_sec, speedup,
                    static_cast<unsigned long long>(on.steal_counters.batches_stolen),
                    static_cast<unsigned long long>(on.steal_counters.worker_parks),
                    parity ? "ok" : "MISMATCH");
        curve.push_back(std::move(on));
    }

    // The throughput gate only binds where the hardware can express it;
    // a 1-cpu container still runs the full sweep for parity. Either way
    // the decision is printed explicitly — a skipped gate must read as
    // skipped, never as silently passed (the scaling ctest wrapper
    // asserts one of these lines appeared).
    const bool gate_scaling = hw >= 16;
    if (gate_scaling) {
        std::printf("gate:armed(scaling, hw_threads=%u)\n", hw);
        if (speedup_at_16 < 6.0) {
            std::fprintf(stderr, "FAIL: %.2fx speedup at 16 shards, need >= 6x\n",
                         speedup_at_16);
            ok = false;
        }
    } else {
        std::printf("gate:skipped(hw_threads=%u)\n", hw);
    }

    bench::bench_json doc("shard_scaling");
    doc.field("storm_alerts", std::uint64_t{kWindows * kBatchesPerWindow * kBatchSize});
    doc.field("hardware_threads", static_cast<std::uint64_t>(hw));
    doc.field("scaling_gate_active", gate_scaling);
    doc.field("speedup_at_16_shards", speedup_at_16, 2);
    doc.field("report_parity", ok);
    doc.field("sequential_wall_ms", baseline.wall_ms, 2);
    std::string runs = "[\n";
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const run_result& r = curve[i];
        const steal_metrics& st = r.steal_counters;
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "    {\"shards\":%zu,\"wall_ms\":%.2f,\"alerts_per_sec\":%.0f,"
                      "\"speedup_vs_1\":%.2f,\"batches_stolen\":%llu,\"alerts_stolen\":%llu,"
                      "\"steal_attempts\":%llu,\"steal_misses\":%llu,\"owner_waits\":%llu,"
                      "\"worker_parks\":%llu,\"intern_lock_contention\":%llu,"
                      "\"intern_entries\":%llu}",
                      r.shards, r.wall_ms, r.alerts_per_sec,
                      wall_at_1 > 0.0 ? wall_at_1 / r.wall_ms : 0.0,
                      static_cast<unsigned long long>(st.batches_stolen),
                      static_cast<unsigned long long>(st.alerts_stolen),
                      static_cast<unsigned long long>(st.steal_attempts),
                      static_cast<unsigned long long>(st.steal_misses),
                      static_cast<unsigned long long>(st.owner_waits),
                      static_cast<unsigned long long>(st.worker_parks),
                      static_cast<unsigned long long>(st.intern_lock_contention),
                      static_cast<unsigned long long>(st.intern_entries));
        runs += buf;
        runs += i + 1 < curve.size() ? ",\n" : "\n";
    }
    runs += "  ]";
    doc.raw("runs", runs);
    if (!bench::write_bench_json(json_path, doc)) ok = false;
    return ok ? 0 : 1;
}
