// Figure 8a: locating accuracy vs number of data sources.
//
// Removes data sources lowest-coverage-first (All -> 6 -> 4 -> 3, as in
// the paper) and measures false positives / false negatives against
// ground truth. Fewer sources barely move FP but raise FN — missed
// failures — which is why SkyNet integrates everything.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness.h"

using namespace skynet;

int main() {
    std::printf("=== Figure 8a: locating accuracy vs data source number ===\n\n");
    bench::world w(generator_params::small(), 300, 17);
    constexpr int episodes = 30;

    // Coverage ordering (high to low) mirrors our Figure 3 measurement:
    // device counters and logs lead; niche control-plane sources trail.
    const std::vector<data_source> by_coverage = {
        data_source::traffic_stats, data_source::syslog,
        data_source::inband_telemetry, data_source::snmp,
        data_source::traceroute,    data_source::ping,
        data_source::patrol_inspection, data_source::out_of_band,
        data_source::internet_telemetry, data_source::modification_events,
        data_source::route_monitoring, data_source::ptp,
    };

    // Stratified failure mix: every root-cause class appears (severe and
    // minor), topped up with the Figure 1 random mix — so the failures
    // only niche sources can see (hijacks, infrastructure deaths) are
    // actually in the sample.
    struct planned {
        root_cause cause;
        bool severe;
    };
    std::vector<planned> plan;
    for (const root_cause c :
         {root_cause::device_hardware, root_cause::link_error, root_cause::modification_error,
          root_cause::device_software, root_cause::infrastructure, root_cause::route_error,
          root_cause::security, root_cause::configuration}) {
        plan.push_back({c, true});
        plan.push_back({c, false});
    }

    std::printf("%-10s %8s %8s %8s %8s %8s\n", "sources", "TP", "FP", "FN", "FP rate", "FN rate");
    for (const int keep : {12, 6, 4, 3}) {
        std::set<data_source> enabled(by_coverage.begin(), by_coverage.begin() + keep);
        std::vector<bench::episode_result> results;
        for (int e = 0; e < episodes; ++e) {
            bench::episode_options opts;
            opts.seed = static_cast<std::uint64_t>(6000 + e);
            opts.enabled_sources = enabled;
            opts.failure_duration = minutes(6);
            opts.noise_rate = 0.03;
            opts.benign_events = 1;
            if (e < static_cast<int>(plan.size())) {
                rng srand(opts.seed * 31 + 7);
                std::vector<std::unique_ptr<scenario>> failures;
                failures.push_back(
                    make_scenario(plan[e].cause, w.topo, srand, plan[e].severe));
                results.push_back(bench::run_episode(w, std::move(failures), opts));
            } else {
                results.push_back(bench::run_random_episode(w, e % 2 == 0, opts));
            }
        }
        const bench::accuracy_counts acc = bench::score_all(results);
        if (std::getenv("SKYNET_DEBUG_FN") != nullptr) {
            for (const bench::episode_result& r : results) {
                const bench::accuracy_counts c = bench::score(r);
                if (c.false_negatives > 0) {
                    std::printf("  [missed] %s severe=%d\n", r.truth.front().name.c_str(),
                                r.truth.front().severe);
                }
            }
        }
        char label[16];
        std::snprintf(label, sizeof label, "%s", keep == 12 ? "All" : std::to_string(keep).c_str());
        std::printf("%-10s %8d %8d %8d %7.1f%% %7.1f%%\n", label, acc.true_positives,
                    acc.false_positives, acc.false_negatives, acc.false_positive_rate() * 100.0,
                    acc.false_negative_rate() * 100.0);
    }
    std::printf("\nPaper shape: removing sources leaves FP roughly flat but drives\n"
                "FN up — overlooked failures.\n");
    return 0;
}
