// Figure 9: locating accuracy across incident-threshold settings.
//
// X-axis notation A/B+C/D: "A failure alerts", "B failure alerts and C
// other alerts", or "D alerts of any type" spawn an incident; 0 disables
// a clause. "type+location" counts the same alert type at different
// locations separately. The paper's production setting 2/1+2/5 achieves
// the lowest false positives at zero false negatives.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

using namespace skynet;

namespace {

struct variant {
    std::string label;
    locator_config cfg;
};

std::vector<variant> variants() {
    auto t = [](int a, int b, int c, int d) {
        locator_config cfg;
        cfg.thresholds = incident_thresholds{.pure_failure = a, .combo_failure = b,
                                             .combo_other = c, .any = d};
        return cfg;
    };
    std::vector<variant> out;
    {
        locator_config cfg = t(2, 1, 2, 5);
        cfg.count_by_type = false;
        out.push_back({"type+location", cfg});
    }
    out.push_back({"0/1+2/5", t(0, 1, 2, 5)});
    out.push_back({"2/0+0/5", t(2, 0, 0, 5)});
    out.push_back({"2/1+2/0", t(2, 1, 2, 0)});
    out.push_back({"1/1+2/5", t(1, 1, 2, 5)});
    out.push_back({"2/1+2/4", t(2, 1, 2, 4)});
    out.push_back({"2/1+1/5", t(2, 1, 1, 5)});
    out.push_back({"2/1+2/5", t(2, 1, 2, 5)});  // production
    out.push_back({"2/1+3/5", t(2, 1, 3, 5)});
    out.push_back({"2/1+2/6", t(2, 1, 2, 6)});
    return out;
}

}  // namespace

int main() {
    std::printf("=== Figure 9: accuracy with different parameters ===\n\n");
    bench::world w(generator_params::small(), 300, 13);
    constexpr int episodes = 30;

    std::printf("%-16s %8s %8s %8s %8s %8s\n", "threshold", "TP", "FP", "FN", "FP rate",
                "FN rate");
    for (const variant& v : variants()) {
        std::vector<bench::episode_result> results;
        for (int e = 0; e < episodes; ++e) {
            bench::episode_options opts;
            opts.seed = static_cast<std::uint64_t>(5000 + e);  // same seeds per variant
            opts.skynet.loc = v.cfg;
            opts.failure_duration = minutes(6);
            opts.noise_rate = 0.03;
            opts.benign_events = 2;
            results.push_back(bench::run_random_episode(w, e % 2 == 0, opts));
        }
        const bench::accuracy_counts acc = bench::score_all(results);
        std::printf("%-16s %8d %8d %8d %7.1f%% %7.1f%%%s\n", v.label.c_str(),
                    acc.true_positives, acc.false_positives, acc.false_negatives,
                    acc.false_positive_rate() * 100.0, acc.false_negative_rate() * 100.0,
                    v.label == "2/1+2/5" ? "   <- production" : "");
    }
    std::printf("\nPaper shape: 2/1+2/5 keeps FN at zero with the lowest FP;\n"
                "type+location inflates FP; disabled clauses raise FN.\n");
    return 0;
}
