// Figure 3: network failure coverage of each monitoring tool.
//
// Injects a stream of failures drawn from the Figure 1 root-cause mix
// (severe and minor) and measures, per data source, the fraction of
// failures during which that source raised at least one alert. The paper
// reports 3 %-84 % across tools, with no tool covering everything — the
// motivation for integrating all twelve.
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

#include "harness.h"

using namespace skynet;

int main() {
    std::printf("=== Figure 3: network failure coverage of monitoring tools ===\n\n");

    bench::world w(generator_params::small(), 300, 5);
    constexpr int episodes = 40;

    std::map<data_source, int> detected;
    for (data_source src : all_data_sources()) detected[src] = 0;

    for (int e = 0; e < episodes; ++e) {
        rng srand(1000 + e);
        const bool severe = e % 3 == 0;
        auto scenario_ptr = make_random_scenario(w.topo, srand, severe);

        simulation_engine sim(&w.topo, &w.customers,
                              engine_params{.tick = seconds(2),
                                            .seed = static_cast<std::uint64_t>(2000 + e)});
        sim.add_default_monitors();
        sim.inject(std::move(scenario_ptr), minutes(1), minutes(4));

        std::set<data_source> fired;
        sim.run_until(minutes(6), [&fired](const raw_alert& a, sim_time) {
            fired.insert(a.source);
        });
        for (data_source src : fired) ++detected[src];
    }

    std::printf("%-22s %10s   (over %d failures from the Figure 1 mix)\n", "data source",
                "coverage", episodes);
    std::vector<std::pair<data_source, int>> rows(detected.begin(), detected.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
    });
    for (const auto& [src, hits] : rows) {
        const double pct = 100.0 * hits / episodes;
        std::printf("%-22s %9.1f%%  |", std::string(to_string(src)).c_str(), pct);
        for (int i = 0; i < static_cast<int>(pct / 2.5); ++i) std::printf("#");
        std::printf("\n");
    }
    std::printf("\nNo single source covers every failure; the spread motivates\n"
                "integrating all of them (the paper reports 3%%-84%%).\n");
    return 0;
}
