// Daemon query latency under active ingest.
//
// The serve-mode promise is that reads never wait for the flood: the
// HTTP surface answers from the incident store and the published health
// snapshot (snapshot-at-barrier), so a query during a storm costs a
// shared lock and a copy, not a walk of the live engine. This bench
// measures that promise end to end: a daemon on unix sockets runs the
// 4-shard engine while a client thread re-streams a recorded flood at
// it, and the full HTTP round-trip (dial, request, parse, close) is
// sampled for the three read endpoints. Reported as p50/p99 per
// endpoint.
//
// Emits machine-readable results to BENCH_serve_latency.json (override
// with argv[1]).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "harness.h"
#include "skynet/serve/daemon.h"
#include "skynet/serve/http.h"
#include "skynet/serve/wire.h"

namespace {

using namespace skynet;

constexpr int kSamplesPerEndpoint = 400;

struct endpoint_stats {
    const char* name;
    const char* target;
    std::vector<double> micros;
};

double percentile(std::vector<double>& v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = argc > 1 ? argv[1] : "BENCH_serve_latency.json";
    bench::world w;

    // One recorded flood, replayed at the daemon for the whole
    // measurement window.
    std::vector<traced_alert> flood;
    {
        simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 41});
        sim.add_default_monitors();
        rng srand(42);
        sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(5));
        sim.run_until_batched(minutes(7),
                              [&](std::span<const traced_alert> batch) {
                                  flood.insert(flood.end(), batch.begin(), batch.end());
                              },
                              [](sim_time) {});
    }

    serve::engine_options opts;
    opts.shards = 4;
    opts.serve.ingest_addr = "unix:/tmp/skynet_bench_serve_in.sock";
    opts.serve.http_addr = "unix:/tmp/skynet_bench_serve_api.sock";
    serve::daemon d(w.topo, w.customers, w.registry, &w.syslog, opts);
    if (error e = d.start()) {
        std::fprintf(stderr, "daemon start failed: %s\n", e.message().c_str());
        return 1;
    }
    const auto ingest_addr = serve::parse_addr(d.ingest_addr());
    const auto http_addr = serve::parse_addr(d.http_addr());

    // Prime the store with one full pass so /v1/report and /v1/incidents
    // answer over real incidents, then keep the ingest path hot.
    std::string err;
    if (const auto primed =
            serve::stream_trace(*ingest_addr, flood, seconds(2), minutes(20), err);
        !primed || !primed->ok()) {
        std::fprintf(stderr, "priming stream failed: %s\n", err.c_str());
        return 1;
    }
    std::atomic<bool> stop_streaming{false};
    std::thread streamer([&] {
        while (!stop_streaming.load()) {
            std::string serr;
            (void)serve::stream_trace(*ingest_addr, flood, seconds(2), minutes(20), serr);
        }
    });

    endpoint_stats endpoints[] = {
        {"health", "/v1/health", {}},
        {"incidents", "/v1/incidents?limit=20", {}},
        {"report", "/v1/report?json=1", {}},
    };

    bool ok = true;
    for (int i = 0; i < kSamplesPerEndpoint && ok; ++i) {
        for (endpoint_stats& ep : endpoints) {
            serve::http_response resp;
            const auto t0 = std::chrono::steady_clock::now();
            if (!serve::http_call(*http_addr, "GET", ep.target, "", resp, err) ||
                resp.status != 200) {
                std::fprintf(stderr, "%s failed: HTTP %d %s\n", ep.target, resp.status,
                             err.c_str());
                ok = false;
                break;
            }
            const auto dt = std::chrono::steady_clock::now() - t0;
            ep.micros.push_back(
                std::chrono::duration<double, std::micro>(dt).count());
        }
    }

    stop_streaming.store(true);
    streamer.join();
    d.request_stop();
    if (d.run() != 0) {
        std::fprintf(stderr, "daemon shutdown was not clean\n");
        ok = false;
    }
    if (!ok) return 1;

    std::printf("serve latency under active 4-shard ingest (%zu alerts/pass, %d samples)\n",
                flood.size(), kSamplesPerEndpoint);
    std::printf("%-10s %10s %10s %10s\n", "endpoint", "p50_us", "p99_us", "max_us");
    bench::bench_json doc("serve_latency");
    doc.field("samples_per_endpoint", std::uint64_t{kSamplesPerEndpoint});
    doc.field("shards", std::uint64_t{4});
    for (endpoint_stats& ep : endpoints) {
        const double p50 = percentile(ep.micros, 0.50);
        const double p99 = percentile(ep.micros, 0.99);
        const double mx = ep.micros.empty() ? 0.0 : ep.micros.back();
        std::printf("%-10s %10.1f %10.1f %10.1f\n", ep.name, p50, p99, mx);
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "{\"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f}", p50, p99, mx);
        doc.raw(ep.name, buf);
        // Reads must stay interactive while the flood streams: a very
        // generous ceiling that only trips if queries start waiting on
        // the ingest path.
        if (p99 > 500000.0) {
            std::fprintf(stderr, "%s p99 %.0f us exceeds the 500ms ceiling\n", ep.name, p99);
            ok = false;
        }
    }
    if (!bench::write_bench_json(json_path, doc)) ok = false;
    return ok ? 0 : 1;
}
