// Journal-overhead microbench: the cost of write-ahead durability.
//
// Streams one recorded failure episode through a sequential engine
// twice — bare, and wrapped in a persist::durable_session journaling to
// a scratch directory — and reports the ingest+tick wall-clock ratio.
// DESIGN.md "Durability & recovery" budgets <= 15% slowdown for the
// journal-only configuration (checkpoints amortize separately).
//
//   ./bench_journal_overhead [episodes] [flush_every]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <vector>

#include "harness.h"
#include "skynet/persist/durable.h"
#include "skynet/sim/trace.h"

namespace {

using namespace skynet;

struct command {
    persist::record_type kind{persist::record_type::batch};
    std::vector<traced_alert> batch;
    sim_time now{0};
};

std::vector<command> record_episode(bench::world& w, std::uint64_t seed) {
    std::vector<command> commands;
    simulation_engine sim(&w.topo, &w.customers,
                          engine_params{.tick = seconds(2), .seed = seed});
    sim.add_default_monitors(monitor_options{.noise_rate = 0.02});
    rng srand(seed + 2);
    sim.inject(make_random_scenario(w.topo, srand, true), minutes(1), minutes(4));
    sim.run_until_batched(
        minutes(7),
        [&](std::span<const traced_alert> batch) {
            if (batch.empty()) return;
            trace_parse_result normalized = parse_trace(serialize_trace(batch));
            commands.push_back(command{.kind = persist::record_type::batch,
                                       .batch = std::move(normalized.alerts),
                                       .now = 0});
        },
        [&](sim_time now) {
            commands.push_back(
                command{.kind = persist::record_type::tick, .batch = {}, .now = now});
        });
    commands.push_back(command{.kind = persist::record_type::finish,
                               .batch = {},
                               .now = sim.clock().now()});
    return commands;
}

template <typename Sink>
void stream(Sink& sink, const std::vector<command>& commands, const network_state& idle) {
    for (const command& c : commands) {
        switch (c.kind) {
            case persist::record_type::batch:
                sink.ingest_batch(std::span<const traced_alert>(c.batch));
                break;
            case persist::record_type::tick:
                sink.tick(c.now, idle);
                break;
            case persist::record_type::finish:
                sink.finish(c.now, idle);
                break;
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    const int episodes = argc > 1 ? std::atoi(argv[1]) : 5;
    const std::size_t flush_every =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 16;

    bench::world w;
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "skynet_bench_journal";

    std::printf("journal overhead: %d episodes, flush_every=%zu\n", episodes, flush_every);
    std::printf("%-8s %12s %12s %12s %10s\n", "episode", "alerts", "bare_ms", "journal_ms",
                "overhead");

    double bare_total = 0.0;
    double journal_total = 0.0;
    for (int ep = 0; ep < episodes; ++ep) {
        const std::uint64_t seed = 100 + static_cast<std::uint64_t>(ep);
        const std::vector<command> commands = record_episode(w, seed);
        std::int64_t alerts = 0;
        for (const command& c : commands) {
            alerts += static_cast<std::int64_t>(c.batch.size());
        }
        network_state idle(&w.topo, &w.customers);

        // Episodes run in milliseconds, where a single scheduler hiccup
        // swamps the signal — time several passes of each variant and
        // keep the best.
        constexpr int passes = 3;
        double bare_s = 1e30;
        double journal_s = 1e30;
        for (int pass = 0; pass < passes; ++pass) {
            {
                skynet_engine eng({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
                const bench::stopwatch timer;
                stream(eng, commands, idle);
                bare_s = std::min(bare_s, timer.seconds());
                (void)eng.take_reports();
            }
            {
                std::filesystem::remove_all(dir);
                skynet_engine eng({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
                persist::durable_options opts;
                opts.dir = dir.string();
                opts.checkpoint_every = 0;  // journal cost only
                opts.flush_every = flush_every;
                opts.locations = &w.topo.locations();
                persist::durable_session<skynet_engine> session(eng, opts);
                const bench::stopwatch timer;
                stream(session, commands, idle);
                journal_s = std::min(journal_s, timer.seconds());
                (void)eng.take_reports();
            }
        }

        bare_total += bare_s;
        journal_total += journal_s;
        std::printf("%-8d %12lld %12.2f %12.2f %9.1f%%\n", ep,
                    static_cast<long long>(alerts), bare_s * 1e3, journal_s * 1e3,
                    (journal_s / bare_s - 1.0) * 100.0);
    }
    std::filesystem::remove_all(dir);
    const double overhead = (journal_total / bare_total - 1.0) * 100.0;
    std::printf("total: bare %.1f ms, journaled %.1f ms -> %.1f%% overhead (target <= 15%%)\n",
                bare_total * 1e3, journal_total * 1e3, overhead);
    return overhead <= 15.0 ? 0 : 1;
}
