// Figure 1: the proportion of network failure root causes.
//
// The scenario generator samples root-cause classes from the published
// distribution; this bench verifies the sampled mix against the paper's
// chart and shows the concrete scenario each class instantiates.
#include <array>
#include <cstdio>

#include "harness.h"

using namespace skynet;

int main() {
    std::printf("=== Figure 1: proportion of network failure root causes ===\n\n");

    rng rand(2024);
    constexpr int samples = 200000;
    std::array<int, root_cause_count> counts{};
    for (int i = 0; i < samples; ++i) {
        counts[static_cast<std::size_t>(sample_root_cause(rand))]++;
    }

    std::printf("%-32s %8s %10s\n", "root cause", "paper %", "sampled %");
    constexpr std::array<root_cause, root_cause_count> causes = {
        root_cause::device_hardware, root_cause::link_error,  root_cause::modification_error,
        root_cause::device_software, root_cause::infrastructure, root_cause::route_error,
        root_cause::security,        root_cause::configuration,
    };
    for (root_cause c : causes) {
        std::printf("%-32s %7.1f%% %9.2f%%\n", std::string(to_string(c)).c_str(),
                    root_cause_share(c) * 100.0,
                    100.0 * counts[static_cast<std::size_t>(c)] / samples);
    }

    // Show one instantiated scenario per class.
    std::printf("\nExample scenario per class (small topology):\n");
    bench::world w;
    rng srand(7);
    for (root_cause c : causes) {
        const auto s = make_scenario(c, w.topo, srand, /*severe=*/false);
        std::printf("  %-32s -> %s (scope: %s)\n", std::string(to_string(c)).c_str(),
                    s->name().c_str(), s->scope().to_string().c_str());
    }
    return 0;
}
