// Ablation: topology-connectivity grouping in the locator (§4.2).
//
// Two unrelated failures in the same region at once: with connectivity
// grouping, SkyNet separates them into two incidents rooted near their
// real scopes (the Figure 5c behaviour); without it, the alerts weld
// into one blob at their common ancestor and localization precision
// collapses.
#include <cstdio>

#include "harness.h"

using namespace skynet;

namespace {

struct outcome {
    int episodes{0};
    int separated{0};      // both failures got their own incident
    int merged_blobs{0};   // a single incident spans both scopes
    double mean_root_depth{0.0};
};

outcome run(bench::world& w, bool use_connectivity) {
    outcome out;
    int roots = 0;
    double depth_sum = 0.0;

    for (int e = 0; e < 15; ++e) {
        bench::episode_options opts;
        opts.seed = static_cast<std::uint64_t>(11000 + e);
        opts.failure_duration = minutes(6);
        opts.noise_rate = 0.02;
        opts.benign_events = 0;
        opts.skynet.loc.use_connectivity = use_connectivity;

        // Two failures with disjoint scopes, same seed-driven picks per
        // variant.
        rng srand(opts.seed * 31 + 7);
        std::vector<std::unique_ptr<scenario>> failures;
        failures.push_back(make_device_hardware_failure(w.topo, srand, true));
        failures.push_back(make_infrastructure_failure(w.topo, srand, false));
        const location scope_a = failures[0]->scope();
        const location scope_b = failures[1]->scope();
        if (scope_a.contains(scope_b) || scope_b.contains(scope_a)) continue;  // overlapping pick

        const bench::episode_result r = bench::run_episode(w, std::move(failures), opts);
        ++out.episodes;

        bool a_own = false;
        bool b_own = false;
        bool blob = false;
        for (const incident_report& rep : r.reports) {
            const bool covers_a = rep.inc.root.contains(scope_a) || scope_a.contains(rep.inc.root);
            const bool covers_b = rep.inc.root.contains(scope_b) || scope_b.contains(rep.inc.root);
            if (covers_a && covers_b) blob = true;
            if (covers_a && !covers_b) a_own = true;
            if (covers_b && !covers_a) b_own = true;
            depth_sum += static_cast<double>(rep.inc.root.depth());
            ++roots;
        }
        if (a_own && b_own && !blob) ++out.separated;
        if (blob) ++out.merged_blobs;
    }
    out.mean_root_depth = roots == 0 ? 0.0 : depth_sum / roots;
    return out;
}

}  // namespace

int main() {
    std::printf("=== Ablation: connectivity grouping in the locator ===\n\n");
    bench::world w(generator_params::small(), 400, 43);

    const outcome with_conn = run(w, true);
    const outcome without_conn = run(w, false);

    std::printf("%-26s %14s %17s\n", "", "connectivity", "no connectivity");
    std::printf("%-26s %14d %17d\n", "episodes (2 failures)", with_conn.episodes,
                without_conn.episodes);
    std::printf("%-26s %14d %17d\n", "cleanly separated", with_conn.separated,
                without_conn.separated);
    std::printf("%-26s %14d %17d\n", "merged into one blob", with_conn.merged_blobs,
                without_conn.merged_blobs);
    std::printf("%-26s %14.2f %17.2f\n", "mean incident-root depth", with_conn.mean_root_depth,
                without_conn.mean_root_depth);
    std::printf("\nDeeper roots = more precise localization. Without the\n"
                "connectivity check, concurrent failures weld at their common\n"
                "ancestor (Figure 5c's 'device n' would be blamed on the wrong\n"
                "root cause).\n");
    return 0;
}
