// Figure 5d: correlation between incidents and the alert categories.
//
// Over a stream of mixed episodes: the fraction of *failure* incidents
// (those matching an injected failure) versus *all* incidents, and the
// share of incidents containing at least one failure / behaviour
// (abnormal) / root-cause alert. The paper's point: failure alerts are
// rare in volume but present in nearly every failure incident — the
// strongest detection signal.
#include <cstdio>
#include <vector>

#include "harness.h"

using namespace skynet;

int main() {
    std::printf("=== Figure 5d: correlation between incidents and alerts ===\n\n");
    bench::world w(generator_params::small(), 300, 23);
    constexpr int episodes = 36;

    int all_incidents = 0;
    int failure_incidents = 0;
    int with_failure_alert = 0;
    int failure_inc_with_failure_alert = 0;
    int with_abnormal_alert = 0;
    int with_root_cause_alert = 0;
    std::int64_t alerts_total = 0;
    std::int64_t alerts_failure = 0;
    std::int64_t alerts_abnormal = 0;
    std::int64_t alerts_root_cause = 0;

    for (int e = 0; e < episodes; ++e) {
        bench::episode_options opts;
        opts.seed = static_cast<std::uint64_t>(7000 + e);
        opts.noise_rate = 0.03;
        opts.benign_events = 2;
        const bench::episode_result r = bench::run_random_episode(w, e % 2 == 0, opts);

        for (const incident_report& rep : r.reports) {
            ++all_incidents;
            bool real = false;
            for (const scenario_record& truth : r.truth) {
                if (!truth.benign && bench::matches(rep.inc, truth)) real = true;
            }
            if (real) ++failure_incidents;
            const bool has_failure = rep.inc.type_count(alert_category::failure) > 0;
            if (has_failure) ++with_failure_alert;
            if (real && has_failure) ++failure_inc_with_failure_alert;
            if (rep.inc.type_count(alert_category::abnormal) > 0) ++with_abnormal_alert;
            if (rep.inc.type_count(alert_category::root_cause) > 0) ++with_root_cause_alert;

            for (const structured_alert& a : rep.inc.alerts) {
                alerts_total += a.count;
                switch (a.category) {
                    case alert_category::failure: alerts_failure += a.count; break;
                    case alert_category::abnormal: alerts_abnormal += a.count; break;
                    case alert_category::root_cause: alerts_root_cause += a.count; break;
                }
            }
        }
    }

    auto pct = [](int num, int denom) { return denom == 0 ? 0.0 : 100.0 * num / denom; };
    std::printf("incidents: %d total, %d failure incidents (%.1f%%)\n\n", all_incidents,
                failure_incidents, pct(failure_incidents, all_incidents));

    std::printf("%-44s %8s\n", "ratio", "value");
    std::printf("%-44s %7.1f%%\n", "failure incidents / all incidents",
                pct(failure_incidents, all_incidents));
    std::printf("%-44s %7.1f%%\n", "failure alerts / all alerts (volume)",
                alerts_total == 0 ? 0.0 : 100.0 * alerts_failure / alerts_total);
    std::printf("%-44s %7.1f%%\n", "behavior (abnormal) alerts / all alerts",
                alerts_total == 0 ? 0.0 : 100.0 * alerts_abnormal / alerts_total);
    std::printf("%-44s %7.1f%%\n", "root cause alerts / all alerts",
                alerts_total == 0 ? 0.0 : 100.0 * alerts_root_cause / alerts_total);
    std::printf("\n%-44s %8s\n", "incidents containing the category", "share");
    std::printf("%-44s %7.1f%%\n", "  failure alert present (all incidents)",
                pct(with_failure_alert, all_incidents));
    std::printf("%-44s %7.1f%%\n", "  failure alert present (failure incidents)",
                pct(failure_inc_with_failure_alert, failure_incidents));
    std::printf("%-44s %7.1f%%\n", "  abnormal alert present",
                pct(with_abnormal_alert, all_incidents));
    std::printf("%-44s %7.1f%%\n", "  root-cause alert present",
                pct(with_root_cause_alert, all_incidents));

    std::printf("\nPaper shape: failure alerts are a small share of volume yet\n"
                "present in nearly all failure incidents.\n");
    return 0;
}
