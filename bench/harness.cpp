#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace skynet::bench {

world::world(generator_params params, int n_customers, std::uint64_t seed) {
    params.seed = seed;
    topo = generate_topology(params);
    rng crand(seed + 1);
    customers = customer_registry::generate(topo, n_customers, crand);
}

episode_result run_episode(world& w, std::vector<std::unique_ptr<scenario>> failures,
                           const episode_options& opts) {
    simulation_engine sim(&w.topo, &w.customers,
                          engine_params{.tick = opts.tick, .seed = opts.seed});
    sim.add_default_monitors(monitor_options{.noise_rate = opts.noise_rate});

    const sim_time failure_start = minutes(1);
    sim_duration longest = opts.failure_duration;
    for (auto& f : failures) {
        sim.inject(std::move(f), failure_start, opts.failure_duration);
    }
    rng noise_rand(opts.seed * 977 + 13);
    for (int i = 0; i < opts.benign_events; ++i) {
        const sim_time at = failure_start + seconds(20) * i;
        sim.inject(make_flash_crowd(w.topo, noise_rand), at, opts.failure_duration);
    }

    skynet_engine skynet({&w.topo, &w.customers, &w.registry, &w.syslog}, opts.skynet);

    episode_result result;
    std::vector<traced_alert> filtered;
    const auto sink = [&](std::span<const traced_alert> delivered) {
        filtered.clear();
        for (const traced_alert& t : delivered) {
            if (!opts.enabled_sources.empty() && !opts.enabled_sources.contains(t.alert.source)) {
                continue;
            }
            filtered.push_back(t);
        }
        if (filtered.empty()) return;
        result.raw_alerts += static_cast<std::int64_t>(filtered.size());
        const stopwatch timer;
        skynet.ingest_batch(std::span<const traced_alert>(filtered));
        result.skynet_wall_seconds += timer.seconds();
    };
    const auto hook = [&](sim_time now) {
        const stopwatch timer;
        skynet.tick(now, sim.state());
        result.skynet_wall_seconds += timer.seconds();
    };
    sim.run_until_batched(failure_start + longest + opts.settle, sink, hook);

    const stopwatch timer;
    skynet.finish(sim.clock().now(), sim.state());
    result.skynet_wall_seconds += timer.seconds();

    result.reports = skynet.take_reports();
    result.truth = sim.ground_truth();
    result.pre = skynet.preprocessing_stats();
    result.structured_alerts = result.pre.emitted_new;
    for (const incident_report& r : result.reports) {
        if (r.inc.type_count(alert_category::root_cause) > 0) {
            result.root_cause_alert_present = true;
        }
    }
    return result;
}

episode_result run_random_episode(world& w, bool severe, const episode_options& opts) {
    rng srand(opts.seed * 31 + 7);
    std::vector<std::unique_ptr<scenario>> failures;
    failures.push_back(make_random_scenario(w.topo, srand, severe));
    return run_episode(w, std::move(failures), opts);
}

accuracy_counts score(const episode_result& result) {
    std::vector<incident> incidents;
    incidents.reserve(result.reports.size());
    for (const incident_report& r : result.reports) incidents.push_back(r.inc);
    return score_incidents(incidents, result.truth);
}

accuracy_counts score_all(const std::vector<episode_result>& results) {
    accuracy_counts total;
    for (const episode_result& r : results) total += score(r);
    return total;
}

bench_json::bench_json(std::string bench_name) {
    text("bench", bench_name);
}

bench_json& bench_json::field(std::string_view key, std::uint64_t value) {
    fields_.emplace_back(std::string(key), std::to_string(value));
    return *this;
}

bench_json& bench_json::field(std::string_view key, std::int64_t value) {
    fields_.emplace_back(std::string(key), std::to_string(value));
    return *this;
}

bench_json& bench_json::field(std::string_view key, double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    fields_.emplace_back(std::string(key), buf);
    return *this;
}

bench_json& bench_json::field(std::string_view key, bool value) {
    fields_.emplace_back(std::string(key), value ? "true" : "false");
    return *this;
}

bench_json& bench_json::text(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    for (const char c : value) {
        if (c == '"' || c == '\\') quoted += '\\';
        quoted += c;
    }
    quoted += '"';
    fields_.emplace_back(std::string(key), std::move(quoted));
    return *this;
}

bench_json& bench_json::raw(std::string_view key, std::string_view json) {
    fields_.emplace_back(std::string(key), std::string(json));
    return *this;
}

std::string bench_json::render() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out += "  \"" + fields_[i].first + "\": " + fields_[i].second;
        out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
}

bool write_bench_json(const std::string& path, const bench_json& doc) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return false;
    }
    const std::string body = doc.render();
    const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace skynet::bench
