// Figure 8b: alert volume before vs after preprocessing.
//
// Sweeps failure severity/breadth to produce floods of different sizes
// and prints (raw, structured) pairs — the scatter of Figure 8b. The
// paper reports ~100k alerts/hour reduced to <10k normally and <50k in
// extreme cases; the *ratio* (roughly an order of magnitude) is the
// reproducible shape.
#include <cstdio>

#include "harness.h"

using namespace skynet;

int main() {
    std::printf("=== Figure 8b: alert num before and after preprocessing ===\n\n");
    bench::world w(generator_params::small(), 300, 8);

    std::printf("%-34s %10s %10s %9s\n", "episode", "before", "after", "ratio");
    double total_before = 0.0;
    double total_after = 0.0;

    int idx = 0;
    auto run = [&](std::vector<std::unique_ptr<scenario>> failures, const char* label,
                   sim_duration duration) {
        bench::episode_options opts;
        opts.seed = static_cast<std::uint64_t>(3000 + idx);
        opts.failure_duration = duration;
        opts.noise_rate = 0.02;
        const bench::episode_result r = bench::run_episode(w, std::move(failures), opts);
        const double ratio =
            r.structured_alerts == 0 ? 0.0
                                     : static_cast<double>(r.raw_alerts) / r.structured_alerts;
        std::printf("%-34s %10lld %10lld %8.1fx\n", label,
                    static_cast<long long>(r.raw_alerts),
                    static_cast<long long>(r.structured_alerts), ratio);
        total_before += static_cast<double>(r.raw_alerts);
        total_after += static_cast<double>(r.structured_alerts);
        ++idx;
    };

    // Minor failures of each class.
    for (const bool severe : {false, true}) {
        for (int e = 0; e < 6; ++e) {
            rng srand(static_cast<std::uint64_t>(4000 + idx));
            std::vector<std::unique_ptr<scenario>> f;
            f.push_back(make_random_scenario(w.topo, srand, severe));
            char label[64];
            std::snprintf(label, sizeof label, "%s failure #%d", severe ? "severe" : "minor",
                          e + 1);
            run(std::move(f), label, minutes(4));
        }
    }

    // The extreme case: several concurrent severe failures.
    {
        rng srand(777);
        std::vector<std::unique_ptr<scenario>> f;
        for (int i = 0; i < 3; ++i) f.push_back(make_random_scenario(w.topo, srand, true));
        run(std::move(f), "extreme: 3 concurrent severe", minutes(6));
    }

    std::printf("\nTotal: %.0f raw -> %.0f structured (%.1fx reduction)\n", total_before,
                total_after, total_before / std::max(1.0, total_after));
    std::printf("Paper shape: ~10x volume reduction, preserved here.\n");
    return 0;
}
