// Shared experiment harness for the figure-reproduction benches.
//
// Every evaluation figure is regenerated from *episodes*: a failure
// scenario (plus optional benign noise) injected into the simulated
// network, the twelve monitors observing it, and SkyNet processing the
// resulting alert stream. The harness runs episodes, collects incident
// reports and counters, and scores them against ground truth.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "skynet/core/accuracy.h"
#include "skynet/core/pipeline.h"
#include "skynet/sim/engine.h"
#include "skynet/sim/operator_model.h"
#include "skynet/topology/generator.h"

namespace skynet::bench {

/// Static world shared across the episodes of one experiment (building
/// the topology and training the syslog classifier once).
struct world {
    topology topo;
    customer_registry customers;
    alert_type_registry registry = alert_type_registry::with_builtin_catalog();
    syslog_classifier syslog = syslog_classifier::train_from_catalog();

    explicit world(generator_params params = generator_params::small(), int n_customers = 300,
                   std::uint64_t seed = 1);
};

struct episode_options {
    std::uint64_t seed = 1;
    sim_duration failure_duration = minutes(4);
    /// Simulated time past the failure end (lets incidents close).
    sim_duration settle = minutes(2);
    sim_duration tick = seconds(2);
    /// Background glitch probability handed to the monitors.
    double noise_rate = 0.01;
    /// Number of concurrent benign flash crowds injected as noise.
    int benign_events = 1;
    /// Data sources whose alerts reach SkyNet; empty = all twelve
    /// (the Figure 8a source-removal experiment trims this).
    std::set<data_source> enabled_sources;
    skynet_config skynet;
};

struct episode_result {
    std::vector<incident_report> reports;
    std::vector<scenario_record> truth;
    preprocessor_stats pre;
    /// Raw alerts that reached SkyNet.
    std::int64_t raw_alerts{0};
    /// Structured alerts after preprocessing (new emissions).
    std::int64_t structured_alerts{0};
    /// Whether any root-cause-category alert existed in the stream.
    bool root_cause_alert_present{false};
    /// Wall-clock seconds spent inside SkyNet (ingest + tick), i.e. the
    /// "locating time" of Figure 8c.
    double skynet_wall_seconds{0.0};
};

/// Runs one episode: injects `failures` (ownership taken) one minute in,
/// plus `benign_events` flash crowds, and streams everything through a
/// fresh skynet_engine.
[[nodiscard]] episode_result run_episode(world& w,
                                         std::vector<std::unique_ptr<scenario>> failures,
                                         const episode_options& opts);

/// Convenience: one random failure of the Figure 1 mix.
[[nodiscard]] episode_result run_random_episode(world& w, bool severe,
                                                const episode_options& opts);

// --- ground-truth scoring -----------------------------------------------------
// (thin wrappers over skynet::incident_matches / skynet::score_incidents)

using skynet::accuracy_counts;

/// True when the incident plausibly reports this record.
[[nodiscard]] inline bool matches(const incident& inc, const scenario_record& truth,
                                  sim_duration slack = minutes(16)) {
    return incident_matches(inc, truth, slack);
}

/// Scores one episode: every non-benign injected failure must be covered
/// by some incident (else FN); every incident covering no real failure is
/// an FP.
[[nodiscard]] accuracy_counts score(const episode_result& result);

/// Accumulates scores across episodes.
[[nodiscard]] accuracy_counts score_all(const std::vector<episode_result>& results);

// --- machine-readable results (BENCH_*.json) -------------------------------------
//
// Every bench that publishes numbers writes one committed BENCH_<name>.json
// through this builder, so the files share a shape (a top-level "bench"
// tag plus ordered fields) and a durability story (tmp file + rename;
// a crashed bench can never leave a torn baseline behind). Before this
// existed each bench hand-rolled its own ofstream/fopen writer and the
// files drifted: some had no bench tag, none were atomic.

/// Ordered flat JSON object: fields render in insertion order, one per
/// line, so committed baselines diff cleanly run over run.
class bench_json {
public:
    /// Starts the document with its identifying "bench" tag.
    explicit bench_json(std::string bench_name);

    bench_json& field(std::string_view key, std::uint64_t value);
    bench_json& field(std::string_view key, std::int64_t value);
    bench_json& field(std::string_view key, double value, int decimals = 4);
    bench_json& field(std::string_view key, bool value);
    /// Quoted + escaped string field.
    bench_json& text(std::string_view key, std::string_view value);
    /// Pre-rendered JSON (an array or object) inserted verbatim.
    bench_json& raw(std::string_view key, std::string_view json);

    [[nodiscard]] std::string render() const;

private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes doc.render() to `path` atomically (tmp + rename) and prints
/// the standard "wrote PATH" line. False (with a stderr note) on I/O
/// failure.
bool write_bench_json(const std::string& path, const bench_json& doc);

// --- small stats helpers ---------------------------------------------------------

[[nodiscard]] double median(std::vector<double> values);
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Minimal stopwatch for wall-clock sections.
class stopwatch {
public:
    stopwatch() : start_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace skynet::bench
