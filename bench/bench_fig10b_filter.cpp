// Figure 10b: incident counts per month before vs after the severity
// filter (threshold 10), months 4-12 as in the paper. The filter cuts
// the operator-facing incident volume by roughly two orders of
// magnitude while keeping every failure incident (no false negatives).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness.h"

using namespace skynet;

namespace {

/// A corruption "ticket": CRC errors on a circuit set that carries no
/// customers — a real fault raising real alerts, but with negligible
/// impact. Months are full of these; the severity filter exists to keep
/// them off the on-call screen.
class corruption_ticket final : public scenario {
public:
    corruption_ticket(const topology& topo, circuit_set_id cset)
        : cset_(cset) {
        const circuit_set& cs = topo.circuit_set_at(cset);
        loc_ = location::common_ancestor(topo.device_at(cs.a).loc, topo.device_at(cs.b).loc);
        if (loc_.is_root()) loc_ = topo.device_at(cs.a).loc.parent();
        circuits_ = cs.circuits;
    }

    std::string name() const override { return "corruption-ticket:" + std::string(loc_.leaf()); }
    root_cause cause() const override { return root_cause::link_error; }
    location scope() const override { return loc_; }
    bool severe() const override { return false; }

    void on_start(network_state& state, rng& rand, sim_time) override {
        for (link_id lid : circuits_) {
            state.link_state(lid).corruption_loss = rand.uniform_real(0.02, 0.08);
        }
    }
    void on_end(network_state& state, rng&, sim_time) override {
        for (link_id lid : circuits_) state.link_state(lid) = link_health{};
    }

private:
    circuit_set_id cset_;
    location loc_;
    std::vector<link_id> circuits_;
};

/// Circuit sets with no attached customers (ticket targets).
std::vector<circuit_set_id> customer_free_sets(const bench::world& w) {
    std::vector<circuit_set_id> out;
    for (const circuit_set& cs : w.topo.circuit_sets()) {
        if (w.customers.customers_on(cs.id).empty() &&
            w.topo.device_at(cs.a).role != device_role::isp &&
            w.topo.device_at(cs.b).role != device_role::isp) {
            out.push_back(cs.id);
        }
    }
    return out;
}

}  // namespace

int main() {
    std::printf("=== Figure 10b: incident number before and after filter ===\n\n");
    bench::world w(generator_params::small(), 1000, 31);

    // Each simulated "month" compresses a month of operations into a
    // batch of episodes: mostly benign churn and minor failures, an
    // occasional severe one (they happen only a few times a year).
    std::printf("%-7s %14s %18s %12s\n", "month", "all incidents", "severe incidents",
                "missed real");
    int total_all = 0;
    int total_severe = 0;
    int missed = 0;
    for (int month = 4; month <= 12; ++month) {
        int month_all = 0;
        int month_severe = 0;
        for (int e = 0; e < 10; ++e) {
            const std::uint64_t seed = static_cast<std::uint64_t>(month * 100 + e);
            bench::episode_options opts;
            opts.seed = seed;
            opts.noise_rate = 0.04;
            opts.benign_events = 3;
            opts.failure_duration = minutes(6);
            // A month is mostly operational churn: redundancy-absorbed
            // events and config tickets. A couple of real minor failures;
            // a severe one only every other month (they are rare).
            const bool severe = (month % 2 == 0) && e == 0;
            static const std::vector<circuit_set_id> ticket_targets = customer_free_sets(w);
            const bench::episode_result r = [&] {
                if (!severe && e >= 2) {
                    rng srand(seed * 31 + 7);
                    std::vector<std::unique_ptr<scenario>> f;
                    for (int k = 0; k < 5 && !ticket_targets.empty(); ++k) {
                        f.push_back(std::make_unique<corruption_ticket>(
                            w.topo, ticket_targets[srand.index(ticket_targets.size())]));
                    }
                    f.push_back(make_link_failure(w.topo, srand, false));
                    return bench::run_episode(w, std::move(f), opts);
                }
                return bench::run_random_episode(w, severe, opts);
            }();

            for (const incident_report& rep : r.reports) {
                ++month_all;
                if (rep.actionable) ++month_severe;
            }
            // Any real failure whose every matching incident fell below
            // the threshold would be a filter false negative.
            for (const scenario_record& truth : r.truth) {
                if (truth.benign || !truth.severe) continue;
                bool kept = false;
                for (const incident_report& rep : r.reports) {
                    if (rep.actionable && bench::matches(rep.inc, truth)) kept = true;
                }
                if (!kept) {
                    ++missed;
                    if (std::getenv("SKYNET_DEBUG_FN") != nullptr) {
                        std::printf("  [missed] %s\n", truth.name.c_str());
                        for (const incident_report& rep : r.reports) {
                            if (bench::matches(rep.inc, truth)) {
                                std::printf("    matching incident score=%.1f root=%s\n",
                                            rep.severity.score, rep.inc.root.to_string().c_str());
                            }
                        }
                    }
                }
            }
        }
        total_all += month_all;
        total_severe += month_severe;
        std::printf("%-7d %14d %18d %12s\n", month, month_all, month_severe,
                    month == 4 ? "(severe only)" : "");
    }

    std::printf("\nTotal: %d incidents -> %d above severity threshold (%.1fx cut)\n", total_all,
                total_severe, total_severe == 0 ? 0.0 : double(total_all) / total_severe);
    std::printf("Severe failures missed by the filter: %d\n", missed);
    std::printf("Paper shape: ~2 orders of magnitude fewer operator-facing\n"
                "incidents with zero false negatives at threshold 10.\n");
    return 0;
}
