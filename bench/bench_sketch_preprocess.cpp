// Sketch hot-path bench: single-shard preprocessor under a mega-flood.
//
// The paper's alert floods stress the consolidation tables with
// cardinalities far past the steady state. This bench synthesizes a
// deterministic flood (hot set + long uniform tail) at two cardinalities
// — both well past the sketch threshold — and drives it through one
// preprocessor, measuring ingest throughput and the peak live size of
// the counting structures.
//
// Two gates:
//
//  * bounded memory (always armed): the live consolidation entry count
//    must stay at the configured threshold, *independent of flood
//    cardinality* — quadrupling the distinct-key count must not move
//    the peak. This is the whole point of the sketched regime.
//  * throughput (armed only in optimized, unsanitized builds): >= 10^6
//    alerts/s sustained through process() on a single shard.
//
// Both decisions are printed as gate:armed(...)/gate:skipped(...) — a
// skipped gate must read as skipped, never as silently passed. Emits
// machine-readable results to BENCH_sketch_preprocess.json (override
// with argv[1]).
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "skynet/core/preprocessor.h"

#if defined(NDEBUG) && !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define SKYNET_SKETCH_GATE_THROUGHPUT 0
#else
#define SKYNET_SKETCH_GATE_THROUGHPUT 1
#endif
#else
#define SKYNET_SKETCH_GATE_THROUGHPUT 1
#endif
#else
#define SKYNET_SKETCH_GATE_THROUGHPUT 0
#endif

namespace {

using namespace skynet;

constexpr std::size_t kAlerts = 1u << 20;       // 1,048,576 per run
constexpr std::size_t kHotKeys = 64;            // half the flood repeats these
constexpr std::size_t kThreshold = 4096;        // exact-regime ceiling under test
constexpr std::size_t kSampleEvery = 1u << 12;  // live-size sampling cadence
constexpr std::size_t kFlushEvery = 1u << 17;   // periodic maintenance ticks
constexpr int kRepetitions = 3;                 // best-of wall clock

/// Deterministic flood: 50% hot-set repeats, 50% uniform over
/// `cardinality` distinct locations. Key choice uses a fixed LCG so two
/// runs (and two cardinalities) draw structurally identical streams.
std::vector<raw_alert> synthesize_flood(std::size_t cardinality) {
    std::vector<raw_alert> flood;
    flood.reserve(kAlerts);
    std::uint64_t state = 0x2545f4914f6cdd1dull;
    for (std::size_t i = 0; i < kAlerts; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t draw = state >> 33;
        const std::size_t key =
            (draw & 1) ? (draw >> 1) % kHotKeys : (draw >> 1) % cardinality;
        raw_alert a;
        a.source = data_source::snmp;
        a.kind = "high cpu";
        a.timestamp = static_cast<sim_time>(i);
        a.loc = location{"R", "B" + std::to_string(key)};
        flood.push_back(std::move(a));
    }
    return flood;
}

struct run_result {
    double wall_s{0.0};
    double alerts_per_sec{0.0};
    std::size_t peak_live_entries{0};
    std::size_t sketch_bytes{0};
    std::uint64_t sketched_counts{0};
    std::int64_t emitted_new{0};
};

run_result run_flood(const bench::world& w, const std::vector<raw_alert>& flood) {
    preprocessor_config cfg;
    cfg.sketch.mode = sketch::counting_mode::auto_switch;
    cfg.sketch.threshold = kThreshold;
    preprocessor pre(&w.topo, &w.registry, &w.syslog, cfg);

    run_result r;
    r.sketch_bytes = cfg.sketch.width * cfg.sketch.depth * sizeof(std::uint64_t);
    const bench::stopwatch timer;
    for (std::size_t i = 0; i < flood.size(); ++i) {
        (void)pre.process(flood[i], flood[i].timestamp);
        if ((i + 1) % kSampleEvery == 0 && pre.pending_count() > r.peak_live_entries) {
            r.peak_live_entries = pre.pending_count();
        }
        if ((i + 1) % kFlushEvery == 0) {
            (void)pre.flush(flood[i].timestamp);
        }
    }
    (void)pre.flush(static_cast<sim_time>(flood.size()) + minutes(10));
    r.wall_s = timer.seconds();
    if (pre.pending_count() > r.peak_live_entries) r.peak_live_entries = pre.pending_count();
    r.alerts_per_sec = static_cast<double>(flood.size()) / r.wall_s;
    r.sketched_counts = pre.sketched_counts();
    r.emitted_new = pre.stats().emitted_new;
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = argc > 1 ? argv[1] : "BENCH_sketch_preprocess.json";
    // A minimal world: the flood keys on synthetic locations, so the
    // topology itself stays empty and every cost measured is the
    // preprocessor's.
    const bench::world w(generator_params::small(), 0, 1);

    bool ok = true;
    std::printf("sketch preprocess: %zu alerts/run, threshold %zu, %d repetitions\n",
                kAlerts, kThreshold, kRepetitions);
    std::printf("%-12s %10s %12s %12s %12s %12s\n", "cardinality", "wall_s", "alerts/s",
                "peak_live", "sketch_KiB", "sketched");

    const std::size_t cardinalities[] = {32768, 131072};
    run_result best[2];
    for (int c = 0; c < 2; ++c) {
        const std::vector<raw_alert> flood = synthesize_flood(cardinalities[c]);
        for (int rep = 0; rep < kRepetitions; ++rep) {
            const run_result r = run_flood(w, flood);
            if (rep == 0 || r.wall_s < best[c].wall_s) best[c] = r;
        }
        std::printf("%-12zu %10.3f %12.0f %12zu %12zu %12llu\n", cardinalities[c],
                    best[c].wall_s, best[c].alerts_per_sec, best[c].peak_live_entries,
                    best[c].sketch_bytes / 1024,
                    static_cast<unsigned long long>(best[c].sketched_counts));
        if (best[c].sketched_counts == 0) {
            std::fprintf(stderr, "FAIL: cardinality %zu never reached the sketched regime\n",
                         cardinalities[c]);
            ok = false;
        }
    }

    // Bounded-memory gate, always armed: the peak live entry count must
    // sit at the threshold (plus persistence/correlation slack) at BOTH
    // cardinalities, and quadrupling the cardinality must not move it.
    std::printf("gate:armed(memory)\n");
    for (int c = 0; c < 2; ++c) {
        if (best[c].peak_live_entries > kThreshold + 16) {
            std::fprintf(stderr, "FAIL: peak live entries %zu at cardinality %zu, cap %zu\n",
                         best[c].peak_live_entries, cardinalities[c], kThreshold + 16);
            ok = false;
        }
    }
    if (best[1].peak_live_entries > best[0].peak_live_entries + 64) {
        std::fprintf(stderr,
                     "FAIL: peak live entries grew with cardinality (%zu -> %zu); "
                     "sketched memory must be cardinality-independent\n",
                     best[0].peak_live_entries, best[1].peak_live_entries);
        ok = false;
    }

#if SKYNET_SKETCH_GATE_THROUGHPUT
    std::printf("gate:armed(throughput)\n");
    for (int c = 0; c < 2; ++c) {
        if (best[c].alerts_per_sec < 1e6) {
            std::fprintf(stderr, "FAIL: %.0f alerts/s at cardinality %zu, need >= 1e6\n",
                         best[c].alerts_per_sec, cardinalities[c]);
            ok = false;
        }
    }
#else
    std::printf("gate:skipped(throughput, build=debug-or-sanitized)\n");
#endif

    bench::bench_json doc("sketch_preprocess");
    doc.field("alerts_per_run", std::uint64_t{kAlerts});
    doc.field("repetitions", std::uint64_t{kRepetitions});
    doc.field("sketch_threshold", std::uint64_t{kThreshold});
    doc.field("throughput_gate_active", bool{SKYNET_SKETCH_GATE_THROUGHPUT != 0});
    doc.field("memory_gate_active", true);
    std::string runs = "[\n";
    for (int c = 0; c < 2; ++c) {
        char buf[320];
        std::snprintf(buf, sizeof buf,
                      "    {\"cardinality\":%zu,\"wall_s\":%.3f,\"alerts_per_sec\":%.0f,"
                      "\"peak_live_entries\":%zu,\"sketch_bytes\":%zu,"
                      "\"sketched_counts\":%llu,\"emitted_new\":%lld}",
                      cardinalities[c], best[c].wall_s, best[c].alerts_per_sec,
                      best[c].peak_live_entries, best[c].sketch_bytes,
                      static_cast<unsigned long long>(best[c].sketched_counts),
                      static_cast<long long>(best[c].emitted_new));
        runs += buf;
        runs += c == 0 ? ",\n" : "\n";
    }
    runs += "  ]";
    doc.raw("runs", runs);
    if (!bench::write_bench_json(json_path, doc)) ok = false;
    return ok ? 0 : 1;
}
