// Microbenchmarks (google-benchmark) for the pipeline hot paths backing
// the §6.2 performance claims: preprocessing throughput, locator
// insertion + tree checking, FT-tree classification, and path probing.
#include <benchmark/benchmark.h>

#include <map>

#include "harness.h"
#include "skynet/core/sharded_engine.h"
#include "skynet/syslog/message_catalog.h"

namespace skynet {
namespace {

bench::world& shared_world() {
    static bench::world w(generator_params::small(), 300, 41);
    return w;
}

/// A recorded severe flood, reused across iterations.
const std::vector<raw_alert>& flood() {
    static const std::vector<raw_alert> alerts = [] {
        bench::world& w = shared_world();
        simulation_engine sim(&w.topo, &w.customers, engine_params{.tick = seconds(2), .seed = 3});
        sim.add_default_monitors(monitor_options{.noise_rate = 0.02});
        rng srand(4);
        sim.inject(make_random_scenario(w.topo, srand, true), minutes(1), minutes(4));
        std::vector<raw_alert> out;
        sim.run_until(minutes(6), [&out](const raw_alert& a, sim_time) { out.push_back(a); });
        return out;
    }();
    return alerts;
}

void BM_PreprocessorThroughput(benchmark::State& state) {
    bench::world& w = shared_world();
    const std::vector<raw_alert>& alerts = flood();
    for (auto _ : state) {
        preprocessor pre(&w.topo, &w.registry, &w.syslog, {});
        std::size_t emitted = 0;
        for (const raw_alert& a : alerts) {
            emitted += pre.process(a, a.timestamp).size();
        }
        benchmark::DoNotOptimize(emitted);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(alerts.size()));
}
BENCHMARK(BM_PreprocessorThroughput)->Unit(benchmark::kMillisecond);

void BM_LocatorInsertAndCheck(benchmark::State& state) {
    bench::world& w = shared_world();
    const std::vector<raw_alert>& alerts = flood();
    // Pre-structure the alerts once.
    preprocessor pre(&w.topo, &w.registry, &w.syslog, {});
    std::vector<structured_alert> structured;
    for (const raw_alert& a : alerts) {
        for (auto& ev : pre.process(a, a.timestamp)) {
            if (!ev.is_update) structured.push_back(std::move(ev.alert));
        }
    }
    for (auto _ : state) {
        locator loc(&w.topo);
        sim_time last_check = 0;
        for (const structured_alert& a : structured) {
            loc.insert(a, a.when.begin);
            if (a.when.begin - last_check >= seconds(10)) {
                benchmark::DoNotOptimize(loc.check(a.when.begin));
                last_check = a.when.begin;
            }
        }
        benchmark::DoNotOptimize(loc.drain(last_check));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(structured.size()));
}
BENCHMARK(BM_LocatorInsertAndCheck)->Unit(benchmark::kMillisecond);

void BM_SyslogClassify(benchmark::State& state) {
    bench::world& w = shared_world();
    rng rand(5);
    std::vector<std::string> messages;
    for (const syslog_format& fmt : syslog_message_catalog()) {
        for (int i = 0; i < 8; ++i) messages.push_back(render_syslog(fmt.pattern, rand));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(w.syslog.classify(messages[i++ % messages.size()]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyslogClassify);

void BM_PathProbe(benchmark::State& state) {
    bench::world& w = shared_world();
    network_state net(&w.topo, &w.customers);
    const std::vector<location> clusters = w.topo.clusters_under(location{});
    rng rand(6);
    for (auto _ : state) {
        const auto src = net.representative(rand.pick(clusters));
        const auto dst = net.representative(rand.pick(clusters));
        if (src && dst) benchmark::DoNotOptimize(net.probe(*src, *dst));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathProbe);

void BM_SeverityEvaluation(benchmark::State& state) {
    bench::world& w = shared_world();
    network_state net(&w.topo, &w.customers);
    evaluator eval(&w.topo, &w.customers);
    incident inc;
    inc.root = w.topo.devices().front().loc.ancestor_at(hierarchy_level::logic_site);
    inc.when = time_range{0, minutes(5)};
    structured_alert a;
    a.category = alert_category::failure;
    a.metric = 0.2;
    a.loc = inc.root;
    inc.alerts.push_back(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.evaluate(inc, net, minutes(6)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeverityEvaluation);

void BM_TopologyGenerate(benchmark::State& state) {
    generator_params params = generator_params::medium();
    for (auto _ : state) {
        params.seed = static_cast<std::uint64_t>(state.iterations());
        benchmark::DoNotOptimize(generate_topology(params));
    }
}
BENCHMARK(BM_TopologyGenerate)->Unit(benchmark::kMillisecond);

void BM_ConnectivityGrouping(benchmark::State& state) {
    // The locator's per-check grouping cost over a flood-sized alert set.
    bench::world& w = shared_world();
    const std::vector<raw_alert>& alerts = flood();
    preprocessor pre(&w.topo, &w.registry, &w.syslog, {});
    locator loc(&w.topo);
    sim_time last = 0;
    for (const raw_alert& a : alerts) {
        for (auto& ev : pre.process(a, a.timestamp)) {
            if (!ev.is_update) loc.insert(ev.alert, a.timestamp);
        }
        last = a.timestamp;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(loc.check(last + seconds(1)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConnectivityGrouping);

void BM_ZoomIn(benchmark::State& state) {
    bench::world& w = shared_world();
    evaluator eval(&w.topo, &w.customers);
    // A matrix-rich incident.
    incident inc;
    inc.root = location{};
    const std::vector<location> clusters = w.topo.clusters_under(location{});
    rng rand(8);
    for (int i = 0; i < 200; ++i) {
        structured_alert a;
        a.category = alert_category::failure;
        a.metric = rand.uniform_real(0.0, 0.3);
        a.src_loc = rand.pick(clusters);
        a.dst_loc = rand.pick(clusters);
        a.loc = *a.src_loc;
        inc.alerts.push_back(a);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(eval.zoom_in(inc));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZoomIn);

// --- sequential vs region-sharded engine ingest throughput -------------------

bench::world& region4_world() {
    static bench::world w(
        [] {
            generator_params p = generator_params::medium();
            p.regions = 4;
            p.legacy_snmp_fraction = 0.0;
            return p;
        }(),
        300, 47);
    return w;
}

struct tick_trace {
    std::vector<std::vector<traced_alert>> batches;  // one per tick, arrival order
    std::vector<sim_time> ticks;
    sim_time end{0};
    std::size_t total_alerts{0};
};

/// A paper-scale severe flood (O(10^4..10^5) raw alerts, §2) hitting all
/// four regions at once — the worst case for the sequential engine,
/// whose per-check connectivity grouping is pairwise over every alerting
/// node across every region and whose preprocessor scans one global open
/// map. Recorded once and replayed identically through both engines.
const tick_trace& multi_region_flood() {
    static const tick_trace trace = [] {
        bench::world& w = region4_world();
        simulation_engine sim(&w.topo, &w.customers,
                              engine_params{.tick = seconds(2), .seed = 9});
        sim.add_default_monitors(monitor_options{.noise_rate = 0.25});
        std::map<std::string, location> sites;  // every ISR logic site, all regions
        for (const device& d : w.topo.devices()) {
            if (d.role != device_role::isr) continue;
            const location ls = d.loc.ancestor_at(hierarchy_level::logic_site);
            sites.emplace(ls.to_string(), ls);
        }
        for (const auto& [key, ls] : sites) {
            sim.inject(make_internet_entry_cut(w.topo, ls, 0.6), minutes(1), minutes(4));
        }
        rng srand(11);
        for (int i = 0; i < 8; ++i) {
            sim.inject(make_infrastructure_failure(w.topo, srand, true), minutes(1), minutes(4));
        }
        for (int i = 0; i < 4; ++i) {
            sim.inject(make_security_ddos(w.topo, srand, 3), minutes(1), minutes(4));
        }
        for (int i = 0; i < 8; ++i) {
            sim.inject(make_device_hardware_failure(w.topo, srand, true), minutes(1), minutes(4));
        }
        tick_trace t;
        std::vector<traced_alert> current;
        sim.run_until_batched(
            minutes(6),
            [&](std::span<const traced_alert> batch) {
                current.assign(batch.begin(), batch.end());
            },
            [&](sim_time now) {
                t.total_alerts += current.size();
                t.batches.push_back(std::move(current));
                current.clear();
                t.ticks.push_back(now);
            });
        t.end = sim.clock().now();
        return t;
    }();
    return trace;
}

template <typename Engine>
void replay_flood(Engine& eng, const tick_trace& t, const network_state& net) {
    for (std::size_t i = 0; i < t.ticks.size(); ++i) {
        eng.ingest_batch(std::span<const traced_alert>(t.batches[i]));
        eng.tick(t.ticks[i], net);
    }
    eng.finish(t.end, net);
}

void BM_EngineIngestSequential(benchmark::State& state) {
    bench::world& w = region4_world();
    const tick_trace& t = multi_region_flood();
    network_state net(&w.topo, &w.customers);
    skynet_config cfg;
    cfg.loc.deterministic_ids = true;  // what the sharded engine runs with
    for (auto _ : state) {
        skynet_engine eng({&w.topo, &w.customers, &w.registry, &w.syslog}, cfg);
        replay_flood(eng, t, net);
        benchmark::DoNotOptimize(eng.take_reports());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(t.total_alerts));
}
BENCHMARK(BM_EngineIngestSequential)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EngineIngestSharded(benchmark::State& state) {
    bench::world& w = region4_world();
    const tick_trace& t = multi_region_flood();
    network_state net(&w.topo, &w.customers);
    sharded_config scfg;
    scfg.shards = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sharded_engine eng({&w.topo, &w.customers, &w.registry, &w.syslog}, scfg);
        replay_flood(eng, t, net);
        benchmark::DoNotOptimize(eng.take_reports());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(t.total_alerts));
}
BENCHMARK(BM_EngineIngestSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- id-keyed vs string-keyed locator insert ---------------------------------

/// The multi-region flood preprocessed once: every event the locator
/// ingests (inserts *and* refreshes — both key the node map), with
/// loc_id resolved by the preprocessor.
const std::vector<structured_alert>& flood_structured() {
    static const std::vector<structured_alert> alerts = [] {
        bench::world& w = region4_world();
        const tick_trace& t = multi_region_flood();
        preprocessor pre(&w.topo, &w.registry, &w.syslog, {});
        std::vector<structured_alert> out;
        for (std::size_t i = 0; i < t.ticks.size(); ++i) {
            for (const traced_alert& ta : t.batches[i]) {
                for (auto& ev : pre.process(ta.alert, ta.arrival)) {
                    out.push_back(std::move(ev.alert));
                }
            }
        }
        return out;
    }();
    return alerts;
}

/// The seed locator keyed its main tree by the full location path —
/// every insert deep-copied the segment vector on first touch and
/// re-hashed it segment by segment on every lookup. The table-backed
/// locator keys by interned location_id: a single u32 hash. This pair
/// replays exactly the main-tree insert of the multi-region flood
/// against both key shapes (results: BENCH_locator_interning.json).
void BM_LocatorInsertStringKeyed(benchmark::State& state) {
    const std::vector<structured_alert>& alerts = flood_structured();
    struct node {
        int count{0};
        sim_time last_update{0};
    };
    for (auto _ : state) {
        std::unordered_map<location, node, location_hash> nodes;
        for (const structured_alert& a : alerts) {
            node& n = nodes[a.loc];
            ++n.count;
            n.last_update = a.when.begin;
        }
        benchmark::DoNotOptimize(nodes.size());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(alerts.size()));
}
BENCHMARK(BM_LocatorInsertStringKeyed)->Unit(benchmark::kMillisecond);

void BM_LocatorInsertIdKeyed(benchmark::State& state) {
    const std::vector<structured_alert>& alerts = flood_structured();
    struct node {
        int count{0};
        sim_time last_update{0};
    };
    for (auto _ : state) {
        std::unordered_map<location_id, node> nodes;
        for (const structured_alert& a : alerts) {
            node& n = nodes[a.loc_id];
            ++n.count;
            n.last_update = a.when.begin;
        }
        benchmark::DoNotOptimize(nodes.size());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(alerts.size()));
}
BENCHMARK(BM_LocatorInsertIdKeyed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace skynet
