// Ablation: first-alert time-series attribution vs category-based (§7.3).
//
// For gray hardware failures the behavioural alerts (BGP jitter seen by
// neighbors, packet loss) precede the hardware-error syslog by minutes.
// Blaming the chronologically first alert regularly points at the wrong
// device; preferring root-cause-category alerts points at the culprit.
#include <cstdio>

#include "harness.h"
#include "skynet/heuristics/time_series_baseline.h"

using namespace skynet;

int main() {
    std::printf("=== Ablation: time-series vs category-based attribution (7.3) ===\n\n");
    bench::world w(generator_params::small(), 400, 47);

    int episodes = 0;
    int first_alert_correct = 0;
    int category_correct = 0;

    for (int e = 0; e < 30; ++e) {
        bench::episode_options opts;
        opts.seed = static_cast<std::uint64_t>(12000 + e);
        opts.failure_duration = minutes(7);  // room for the delayed log
        opts.noise_rate = 0.0;
        opts.benign_events = 0;

        rng srand(opts.seed * 31 + 7);
        std::vector<std::unique_ptr<scenario>> failures;
        failures.push_back(make_device_hardware_failure(w.topo, srand, e % 2 == 0));
        const std::optional<device_id> culprit = failures[0]->culprit();
        const bench::episode_result r = bench::run_episode(w, std::move(failures), opts);
        if (!culprit) continue;

        // Attribute within the incident covering the failure.
        for (const incident_report& rep : r.reports) {
            if (!bench::matches(rep.inc, r.truth.front())) continue;
            ++episodes;
            const attribution naive = attribute_first_alert(rep.inc.alerts);
            const attribution tree = attribute_by_category(rep.inc.alerts);
            if (naive.valid && naive.device == culprit) ++first_alert_correct;
            if (tree.valid && tree.device == culprit) ++category_correct;
            break;
        }
    }

    std::printf("incidents attributed: %d\n\n", episodes);
    std::printf("%-34s %10s\n", "attribution strategy", "correct");
    std::printf("%-34s %6d/%d\n", "first alert (time series)", first_alert_correct, episodes);
    std::printf("%-34s %6d/%d\n", "category-based (SkyNet, 7.3)", category_correct, episodes);
    std::printf("\nThe paper's design choice: 'we choose not to use time series to\n"
                "decide the relationship between alerts, but use a alert tree with\n"
                "time-out window to associate alerts'.\n");
    return 0;
}
